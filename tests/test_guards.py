"""Execution guards: budgets, cancellation, snapshots, CLI exit 3."""

import pytest

from repro import (
    Engine,
    EvalConfig,
    FactSet,
    ResourceGuard,
    Semantics,
    TupleValue,
    parse_schema_source,
    parse_program,
)
from repro.cli import main
from repro.engine.guards import BUDGET_CODES, value_size
from repro.errors import EvalBudgetExceeded, NonTerminationError
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
)

COUNTING_SCHEMA = """
associations
  n = (v: integer).
"""

#: derives n(1), n(2), ... one per iteration — never terminates
COUNTING_RULES = """
rules
  n(v V1) <- n(v V), V1 = V + 1.
"""

INVENTING_SCHEMA = """
classes
  thing = (tag: string).
associations
  seed = (tag: string).
"""

#: invents one fresh thing per seed tuple per iteration via chaining
INVENTING_RULES = """
rules
  thing(tag T) <- seed(tag T).
  thing(tag T) <- thing(tag T).
"""


def counting_state():
    schema = parse_schema_source(COUNTING_SCHEMA)
    program = parse_program(COUNTING_RULES)
    edb = FactSet()
    edb.add_association("n", TupleValue(v=1))
    return schema, program, edb


def run_counting(guard, **cfg):
    schema, program, edb = counting_state()
    engine = Engine(schema, program,
                    EvalConfig(guard=guard, **cfg))
    return engine, engine.run(edb, Semantics.INFLATIONARY)


class TestValueSize:
    def test_scalars_count_one(self):
        assert value_size(7) == 1
        assert value_size("x") == 1

    def test_tuple_sums_fields(self):
        assert value_size(TupleValue(a=1, b="x")) == 2

    def test_collections_sum_elements(self):
        assert value_size(SetValue([1, 2, 3])) == 3
        assert value_size(SequenceValue([1, 2])) == 2
        assert value_size(MultisetValue([1, 1, 2])) == 3

    def test_empty_collection_counts_one(self):
        assert value_size(SetValue([])) == 1

    def test_nested(self):
        v = TupleValue(xs=SetValue([TupleValue(a=1, b=2)]), y=3)
        assert value_size(v) == 3


class TestBudgets:
    def test_max_facts_trips(self):
        guard = ResourceGuard(max_facts=10)
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            run_counting(guard)
        exc = exc_info.value
        assert exc.budget == "max_facts"
        assert exc.limit == 10
        assert exc.observed > 10
        assert exc.stats is not None and exc.stats.iterations > 0
        assert exc.iterations == exc.stats.iterations

    def test_breach_is_a_nontermination_error(self):
        guard = ResourceGuard(max_facts=10)
        with pytest.raises(NonTerminationError):
            run_counting(guard)

    def test_snapshot_is_consistent_inflationary_prefix(self):
        guard = ResourceGuard(max_facts=5)
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            run_counting(guard)
        snap = exc_info.value.snapshot
        assert snap is not None
        values = sorted(f.value["v"] for f in snap.facts_of("n"))
        # a full prefix 1..k of the counting chain, no holes
        assert values == list(range(1, len(values) + 1))

    def test_timeout_trips(self):
        guard = ResourceGuard(timeout=0.0)
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            run_counting(guard)
        assert exc_info.value.budget == "timeout"

    def test_max_inventions_trips_at_invention_site(self):
        schema = parse_schema_source(INVENTING_SCHEMA)
        program = parse_program(INVENTING_RULES)
        edb = FactSet()
        for i in range(20):
            edb.add_association("seed", TupleValue(tag=f"t{i}"))
        guard = ResourceGuard(max_inventions=5)
        engine = Engine(schema, program, EvalConfig(guard=guard))
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            engine.run(edb, Semantics.INFLATIONARY)
        exc = exc_info.value
        assert exc.budget == "max_inventions"
        # stopped mid-iteration: did not run to the end of the iteration
        # and invent one oid per seed
        assert exc.observed == 6

    def test_max_fact_size_trips(self):
        guard = ResourceGuard(max_fact_size=1)
        schema = parse_schema_source("""
        associations
          pair = (a: integer, b: integer).
          wide = (a: integer, b: integer).
        """)
        program = parse_program("""
        rules
          wide(a A, b B) <- pair(a A, b B).
        """)
        edb = FactSet()
        edb.add_association("pair", TupleValue(a=1, b=2))
        engine = Engine(schema, program, EvalConfig(guard=guard))
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            engine.run(edb, Semantics.INFLATIONARY)
        exc = exc_info.value
        assert exc.budget == "max_fact_size"
        assert exc.observed == 2

    def test_reference_kernel_guarded_too(self):
        guard = ResourceGuard(max_facts=10)
        with pytest.raises(EvalBudgetExceeded):
            run_counting(guard, incremental=False)

    def test_unguarded_budget_still_works(self):
        with pytest.raises(NonTerminationError) as exc_info:
            run_counting(None, max_iterations=20)
        exc = exc_info.value
        assert not isinstance(exc, EvalBudgetExceeded)
        assert exc.stats is not None
        assert exc.stats.iterations >= 20


class TestCancellation:
    def test_cancel_is_sticky_until_reset(self):
        guard = ResourceGuard()
        guard.cancel()
        assert guard.cancelled
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            run_counting(guard)
        assert exc_info.value.budget == "cancelled"
        # still cancelled: a second run refuses immediately
        with pytest.raises(EvalBudgetExceeded):
            run_counting(guard)
        guard.reset()
        assert not guard.cancelled

    def test_arm_fixes_the_deadline_per_run(self):
        guard = ResourceGuard(timeout=1000.0)
        guard.arm()
        guard.check_iteration(0, 0)  # nowhere near the deadline


class TestBudgetCodes:
    def test_every_budget_has_a_code(self):
        assert set(BUDGET_CODES) == {
            "timeout", "max_facts", "max_inventions",
            "max_fact_size", "cancelled", "max_iterations",
        }

    def test_codes_are_registered_diagnostics(self):
        from repro.analysis.diagnostics import CODES

        for code in BUDGET_CODES.values():
            assert code in CODES


class TestCliExit3(object):
    def make_program(self, tmp_path):
        src = tmp_path / "count.lg"
        src.write_text(
            COUNTING_SCHEMA + COUNTING_RULES
            + "rules\n  n(v 1).\n"
        )
        return src

    def test_run_max_facts_exits_3(self, tmp_path, capsys):
        src = self.make_program(tmp_path)
        status = main(["run", str(src), "--max-facts", "10"])
        assert status == 3
        err = capsys.readouterr().err
        assert "error[LG802]" in err
        assert "fact budget exceeded" in err
        assert "iteration(s)" in err
        assert str(src) in err
        assert "Traceback" not in err

    def test_run_timeout_exits_3(self, tmp_path, capsys):
        src = self.make_program(tmp_path)
        status = main(["run", str(src), "--timeout", "0.0"])
        assert status == 3
        assert "error[LG801]" in capsys.readouterr().err

    def test_run_max_iterations_exits_3(self, tmp_path, capsys):
        src = self.make_program(tmp_path)
        status = main(["run", str(src), "--max-iterations", "7"])
        assert status == 3
        err = capsys.readouterr().err
        assert "error[LG806]" in err
        assert "no fixpoint after 7 iterations" in err
        assert "stopped after" in err

    def test_check_exits_3(self, tmp_path, capsys):
        src = self.make_program(tmp_path)
        status = main(["check", str(src), "--max-facts", "10"])
        assert status == 3
        assert "error[LG802]" in capsys.readouterr().err

    def test_profile_exits_3(self, tmp_path, capsys):
        src = self.make_program(tmp_path)
        status = main(["profile", str(src), "--max-facts", "10"])
        assert status == 3
        assert "error[LG802]" in capsys.readouterr().err

    def test_unguarded_run_still_succeeds(self, tmp_path, capsys):
        src = tmp_path / "ok.lg"
        src.write_text("""
        associations
          p = (x: string).
        rules
          p(x "a").
        """)
        assert main(["run", str(src), "--timeout", "60"]) == 0
