"""``repro bench`` / ``repro bench report``: the matrix CLI surface."""

import json

import pytest

from repro.cli import main
from repro.observability.events import SCHEMA_VERSION
from repro.observability.trend import read_bench_rows

REQUIRED_ROW_FIELDS = (
    "schema_version", "kind", "ts", "session", "exp", "group", "name",
    "min_ms", "mean_ms", "stddev_ms", "rounds", "config", "run_id",
    "facts_in", "facts_out", "derived",
)


def _bench(tmp_path, *argv):
    return main(["bench", "--root", str(tmp_path), "--quiet",
                 "--reps", "1", *argv])


class TestBenchCommand:
    def test_small_sweep_appends_valid_rows(self, tmp_path, capsys):
        assert _bench(tmp_path, "--families", "reach", "rbac",
                      "--scales", "40", "--kernels", "compiled") == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        for family in ("reach", "rbac"):
            rows, warnings = read_bench_rows(
                tmp_path / f"BENCH_{family}.json")
            assert warnings == []
            assert len(rows) == 1
            row = rows[0]
            for field in REQUIRED_ROW_FIELDS:
                assert field in row, field
            assert row["schema_version"] == SCHEMA_VERSION
            assert row["kind"] == "bench-row"
            assert row["name"] == f"{family}[40]"
            assert row["config"]["kernel"] == "compiled"
            assert row["min_ms"] > 0
            assert row["facts_out"] > row["facts_in"]

    def test_matrix_covers_all_kernels(self, tmp_path):
        assert _bench(tmp_path, "--matrix", "--families", "genealogy",
                      "--scales", "30", "50") == 0
        rows, _ = read_bench_rows(tmp_path / "BENCH_genealogy.json")
        kernels = {r["config"]["kernel"] for r in rows}
        assert kernels == {"reference", "incremental", "planned",
                           "compiled"}
        assert {r["name"] for r in rows} == \
            {"genealogy[30]", "genealogy[50]"}

    def test_unknown_family_exits_two(self, tmp_path, capsys):
        assert _bench(tmp_path, "--families", "nope") == 2
        assert "unknown workload family" in capsys.readouterr().err

    def test_unknown_scale_exits_two(self, tmp_path, capsys):
        assert _bench(tmp_path, "--families", "reach",
                      "--scales", "huge") == 2
        assert "unknown scale" in capsys.readouterr().err


class TestBenchReport:
    def _history(self, tmp_path, mins, name="reach[40]"):
        config = {"kernel": "compiled", "semantics": "inflationary"}
        with open(tmp_path / "BENCH_reach.json", "w") as f:
            for i, ms in enumerate(mins):
                f.write(json.dumps({
                    "schema_version": SCHEMA_VERSION,
                    "kind": "bench-row", "ts": float(i),
                    "session": f"s{i}", "exp": "reach",
                    "group": "bench-reach", "name": name,
                    "min_ms": ms, "mean_ms": ms, "stddev_ms": 0.0,
                    "rounds": 1, "config": config,
                }) + "\n")

    def test_clean_history_exits_zero(self, tmp_path, capsys):
        self._history(tmp_path, [10.0, 10.4, 9.9, 10.1])
        assert main(["bench", "report", "--root", str(tmp_path)]) == 0
        assert "no trend regressions" in capsys.readouterr().out

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        self._history(tmp_path, [10.0, 10.4, 9.9, 40.0])
        assert main(["bench", "report", "--root", str(tmp_path)]) == 1
        assert "TREND REGRESSIONS" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        self._history(tmp_path, [10.0, 10.4, 9.9, 40.0])
        assert main(["bench", "report", "--root", str(tmp_path),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "bench-trend"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert len(payload["regressions"]) == 1
        assert payload["regressions"][0]["name"] == "reach[40]"

    def test_prometheus_format(self, tmp_path, capsys):
        self._history(tmp_path, [10.0, 10.4, 9.9, 10.1])
        assert main(["bench", "report", "--root", str(tmp_path),
                     "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_bench_latest_ms" in out
        assert "_bucket" in out

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        self._history(tmp_path, [10.0, 10.4, 9.9, 40.0])
        assert main(["bench", "report", "--root", str(tmp_path),
                     "--threshold", "5.0"]) == 0

    def test_malformed_history_warns_but_reports(self, tmp_path,
                                                 capsys):
        self._history(tmp_path, [10.0, 10.2])
        with open(tmp_path / "BENCH_reach.json", "a") as f:
            f.write("{broken\n")
        assert main(["bench", "report", "--root", str(tmp_path)]) == 0
        assert "warning:" in capsys.readouterr().out

    def test_empty_history_exits_zero(self, tmp_path, capsys):
        assert main(["bench", "report", "--root", str(tmp_path)]) == 0
        assert "no trend regressions" in capsys.readouterr().out


class TestBenchGateScript:
    def test_check_regression_bench_gate(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, ".")
        try:
            from benchmarks.check_regression import main as gate_main
        finally:
            sys.path.pop(0)

        TestBenchReport._history(
            TestBenchReport(), tmp_path, [10.0, 10.4, 9.9, 10.1])
        assert gate_main(["--bench-gate",
                          "--bench-root", str(tmp_path)]) == 0
        capsys.readouterr()
        TestBenchReport._history(
            TestBenchReport(), tmp_path, [10.0, 10.4, 9.9, 44.0])
        assert gate_main(["--bench-gate",
                          "--bench-root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "trend regression" in err

    def test_gate_on_empty_root_passes(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, ".")
        try:
            from benchmarks.check_regression import main as gate_main
        finally:
            sys.path.pop(0)

        assert gate_main(["--bench-gate",
                          "--bench-root", str(tmp_path)]) == 0
        assert "vacuously" in capsys.readouterr().out
