"""Snapshot isolation: readers never observe uncommitted state.

The server's read path takes a ``FactSet.copy()`` snapshot under the
read lock and evaluates outside it (``docs/SERVE.md``).  The property:
no reader snapshot — whenever taken, however long held — ever reflects
a write that failed (Savepoint rollback), was never WAL-committed, or
happened *after* the snapshot was taken.
"""

import threading

import pytest

from repro.modules.module import Mode
from repro.modules.txn import state_fingerprints
from repro.server.registry import DatabaseRegistry
from repro.testing import FAULTS

SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
"""


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


def make_db(tmp_path):
    registry = DatabaseRegistry(tmp_path, snapshot_interval=100)
    managed = registry.create("db", SOURCE)
    managed.apply('rules\n  parent(par "a", chil "b").', Mode.RIDV)
    return managed


class TestSingleThreaded:
    def test_snapshot_survives_rolled_back_write(self, tmp_path):
        managed = make_db(tmp_path)
        snap = managed.read_snapshot()
        count = snap.edb.count()
        with FAULTS.inject("module.finalize", action="error"):
            with pytest.raises(RuntimeError):
                managed.apply(
                    'rules\n  parent(par "x1", chil "x2").'
                    '\n  parent(par "x3", chil "x4").'
                    '\n  parent(par "x5", chil "x6").',
                    Mode.RIDV,
                )
        # neither the pre-taken snapshot nor a fresh one moved
        assert snap.edb.count() == count
        assert managed.read_snapshot().edb.count() == count

    def test_snapshot_survives_failed_commit(self, tmp_path):
        """A write that executed but never reached the WAL (the commit
        point) must stay invisible."""
        managed = make_db(tmp_path)
        prints = state_fingerprints(managed.read_snapshot())
        with FAULTS.inject("server.wal.append", action="io-error"):
            with pytest.raises(OSError):
                managed.apply(
                    'rules\n  parent(par "y1", chil "y2").', Mode.RIDV
                )
        assert state_fingerprints(managed.read_snapshot()) == prints

    def test_snapshot_is_immune_to_later_commits(self, tmp_path):
        managed = make_db(tmp_path)
        snap = managed.read_snapshot()
        count = snap.edb.count()
        managed.apply('rules\n  parent(par "z1", chil "z2").', Mode.RIDV)
        assert snap.edb.count() == count           # the copy is frozen
        assert managed.read_snapshot().edb.count() == count + 1

    def test_mutating_a_snapshot_does_not_leak_back(self, tmp_path):
        from repro.values import TupleValue

        managed = make_db(tmp_path)
        snap = managed.read_snapshot()
        snap.edb.add_association(
            "parent", TupleValue(par="rogue", chil="write")
        )
        assert managed.read_snapshot().edb.count() == snap.edb.count() - 1


class TestConcurrentProperty:
    def test_readers_only_ever_see_committed_states(self, tmp_path):
        """Property run: a writer alternates committing and failing
        writes while readers snapshot continuously.  Every observed
        fingerprint must be one of the committed states — the failed
        writes (each of which would add a distinct marker fact) must
        never surface, not even transiently."""
        managed = make_db(tmp_path)
        committed = {state_fingerprints(managed.read_snapshot())["edb"]}
        committed_lock = threading.Lock()
        observed = []
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    snap = managed.read_snapshot()
                    observed.append(state_fingerprints(snap)["edb"])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        try:
            for i in range(12):
                if i % 2:
                    # a write destined to fail after executing: its
                    # marker facts must never be observed
                    with FAULTS.inject("module.finalize", action="error"):
                        with pytest.raises(RuntimeError):
                            managed.apply(
                                f'rules\n  parent(par "bad{i}a",'
                                f' chil "bad{i}b").',
                                Mode.RIDV,
                            )
                else:
                    managed.apply(
                        f'rules\n  parent(par "ok{i}", chil "ok{i}x").',
                        Mode.RIDV,
                    )
                    with committed_lock:
                        committed.add(state_fingerprints(
                            managed.read_snapshot()
                        )["edb"])
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=30)
        assert not errors
        assert observed, "readers never got a snapshot"
        rogue = [o for o in observed if o not in committed]
        assert rogue == [], (
            f"{len(rogue)} snapshot(s) observed an uncommitted state"
        )
