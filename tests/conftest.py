"""Shared fixtures: the paper's example schemas and small databases."""

import pytest

from repro import FactSet, TupleValue, parse_schema_source, parse_source
from repro.workloads import (
    FOOTBALL_SCHEMA,
    GENEALOGY_SCHEMA,
    UNIVERSITY_SCHEMA,
)


@pytest.fixture
def football_schema():
    """Example 2.1's schema."""
    return parse_schema_source(FOOTBALL_SCHEMA)


@pytest.fixture
def genealogy_schema():
    """Examples 2.2 / 3.2's schema."""
    return parse_schema_source(GENEALOGY_SCHEMA)


@pytest.fixture
def university_schema():
    """Example 3.1's schema (isa hierarchy, object sharing)."""
    return parse_schema_source(UNIVERSITY_SCHEMA)


@pytest.fixture
def edge_schema():
    """A minimal flat schema for recursive-rule tests."""
    return parse_schema_source(
        """
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        """
    )


@pytest.fixture
def chain_parents():
    """parent facts forming the chain a -> b -> c -> d."""
    facts = FactSet()
    for p, c in [("a", "b"), ("b", "c"), ("c", "d")]:
        facts.add_association("parent", TupleValue(par=p, chil=c))
    return facts


TC_RULES = """
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


@pytest.fixture
def tc_program():
    return parse_source(TC_RULES).program()
