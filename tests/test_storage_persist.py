"""Unit tests for JSON persistence round-trips."""

import pytest

from repro.errors import StorageError
from repro.language.parser import parse_source
from repro.storage import FactSet, dumps_state, loads_state
from repro.storage.persist import (
    decode_program,
    decode_schema,
    decode_type,
    decode_value,
    encode_program,
    encode_schema,
    encode_type,
    encode_value,
    load_state,
)
from repro.types import INTEGER, STRING, NamedType, SchemaBuilder, SetType
from repro.types.descriptors import (
    MultisetType,
    SequenceType,
    TupleField,
    TupleType,
)
from repro.values import (
    MultisetValue,
    Oid,
    SequenceValue,
    SetValue,
    TupleValue,
)


class TestValueRoundtrip:
    @pytest.mark.parametrize("value", [
        1,
        -3,
        "hello",
        True,
        False,
        2.5,
        Oid(7),
        Oid(0),
        TupleValue(a=1, b="x"),
        SetValue([1, 2, 3]),
        MultisetValue(["a", "a", "b"]),
        SequenceValue([3, 1, 2]),
        TupleValue(nested=SetValue([TupleValue(x=Oid(1))])),
    ])
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_float_distinguished_from_int(self):
        assert isinstance(decode_value(encode_value(2.0)), float)
        assert isinstance(decode_value(encode_value(2)), int)

    def test_bool_distinguished_from_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1

    def test_bad_payload_raises(self):
        with pytest.raises(StorageError):
            decode_value({"$nonsense": 1})


class TestTypeRoundtrip:
    @pytest.mark.parametrize("descriptor", [
        INTEGER,
        STRING,
        NamedType("person"),
        SetType(INTEGER),
        MultisetType(STRING),
        SequenceType(NamedType("player")),
        TupleType((TupleField("a", INTEGER),
                   TupleField("b", SetType(STRING)))),
    ])
    def test_roundtrip(self, descriptor):
        assert decode_type(encode_type(descriptor)) == descriptor

    def test_bad_payload_raises(self):
        with pytest.raises(StorageError):
            decode_type({"$nonsense": 1})
        with pytest.raises(StorageError):
            decode_type("not a dict")


class TestSchemaRoundtrip:
    def test_full_schema(self):
        schema = (
            SchemaBuilder()
            .domain("name", STRING)
            .clazz("person", ("name", "name"))
            .clazz("student", ("person", "person"), ("year", INTEGER))
            .association("likes", ("who", "person"), ("tag", STRING))
            .isa("student", "person")
            .function("friends", ["person"], "person")
            .build()
        )
        restored = decode_schema(encode_schema(schema))
        assert restored.equations == schema.equations
        assert restored.isa_declarations == schema.isa_declarations
        assert restored.functions == schema.functions


class TestProgramRoundtrip:
    def test_rules_with_every_construct(self):
        unit = parse_source("""
        domains
          name = string.
        associations
          parent = (par: name, chil: name).
          power = (s: {integer}).
        functions
          desc: name -> {name}.
          member(X, desc(Y)) <- parent(par Y, chil X).
        rules
          power(s X) <- X = {}.
          power(s X) <- power(s Y), power(s Z), union(Y, Z, X).
          ~parent(T) <- parent(T, par "x").
          <- parent(par X, chil X).
        goal
          ?- parent(par X, chil Y), X != Y.
        """)
        program = unit.program()
        restored = decode_program(encode_program(program))
        assert restored == program


class TestStateRoundtrip:
    def test_dumps_loads_state(self):
        unit = parse_source("""
        classes
          person = (name: string).
        associations
          parent = (par: string, chil: string).
        rules
          parent(par "a", chil "b").
        """)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        edb.add_association("parent", TupleValue(par="x", chil="y"))
        edb.add_object("person", Oid(4), TupleValue(name="sara"))
        text = dumps_state(schema, edb, program)
        schema2, edb2, program2 = loads_state(text)
        assert schema2.equations == schema.equations
        assert edb2 == edb
        assert program2 == program

    def test_corrupt_payload_raises(self):
        with pytest.raises(StorageError, match="corrupt"):
            loads_state("not json at all {")

    def test_version_skew_raises(self):
        with pytest.raises(StorageError, match="version"):
            loads_state('{"version": 999}')


class TestLoadStateResilience:
    """Disk-shaped failures must become LG901 diagnostics naming the
    path, never raw tracebacks (docs/ROBUSTNESS.md)."""

    def test_zero_length_file(self, tmp_path):
        path = tmp_path / "db.state.json"
        path.write_bytes(b"")
        with pytest.raises(StorageError, match="zero-length") as exc:
            load_state(path)
        assert str(path) in str(exc.value)

    def test_whitespace_only_file(self, tmp_path):
        path = tmp_path / "db.state.json"
        path.write_text("\n  \n")
        with pytest.raises(StorageError, match="zero-length"):
            load_state(path)

    def test_truncated_file_names_the_path(self, tmp_path):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
        """)
        text = dumps_state(unit.schema(), FactSet(), unit.program())
        path = tmp_path / "db.state.json"
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StorageError) as exc:
            load_state(path)
        assert str(path) in str(exc.value)

    def test_missing_file_is_a_storage_error(self, tmp_path):
        path = tmp_path / "absent.state.json"
        with pytest.raises(StorageError, match="cannot read") as exc:
            load_state(path)
        assert str(path) in str(exc.value)

    def test_storage_errors_carry_lg901(self):
        from repro.analysis.diagnostics import CODES

        assert "LG901" in CODES
