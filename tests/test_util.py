"""Unit tests for the shared algorithmic helpers."""

import pytest

from repro._util import (
    strongly_connected_components,
    topological_order,
    unique_in_order,
)


class TestStronglyConnectedComponents:
    def test_empty_graph(self):
        assert strongly_connected_components({}) == []

    def test_single_node_no_self_loop(self):
        assert strongly_connected_components({"a": []}) == [["a"]]

    def test_self_loop_is_single_component(self):
        comps = strongly_connected_components({"a": ["a"]})
        assert comps == [["a"]]

    def test_two_node_cycle(self):
        comps = strongly_connected_components({"a": ["b"], "b": ["a"]})
        assert len(comps) == 1
        assert sorted(comps[0]) == ["a", "b"]

    def test_dag_components_are_singletons(self):
        comps = strongly_connected_components(
            {"a": ["b", "c"], "b": ["c"], "c": []}
        )
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_reverse_topological_order(self):
        # every edge must go from a later component to an earlier one
        graph = {"a": ["b"], "b": ["c"], "c": [], "d": ["b"]}
        comps = strongly_connected_components(graph)
        position = {n: i for i, c in enumerate(comps) for n in c}
        for node, succs in graph.items():
            for succ in succs:
                assert position[succ] <= position[node]

    def test_implicit_nodes_from_successor_lists(self):
        comps = strongly_connected_components({"a": ["ghost"]})
        flattened = {n for c in comps for n in c}
        assert flattened == {"a", "ghost"}

    def test_two_separate_cycles(self):
        graph = {"a": ["b"], "b": ["a"], "x": ["y"], "y": ["x"],
                 "a2": ["x"]}
        comps = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 2]

    def test_deep_chain_does_not_recurse(self):
        n = 50_000
        graph = {i: [i + 1] for i in range(n)}
        comps = strongly_connected_components(graph)
        assert len(comps) == n + 1


class TestTopologicalOrder:
    def test_simple_chain(self):
        order = topological_order({"a": ["b"], "b": ["c"]})
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_order({"a": ["b"], "b": ["a"]})

    def test_includes_isolated_nodes(self):
        assert set(topological_order({"a": [], "b": []})) == {"a", "b"}

    def test_diamond(self):
        order = topological_order(
            {"top": ["l", "r"], "l": ["bot"], "r": ["bot"], "bot": []}
        )
        assert order.index("top") < order.index("l")
        assert order.index("top") < order.index("r")
        assert order.index("l") < order.index("bot")
        assert order.index("r") < order.index("bot")


class TestUniqueInOrder:
    def test_preserves_first_occurrence_order(self):
        assert unique_in_order([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert unique_in_order([]) == []

    def test_all_unique(self):
        assert unique_in_order(["x", "y"]) == ["x", "y"]
