"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.language.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)][:-1]  # drop eof


class TestBasicTokens:
    def test_names_lowercase_and_normalize_hyphens(self):
        assert kinds("h-team") == [("name", "h_team")]

    def test_uppercase_identifiers_are_variable_shaped(self):
        assert kinds("X Foo _tmp") == [
            ("variable", "X"), ("variable", "Foo"), ("variable", "_tmp"),
        ]

    def test_keywords(self):
        out = kinds("classes isa self nil not")
        assert [k for k, _ in out] == ["keyword"] * 5

    def test_numbers(self):
        assert kinds("42 3.25") == [("number", 42), ("number", 3.25)]

    def test_trailing_dot_is_not_a_float(self):
        out = kinds("1.")
        assert out == [("number", 1), ("symbol", ".")]

    def test_strings_with_escapes(self):
        out = kinds(r'"a\"b" "line\n"')
        assert out == [("string", 'a"b'), ("string", "line\n")]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize('"open')

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError, match="unexpected"):
            tokenize("@")


class TestSymbols:
    def test_maximal_munch(self):
        out = kinds("<- <= < -> != ?-")
        assert [v for _, v in out] == ["<-", "<=", "<", "->", "!=", "?-"]

    def test_brackets(self):
        out = kinds("( ) { } [ ] < >")
        assert [v for _, v in out] == [
            "(", ")", "{", "}", "[", "]", "<", ">",
        ]


class TestCommentsAndLayout:
    def test_percent_and_hash_comments(self):
        assert kinds("a % ignored\nb # also ignored\nc") == [
            ("name", "a"), ("name", "b"), ("name", "c"),
        ]

    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("x\n  @")
        assert err.value.line == 2
        assert err.value.column == 3
