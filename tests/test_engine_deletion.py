"""Engine tests: negative heads (deletions) and the VAR' composition."""

from repro import Engine, FactSet, Oid, Semantics, TupleValue
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


class TestAssociationDeletion:
    def test_example_4_2_update_program(self):
        """The paper's Example 4.2: add 1 to the second field of tuples
        with an even first field, exactly reproducing
        E1 = {p(1,1), p(2,3), p(3,3), p(4,5)}."""
        schema, program = build("""
        associations
          p = (d1: integer, d2: integer).
          mod = (d1: integer, d2: integer).
        rules
          p(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                           ~mod(d1 X, d2 Y).
          mod(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                             ~mod(d1 X, d2 Y).
          ~p(Y) <- p(Y, d1 X), even(X), ~mod(Y).
        """)
        edb = FactSet()
        for i in range(1, 5):
            edb.add_association("p", TupleValue(d1=i, d2=i))
        out = Engine(schema, program).run(edb)
        result = sorted(
            (f.value["d1"], f.value["d2"]) for f in out.facts_of("p")
        )
        assert result == [(1, 1), (2, 3), (3, 3), (4, 5)]

    def test_full_tuple_deletion_via_tuple_variable(self):
        schema, program = build("""
        associations
          p = (v: integer).
          kill = (v: integer).
        rules
          ~p(T) <- p(T), kill(T).
        """)
        edb = FactSet()
        for i in range(3):
            edb.add_association("p", TupleValue(v=i))
        edb.add_association("kill", TupleValue(v=1))
        out = Engine(schema, program).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("p")) == [0, 2]

    def test_partial_pattern_deletes_all_matches(self):
        schema, program = build("""
        associations
          p = (k: string, v: integer).
          doomed = (k: string).
        rules
          ~p(k X) <- doomed(k X).
        """)
        edb = FactSet()
        for k, v in [("a", 1), ("a", 2), ("b", 3)]:
            edb.add_association("p", TupleValue(k=k, v=v))
        edb.add_association("doomed", TupleValue(k="a"))
        out = Engine(schema, program).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("p")) == [3]

    def test_deleting_missing_fact_is_noop(self):
        schema, program = build("""
        associations
          p = (v: integer).
          q = (v: integer).
        rules
          ~p(v X) <- q(v X).
        """)
        edb = FactSet()
        edb.add_association("q", TupleValue(v=7))
        out = Engine(schema, program).run(edb)
        assert out.count("p") == 0
        assert out.count("q") == 1


class TestSimultaneousInsertDelete:
    def test_insert_delete_oscillation_is_undefined(self):
        """Appendix B: "the deterministic semantics of a program is
        undefined if there is no fixpoint of the sequence".  A rule pair
        that re-derives what the other deletes oscillates: the valuation
        domain suppresses Δ⁺ for already-present facts, so Δ⁻ empties p,
        the next step refills it, and the sequence F⁰, F¹, ... never
        stabilizes.  The engine reports this as non-termination."""
        import pytest

        from repro import EvalConfig
        from repro.errors import NonTerminationError

        schema, program = build("""
        associations
          p = (v: integer).
          q = (v: integer).
        rules
          p(v X) <- q(v X).
          ~p(v X) <- q(v X), p(v X).
        """)
        edb = FactSet()
        edb.add_association("q", TupleValue(v=1))
        edb.add_association("p", TupleValue(v=1))
        engine = Engine(schema, program, EvalConfig(max_iterations=64))
        with pytest.raises(NonTerminationError):
            engine.run(edb)

    def test_survivor_clause_at_the_delta_level(self):
        """The VAR' survivor term ``F ∩ Δ⁺ ∩ Δ⁻`` keeps a fact that is in
        the current state and in both deltas (unit-level check of the
        one-step operator's algebra)."""
        from repro.engine.step import StepDeltas, apply_deltas
        from repro.storage import Fact

        fact = Fact("p", TupleValue(v=1))
        current = FactSet.from_facts([fact])
        deltas = StepDeltas()
        deltas.plus.add(fact)
        deltas.minus.add(fact)
        result = apply_deltas(current, deltas)
        assert fact in result


class TestObjectDeletion:
    def test_delete_object_by_attribute(self):
        schema, program = build("""
        classes
          person = (name: string).
        associations
          banned = (name: string).
        rules
          ~person(self S) <- person(self S, name N), banned(name N).
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="sara"))
        edb.add_object("person", Oid(2), TupleValue(name="ugo"))
        edb.add_association("banned", TupleValue(name="ugo"))
        out = Engine(schema, program).run(edb)
        assert out.oids_of("person") == {Oid(1)}

    def test_deletion_with_mismatched_attributes_is_noop(self):
        schema, program = build("""
        classes
          person = (name: string).
        associations
          tick = (v: integer).
        rules
          ~person(self S, name "ghost") <- person(self S), tick(v 1).
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="sara"))
        edb.add_association("tick", TupleValue(v=1))
        out = Engine(schema, program).run(edb)
        assert out.oids_of("person") == {Oid(1)}
