"""Engine tests: oid invention (Appendix B, Definition 8b)."""

import pytest

from repro import Engine, EvalConfig, FactSet, Oid, Semantics, TupleValue
from repro.errors import NonTerminationError
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


IP_SOURCE = """
classes
  ip = (emp: string, mgr: string).
associations
  emp = (ename: string, nm: string, works: string).
  dept = (dname: string, depmgr: string).
rules
  ip(emp E, mgr M) <- emp(ename E, nm N, works D),
                      dept(dname D, depmgr M), emp(ename M, nm N).
"""


def ip_edb():
    edb = FactSet()
    rows = [
        ("e1", "smith", "d1"),
        ("m1", "smith", "d9"),
        ("e2", "jones", "d1"),
        ("m2", "jones", "d2"),
        ("e3", "jones", "d2"),
    ]
    for e, n, w in rows:
        edb.add_association("emp", TupleValue(ename=e, nm=n, works=w))
    edb.add_association("dept", TupleValue(dname="d1", depmgr="m1"))
    edb.add_association("dept", TupleValue(dname="d2", depmgr="m2"))
    return edb


class TestInterestingPairs:
    def test_one_object_per_distinct_pair(self):
        """The IP example (Section 3.1): one invented object per
        (employee, manager) combination, existentially quantified."""
        schema, program = build(IP_SOURCE)
        engine = Engine(schema, program)
        out = engine.run(ip_edb())
        created = sorted(
            (f.value["emp"], f.value["mgr"]) for f in out.facts_of("ip")
        )
        assert created == [("e1", "m1"), ("e3", "m2"), ("m2", "m2")]
        assert engine.stats.inventions == 3

    def test_invention_is_stable_across_steps(self):
        """Once a rule fired for a substitution, it never re-invents
        (Def. 8b uniqueness): the fixpoint has exactly one oid per pair
        even though the body stays satisfiable every step."""
        schema, program = build(IP_SOURCE)
        engine = Engine(schema, program)
        out = engine.run(ip_edb())
        assert len(out.oids_of("ip")) == 3

    def test_runs_are_isomorphic(self):
        """Determinacy: two evaluations agree up to oid renaming."""
        schema, program = build(IP_SOURCE)
        a = Engine(schema, program).run(ip_edb()).to_instance()
        from repro.values import OidGenerator

        b_engine = Engine(schema, program,
                          oidgen=OidGenerator(start=500))
        b = b_engine.run(ip_edb()).to_instance()
        assert a.isomorphic_to(b)
        # and genuinely different oids were used
        assert {o.number for o in a.all_oids()} != \
            {o.number for o in b.all_oids()}


class TestInventionMechanics:
    def test_invented_oids_avoid_existing_ones(self):
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          seed = (tag: string).
        rules
          c(tag X) <- seed(tag X).
        """)
        edb = FactSet()
        edb.add_object("c", Oid(10), TupleValue(tag="old"))
        edb.add_association("seed", TupleValue(tag="new"))
        out = Engine(schema, program).run(edb)
        fresh = out.oids_of("c") - {Oid(10)}
        assert len(fresh) == 1
        assert next(iter(fresh)).number > 10

    def test_no_reinvention_when_attributes_exist(self):
        """Def. 7's existential head check: if an object with matching
        attributes already exists, the valuation is dropped."""
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          seed = (tag: string).
        rules
          c(tag X) <- seed(tag X).
        """)
        edb = FactSet()
        edb.add_object("c", Oid(1), TupleValue(tag="x"))
        edb.add_association("seed", TupleValue(tag="x"))
        engine = Engine(schema, program)
        out = engine.run(edb)
        assert out.oids_of("c") == {Oid(1)}
        assert engine.stats.inventions == 0

    def test_isa_related_head_unifies_instead_of_inventing(self):
        """Section 3.1 case (b): C1(Y) <- C2(X) with C1 isa C2 unifies
        the oids rather than inventing."""
        schema, program = build("""
        classes
          person = (name: string).
          student = (person, school: string).
          student isa person.
        rules
          person(self S, name N) <- student(self S, name N).
        """)
        edb = FactSet()
        edb.add_object("student", Oid(1),
                       TupleValue(name="john", school="polimi"))
        engine = Engine(schema, program)
        out = engine.run(edb)
        assert out.oids_of("person") == {Oid(1)}
        assert engine.stats.inventions == 0

    def test_unrelated_classes_invent_new_objects(self):
        """Section 3.1 case (a): same hierarchy but no isa relation in
        either direction — a new object is created per source object."""
        schema, program = build("""
        classes
          animal = (name: string).
          cat = (animal, purr: string).
          dog = (animal, bark: string).
          cat isa animal.
          dog isa animal.
        rules
          dog(name N, bark "woof") <- cat(self S, name N).
        """)
        edb = FactSet()
        edb.add_object("cat", Oid(1), TupleValue(name="tom", purr="soft"))
        engine = Engine(schema, program)
        out = engine.run(edb)
        assert len(out.oids_of("dog")) == 1
        assert Oid(1) not in out.oids_of("dog")
        assert engine.stats.inventions == 1

    def test_invention_budget_enforced(self):
        # each new object seeds another invention: runaway creation
        schema, program = build("""
        classes
          c = (tag: integer).
        rules
          c(tag 0).
          c(tag Y) <- c(self S, tag X), Y = X + 1.
        """)
        engine = Engine(schema, program,
                        EvalConfig(max_inventions=40))
        with pytest.raises(NonTerminationError, match="invention"):
            engine.run(FactSet())

    def test_noninflationary_rejects_invention(self):
        schema, program = build(IP_SOURCE)
        engine = Engine(schema, program)
        with pytest.raises(Exception, match="invention"):
            engine.run(ip_edb(), Semantics.NONINFLATIONARY)
