"""Crash recovery: the WAL/snapshot pair survives every fault point.

The property (docs/SERVE.md): for any injected fault at any durability
point — WAL append, snapshot rewrite, the atomic-write and fsync layers
under it — the reopened database is fingerprint-identical to a no-fault
reference that ran the same committed sequence.  Acknowledged writes
are never lost; unacknowledged ones never half-apply.
"""

import pytest

from repro.engine import EvalConfig
from repro.engine.guards import ResourceGuard
from repro.errors import (
    ModuleApplicationError,
    NonTerminationError,
    StorageError,
)
from repro.modules.module import Mode
from repro.server.registry import DatabaseRegistry
from repro.server.wal import WriteAheadLog, make_record
from repro.testing import FAULTS
from repro.testing.faults import FaultSpec

SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""

#: five committed writes, each one new edge of a chain
MODULES = [
    f'rules\n  parent(par "p{i}", chil "p{i + 1}").' for i in range(5)
]

#: invention workload: each write adds employees; the *persistent* rule
#: invents one ip object per (employee, manager) pair, so replay must
#: reproduce the exact invented oids (Appendix B, Def. 8b) for the
#: fingerprints to match
IP_SOURCE = """
classes
  ip = (emp: string, mgr: string).
associations
  emp = (ename: string, nm: string, works: string).
  dept = (dname: string, depmgr: string).
rules
  ip(emp E, mgr M) <- emp(ename E, nm N, works D),
                      dept(dname D, depmgr M), emp(ename M, nm N).
"""

IP_MODULES = [
    'rules\n  dept(dname "d1", depmgr "m1").'
    '\n  emp(ename "m1", nm "smith", works "d9").',
    'rules\n  emp(ename "e1", nm "smith", works "d1").',
    'rules\n  emp(ename "e2", nm "smith", works "d1").',
]


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


def run_sequence(directory, source=SOURCE, modules=MODULES,
                 snapshot_interval=3):
    registry = DatabaseRegistry(directory, snapshot_interval=snapshot_interval)
    managed = registry.create("db", source)
    for module in modules:
        managed.apply(module, Mode.RIDV)
    return registry, managed


def reopen(directory, snapshot_interval=3):
    registry = DatabaseRegistry(directory, snapshot_interval=snapshot_interval)
    return registry.get("db")


class TestCleanRecovery:
    def test_reopen_without_close_equals_live(self, tmp_path):
        """kill -9 semantics: no close(), no final snapshot — the WAL
        tail alone must reconstruct the exact state."""
        _, live = run_sequence(tmp_path / "a")
        recovered = reopen(tmp_path / "a")
        assert recovered.fingerprints() == live.fingerprints()
        assert recovered.applied_seq == live.applied_seq == 5
        assert recovered.recovered_records > 0

    def test_close_then_reopen_replays_nothing(self, tmp_path):
        _, live = run_sequence(tmp_path / "a")
        prints = live.fingerprints()
        live.close()
        recovered = reopen(tmp_path / "a")
        assert recovered.fingerprints() == prints
        assert recovered.recovered_records == 0  # snapshot covered it all

    def test_invention_replays_identical_oids(self, tmp_path):
        _, live = run_sequence(
            tmp_path / "a", source=IP_SOURCE, modules=IP_MODULES,
            snapshot_interval=100,  # force a full replay
        )
        recovered = reopen(tmp_path / "a")
        assert recovered.fingerprints() == live.fingerprints()
        assert recovered.recovered_records == len(IP_MODULES)
        assert (recovered.db.oidgen.next_number
                == live.db.oidgen.next_number)


class TestWalAppendFaults:
    @pytest.mark.parametrize("action", ["error", "io-error"])
    def test_failed_commit_is_invisible(self, tmp_path, action):
        _, live = run_sequence(tmp_path / "a", modules=MODULES[:3])
        before = live.fingerprints()
        oid_before = live.db.oidgen.next_number
        with FAULTS.inject("server.wal.append", action=action):
            with pytest.raises((RuntimeError, OSError)):
                live.apply(MODULES[3], Mode.RIDV)
        assert live.fingerprints() == before          # state rolled back
        assert live.db.oidgen.next_number == oid_before
        assert live.applied_seq == 3
        # the retry commits, and recovery agrees with a no-fault run
        live.apply(MODULES[3], Mode.RIDV)
        live.apply(MODULES[4], Mode.RIDV)
        _, reference = run_sequence(tmp_path / "ref")
        assert (reopen(tmp_path / "a").fingerprints()
                == reference.fingerprints())


class TestSnapshotFaults:
    @pytest.mark.parametrize("point,action", [
        ("server.snapshot", "error"),
        ("server.snapshot", "io-error"),
        ("storage.write", "io-error"),
        ("storage.fsync", "io-error"),
    ])
    def test_snapshot_failure_degrades_to_longer_replay(
        self, tmp_path, point, action
    ):
        registry = DatabaseRegistry(tmp_path / "a", snapshot_interval=2)
        managed = registry.create("db", SOURCE)
        FAULTS.configure([FaultSpec(point, action=action)])
        for module in MODULES:
            managed.apply(module, Mode.RIDV)  # snapshots fail silently
        FAULTS.clear()
        assert managed.applied_seq == 5
        assert managed.snapshot_failures >= 1     # degraded, not lost
        recovered = reopen(tmp_path / "a")
        assert recovered.fingerprints() == managed.fingerprints()
        assert recovered.applied_seq == 5
        # one-shot fault: the next snapshot attempt self-healed, so the
        # stale window closed again (the failure stayed a *delay*, never
        # a loss)
        assert managed._writes_since_snapshot < len(MODULES)


class TestRecoveryValidation:
    def test_diverging_record_is_rejected(self, tmp_path):
        """A WAL record whose recorded post-state cannot be reproduced
        (bitrot, version skew) must fail recovery loudly, not silently
        load a different database."""
        _, live = run_sequence(tmp_path / "a", modules=MODULES[:2])
        wal = WriteAheadLog(live.wal_path)
        wal.append(make_record(
            3, "apply",
            module=MODULES[2], module_name="", mode="RIDV",
            semantics="inflationary",
            oid_next=live.db.oidgen.next_number,
            post={"schema": "bogus", "edb": "bogus", "program": "bogus"},
        ))
        wal.close()
        with pytest.raises(StorageError, match="diverged"):
            reopen(tmp_path / "a")

    def test_torn_wal_tail_is_ignored_end_to_end(self, tmp_path):
        _, live = run_sequence(tmp_path / "a", modules=MODULES[:3])
        prints = live.fingerprints()
        with open(live.wal_path, "a", encoding="utf-8") as f:
            f.write('{"version": 1, "seq": 99, "torn')  # crash mid-append
        recovered = reopen(tmp_path / "a")
        assert recovered.fingerprints() == prints
        assert recovered.applied_seq == 3

    def test_budget_breach_mid_apply_commits_nothing(self, tmp_path):
        _, live = run_sequence(tmp_path / "a", modules=MODULES[:2])
        before = live.fingerprints()
        guard = ResourceGuard(timeout=0.0000001)
        guard.arm()
        # the breach surfaces wrapped as a rejected application
        with pytest.raises((NonTerminationError, ModuleApplicationError)):
            live.apply(MODULES[2], Mode.RIDV,
                       config=EvalConfig(guard=guard))
        assert live.fingerprints() == before
        assert reopen(tmp_path / "a").fingerprints() == before
