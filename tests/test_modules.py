"""Tests for modules and the six application modes (Section 4)."""

import pytest

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    Semantics,
    TupleValue,
    apply_module,
    materialize,
    parse_schema_source,
)
from repro.errors import ModuleApplicationError


@pytest.fixture
def schema():
    return parse_schema_source("""
    associations
      italian = (n: string).
      roman = (n: string).
    """)


@pytest.fixture
def state(schema):
    edb = FactSet()
    edb.add_association("italian", TupleValue(n="sara"))
    return DatabaseState(schema, edb)


TRIGGER_MODULE = """
rules
  italian(n "luca").
  roman(n "ugo").
  italian(X) <- roman(X).
"""


def names(facts, pred):
    return sorted(f.value["n"] for f in facts.facts_of(pred))


class TestModeProperties:
    def test_grid(self):
        assert Mode.RIDI.rule_effect == "invariant"
        assert Mode.RADV.rule_effect == "addition"
        assert Mode.RDDI.rule_effect == "deletion"
        assert Mode.RIDV.data_variant
        assert not Mode.RADI.data_variant
        assert Mode.RADI.allows_goal
        assert not Mode.RDDV.allows_goal

    def test_module_from_source(self):
        mod = Module.from_source(TRIGGER_MODULE, name="t")
        assert len(mod.rules) == 3
        assert mod.goal is None
        assert "t" in repr(mod)


class TestRIDI:
    def test_query_leaves_state_untouched(self, state):
        mod = Module.from_source(
            TRIGGER_MODULE + 'goal\n ?- italian(n N).', name="q"
        )
        result = apply_module(state, mod, Mode.RIDI)
        assert sorted(a["N"] for a in result.answers) == \
            ["luca", "sara", "ugo"]
        # E1 = E0, R1 = R0, S1 = S0
        assert result.state.edb == state.edb
        assert result.state.rules == state.rules

    def test_module_type_equations_are_temporary(self, state):
        mod = Module.from_source("""
        associations
          lombard = (n: string).
        rules
          lombard(n "carlo").
        goal
          ?- lombard(n N).
        """, name="q")
        result = apply_module(state, mod, Mode.RIDI)
        assert [a["N"] for a in result.answers] == ["carlo"]
        assert not result.state.schema.has("lombard")


class TestRADI:
    def test_rules_become_persistent(self, state):
        mod = Module.from_source(TRIGGER_MODULE, name="r")
        result = apply_module(state, mod, Mode.RADI)
        assert len(result.state.rules) == 3
        assert result.state.edb == state.edb  # E unchanged
        # the instance now derives the new facts intensionally
        assert names(result.instance, "italian") == \
            ["luca", "sara", "ugo"]

    def test_schema_addition_is_persistent(self, state):
        mod = Module.from_source("""
        associations
          lombard = (n: string).
        rules
          lombard(n "carlo").
        """, name="r")
        result = apply_module(state, mod, Mode.RADI)
        assert result.state.schema.has("lombard")

    def test_conflicting_type_redefinition_rejected(self, state):
        mod = Module.from_source("""
        associations
          italian = (other: integer).
        """, name="bad")
        with pytest.raises(ModuleApplicationError, match="redefines"):
            apply_module(state, mod, Mode.RADI)


class TestRDDI:
    def test_rule_deletion(self, schema):
        mod = Module.from_source(TRIGGER_MODULE, name="r")
        state0 = DatabaseState(schema, FactSet())
        state1 = apply_module(state0, mod, Mode.RADI).state
        assert names(materialize(state1), "italian") == ["luca", "ugo"]
        # now delete exactly those rules
        state2 = apply_module(state1, mod, Mode.RDDI).state
        assert state2.rules == ()
        assert materialize(state2).count() == 0


class TestRIDV:
    def test_example_4_1(self, state):
        """E0 = {italian(sara)}, R0 = ∅; RIDV with the trigger module
        gives E1 = I1 = {italian(sara), italian(luca), italian(ugo),
        roman(ugo)} — the paper's Example 4.1 verbatim."""
        mod = Module.from_source(TRIGGER_MODULE, name="ex41")
        result = apply_module(state, mod, Mode.RIDV)
        assert names(result.state.edb, "italian") == \
            ["luca", "sara", "ugo"]
        assert names(result.state.edb, "roman") == ["ugo"]
        assert result.instance == result.state.edb  # E1 = I1
        assert result.state.rules == ()  # rules not persisted
        assert result.answers is None

    def test_goal_with_data_variant_mode_rejected(self, state):
        mod = Module.from_source(
            TRIGGER_MODULE + "goal\n ?- roman(n N).", name="bad"
        )
        with pytest.raises(ModuleApplicationError, match="data-variant"):
            apply_module(state, mod, Mode.RIDV)

    def test_deletion_update(self, state):
        mod = Module.from_source("""
        rules
          ~italian(n "sara") <- italian(n "sara").
        """, name="del")
        result = apply_module(state, mod, Mode.RIDV)
        assert names(result.state.edb, "italian") == []

    def test_rejection_leaves_input_state_unchanged(self, schema):
        # deleting a referenced object makes the new instance
        # inconsistent: the application must be rejected wholesale
        ref_schema = parse_schema_source("""
        classes
          person = (name: string).
        associations
          likes = (who: person, what: string).
        """)
        from repro import Oid

        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="a"))
        edb.add_association("likes", TupleValue(who=Oid(1), what="tea"))
        state = DatabaseState(ref_schema, edb)
        mod = Module.from_source("""
        rules
          ~person(self S) <- person(self S, name "a").
        """, name="bad-delete")
        with pytest.raises(ModuleApplicationError, match="inconsistent"):
            apply_module(state, mod, Mode.RIDV)
        assert state.edb.has_oid("person", Oid(1))


class TestRADV:
    def test_updates_edb_and_persists_rules(self, state):
        mod = Module.from_source(TRIGGER_MODULE, name="radv")
        result = apply_module(state, mod, Mode.RADV)
        assert names(result.state.edb, "italian") == \
            ["luca", "sara", "ugo"]
        assert len(result.state.rules) == 3


class TestRDDV:
    def test_removes_facts_derivable_from_deleted_rules(self, schema):
        mod = Module.from_source("""
        rules
          italian(n "luca").
          roman(n "ugo").
        """, name="facts")
        state0 = DatabaseState(schema, FactSet())
        state1 = apply_module(state0, mod, Mode.RADV).state
        assert names(state1.edb, "italian") == ["luca"]
        state2 = apply_module(state1, mod, Mode.RDDV).state
        # E_M = instance of (∅, R_M) = {italian(luca), roman(ugo)}
        assert names(state2.edb, "italian") == []
        assert names(state2.edb, "roman") == []
        assert state2.rules == ()


class TestSemanticsParametricity:
    def test_module_application_accepts_any_semantics(self, state):
        mod = Module.from_source(TRIGGER_MODULE, name="m")
        for semantics in (Semantics.INFLATIONARY, Semantics.STRATIFIED):
            result = apply_module(state, mod, Mode.RIDV,
                                  semantics=semantics)
            assert names(result.state.edb, "italian") == \
                ["luca", "sara", "ugo"]


class TestDenialsInModules:
    def test_passive_constraint_rejects_application(self, state):
        # RADV module carrying a denial that the updated state violates
        mod = Module.from_source("""
        rules
          roman(n "sara").
          <- italian(n X), roman(n X).
        """, name="denial")
        with pytest.raises(ModuleApplicationError, match="inconsistent"):
            apply_module(state, mod, Mode.RADV)

    def test_initial_state_consistency_check(self, schema):
        from repro import Oid

        ref_schema = parse_schema_source("""
        classes
          person = (name: string).
        associations
          likes = (who: person, what: string).
        """)
        edb = FactSet()
        edb.add_association("likes", TupleValue(who=Oid(9), what="x"))
        broken = DatabaseState(ref_schema, edb)
        mod = Module.from_source('rules\n  person(name "a").', name="m")
        with pytest.raises(ModuleApplicationError, match="initial"):
            apply_module(broken, mod, Mode.RIDV, check_initial=True)


class TestMaterialize:
    def test_predicates_partly_extensional_partly_intensional(self, schema):
        """Section 4.2: a predicate may be defined partly in E and partly
        by rules in R; the instance merges both."""
        edb = FactSet()
        edb.add_association("italian", TupleValue(n="sara"))
        state = DatabaseState(
            schema, edb,
            Module.from_source(
                'rules\n  italian(n "luca").', name="x"
            ).rules,
        )
        inst = materialize(state)
        assert names(inst, "italian") == ["luca", "sara"]
