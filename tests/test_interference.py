"""Unit and CLI tests for the effect & interference analysis.

Covers :mod:`repro.analysis.effects` (per-rule effect sets),
:mod:`repro.analysis.interference` (edges, certificates, the LG10xx
confluence pass, the pair budget), the ``repro analyze`` command and its
exit-code convention, and the plan/analyze grouping agreement.
"""

import json

import pytest

from repro.analysis import lint_source
from repro.analysis.driver import analyze_source
from repro.analysis.effects import program_effects
from repro.analysis.interference import (
    Interference,
    analyze_interference,
    independent_groups,
    interference_edges,
)
from repro.cli import main
from repro.engine import Engine, EvalConfig, Semantics
from repro.language.parser import parse_source
from repro.storage.factset import FactSet


def _analyzed(source):
    report = lint_source(source)
    assert not report.has_errors, [d.render() for d in report.diagnostics]
    return report.analyzed


# ---------------------------------------------------------------------------
# effect sets
# ---------------------------------------------------------------------------
EFFECTS_SOURCE = """
classes
  node = (name: string, tag: string).
associations
  e = (a: string, b: string).
  out = (a: string, b: string).
rules
  out(a X, b Y) <- e(a X, b Y), ~e(a Y, b X), X < Y.
  ~out(a X, b Y) <- out(a X, b Y), e(a Y, b X).
  node(name X, tag X) <- e(a X, b X).
  out(a X, b X) <- node(self S, name X).
"""


class TestEffects:
    def test_reads_writes_and_flags(self):
        analyzed = _analyzed(EFFECTS_SOURCE)
        effects = program_effects(analyzed)
        assert set(effects) == {0, 1, 2, 3}

        filt = effects[0]
        assert filt.derives == "out" and filt.deletes is None
        assert filt.reads == {"e"}
        assert filt.negative_reads == {"e"}
        assert "<" in filt.builtins
        assert not filt.invents_oid and not filt.head_is_class

        deleter = effects[1]
        assert deleter.deletes == "out" and deleter.derives is None
        assert deleter.writes == "out"
        assert deleter.reads == {"out", "e"}

        inventor = effects[2]
        assert inventor.invents_oid
        assert inventor.head_is_class
        assert inventor.hierarchy_root == "node"
        assert inventor.invention_span is not None

        reader = effects[3]
        assert "node" in reader.reads
        assert reader.derives == "out"

    def test_effects_serialize(self):
        analyzed = _analyzed(EFFECTS_SOURCE)
        for eff in program_effects(analyzed).values():
            payload = eff.to_dict()
            assert payload["rule"] == eff.index
            assert isinstance(payload["reads"], list)
            json.dumps(payload)  # JSON-serializable throughout


# ---------------------------------------------------------------------------
# interference edges
# ---------------------------------------------------------------------------
class TestEdges:
    def test_derive_delete_edge(self):
        analyzed = _analyzed("""
        associations
          q = (x: string).
          r = (x: string).
          p = (x: string).
        rules
          p(x X) <- q(x X).
          ~p(x X) <- r(x X).
        """)
        effects = list(program_effects(analyzed).values())
        kinds = {e.kind for e in
                 interference_edges(effects, analyzed.schema)}
        assert "derive-delete" in kinds

    def test_delete_read_edge(self):
        analyzed = _analyzed("""
        associations
          r = (x: string).
          p = (x: string).
          t = (x: string).
        rules
          t(x X) <- p(x X).
          ~p(x X) <- r(x X).
        """)
        effects = list(program_effects(analyzed).values())
        edges = interference_edges(effects, analyzed.schema)
        assert any(e.kind == "delete-read" and e.pred == "p"
                   for e in edges)

    def test_class_overwrite_edge(self):
        analyzed = _analyzed("""
        classes
          node = (name: string, tag: string).
        associations
          e = (a: string, b: string).
        rules
          node(self S, tag X) <- node(self S, name X), e(a X, b X).
          node(self S, tag Y) <- node(self S, name X), e(a X, b Y).
        """)
        effects = list(program_effects(analyzed).values())
        edges = interference_edges(effects, analyzed.schema)
        assert any(e.kind == "class-overwrite" and e.pred == "node"
                   for e in edges)

    def test_invention_edges(self):
        analyzed = _analyzed("""
        classes
          node = (name: string).
        associations
          e = (a: string, b: string).
        rules
          node(name X) <- e(a X, b X).
          node(name Y) <- e(a X, b Y), X < Y.
          e(a X, b X) <- node(self S, name X).
        """)
        effects = list(program_effects(analyzed).values())
        edges = interference_edges(effects, analyzed.schema)
        kinds = {e.kind for e in edges}
        assert "invention-invention" in kinds
        # the reader of the invented class races both inventors
        assert any(e.kind == "invention-read" for e in edges)

    def test_commuting_derives_have_no_edge(self):
        analyzed = _analyzed("""
        associations
          e = (a: string, b: string).
          out = (a: string, b: string).
        rules
          out(a X, b Y) <- e(a X, b Y).
          out(a Y, b X) <- e(a X, b Y).
        """)
        effects = list(program_effects(analyzed).values())
        assert interference_edges(effects, analyzed.schema) == []


class TestGroups:
    def test_greedy_partition(self):
        edges = [Interference(0, 1, "derive-delete", "p", "x")]
        groups = independent_groups([0, 1, 2], edges)
        assert groups == [[0, 2], [1]]

    def test_multi_inventor_degrades_to_singletons(self):
        groups = independent_groups([0, 1, 2], [], multi_inventor=True)
        assert groups == [[0], [1], [2]]

    def test_deterministic(self):
        edges = [Interference(1, 2, "delete-read", "p", "x")]
        assert independent_groups([2, 0, 1], edges) == \
            independent_groups([0, 1, 2], edges)


# ---------------------------------------------------------------------------
# the confluence pass: a crafted race, and its stratified fix
# ---------------------------------------------------------------------------
RACE = """
associations
  q = (x: string).
  r = (x: string).
  p = (x: string).
  t = (x: string).
rules
  t(x X) <- q(x X).
  t(x X) <- p(x X).
  p(x X) <- t(x X).
  ~p(x X) <- r(x X).
"""

# the recursion through ``p(x X) <- t(x X)`` is what forces reader and
# deleter into one stratum; without it the deletion and its readers land
# in separate strata and every hazard disappears.
FIXED = """
associations
  q = (x: string).
  r = (x: string).
  p = (x: string).
  t = (x: string).
rules
  t(x X) <- q(x X).
  t(x X) <- p(x X).
  ~p(x X) <- r(x X).
"""


class TestConfluencePass:
    def test_race_fires_lg10xx(self):
        codes = [d.code for d in lint_source(RACE).diagnostics]
        assert "LG1001" in codes  # derive/delete race on p
        assert "LG1002" in codes  # the deletion races the reader of p

    def test_fix_in_separate_strata_is_clean(self):
        codes = [d.code for d in lint_source(FIXED).diagnostics]
        assert not any(c.startswith("LG10") for c in codes)

    def test_hazards_carry_spans_and_related(self):
        diags = [d for d in lint_source(RACE).diagnostics
                 if d.code.startswith("LG10")]
        assert diags
        for diag in diags:
            assert diag.span is not None
            assert diag.related and diag.related[0].span is not None

    def test_budget_emits_lg1004_and_singletons(self):
        report = lint_source(RACE, max_pairs=0)
        assert "LG1004" in [d.code for d in report.diagnostics]
        inter = report.interference
        assert inter.pair_budget_exceeded
        assert all(len(g) == 1 for s in inter.strata for g in s.groups)


# ---------------------------------------------------------------------------
# repro analyze: payload + exit codes
# ---------------------------------------------------------------------------
@pytest.fixture
def write(tmp_path):
    def _write(text, name="prog.lg"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return _write


class TestAnalyzeCli:
    def test_clean_exits_0(self, write, capsys):
        assert main(["analyze", write(FIXED)]) == 0
        out = capsys.readouterr().out
        assert "independent groups" in out

    def test_hazard_exits_1(self, write):
        assert main(["analyze", write(RACE)]) == 1

    def test_static_error_exits_2(self, write, capsys):
        assert main(["analyze", write("rules\n p(x X <- q.")]) == 2

    def test_budget_exits_3(self, write):
        assert main(["analyze", write(RACE), "--max-pairs", "0"]) == 3

    def test_json_payload_shape(self, write, capsys):
        main(["analyze", write(RACE, "race.lg"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["kind"] == "analysis"
        assert payload["rules"] and payload["strata"]
        for stratum in payload["strata"]:
            assert set(stratum) == {
                "index", "rules", "interference", "independent_groups"
            }
        assert payload["summary"]["hazards"] >= 2
        assert any(
            d["code"] == "LG1001" for d in payload["diagnostics"]
        )

    def test_json_groups_cover_all_rules(self, write, capsys):
        main(["analyze", write(FIXED), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        for stratum in payload["strata"]:
            grouped = sorted(
                i for g in stratum["independent_groups"] for i in g
            )
            assert grouped == sorted(stratum["rules"])


# ---------------------------------------------------------------------------
# plan/analyze agreement, and the engine's certificate-backed reorder
# ---------------------------------------------------------------------------
STRATIFIED_SOURCE = """
associations
  e = (a: string, b: string).
  tc = (a: string, b: string).
  pair = (a: string, b: string).
rules
  tc(a X, b Y) <- e(a X, b Y).
  tc(a X, b Z) <- e(a X, b Y), tc(a Y, b Z).
  pair(a X, b Y) <- tc(a X, b Y), ~e(a Y, b X).
"""


class TestPlanAnalyzeAgreement:
    def test_stratified_plan_groups_match_analyze(self):
        unit = parse_source(STRATIFIED_SOURCE)
        schema, program = unit.schema(), unit.program()
        engine = Engine(schema, program, EvalConfig())
        plans = engine.explain_plan(FactSet(), Semantics.STRATIFIED)
        by_stratum = {p.stratum: p.independent_groups for p in plans}

        inter = analyze_interference(_analyzed(STRATIFIED_SOURCE))
        for stratum in inter.strata:
            assert by_stratum[stratum.index] == stratum.groups

    def test_plan_to_dict_has_groups(self):
        unit = parse_source(STRATIFIED_SOURCE)
        engine = Engine(unit.schema(), unit.program(), EvalConfig())
        (plan,) = engine.explain_plan(FactSet())
        payload = plan.to_dict()
        assert "independent_groups" in payload
        grouped = sorted(
            i for g in payload["independent_groups"] for i in g
        )
        assert grouped == sorted(rp.index for rp in plan.rules)

    def test_multi_inventor_plans_are_singletons(self):
        source = """
        classes
          node = (name: string).
        associations
          e = (a: string, b: string).
        rules
          node(name X) <- e(a X, b X).
          node(name Y) <- e(a X, b Y), X < Y.
        """
        unit = parse_source(source)
        engine = Engine(unit.schema(), unit.program(), EvalConfig())
        (plan,) = engine.explain_plan(FactSet())
        assert all(len(g) == 1 for g in plan.independent_groups)


class TestProfileAnalysisSection:
    def test_profile_carries_analysis(self):
        from repro.observability.profile import profile_program

        unit = parse_source(STRATIFIED_SOURCE)
        _, profile, _ = profile_program(
            unit.schema(), unit.program(), FactSet(),
            semantics=Semantics.STRATIFIED,
        )
        payload = profile.to_dict()
        assert payload["analysis"]["inventors"] == 0
        assert payload["analysis"]["strata"]
        assert "analysis:" in profile.render_text()
