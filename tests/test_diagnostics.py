"""Tests for the collect-all diagnostics subsystem (``repro.analysis``)."""

import json
import pathlib
import re

import pytest

from repro.analysis import (
    CODES,
    Collector,
    Diagnostic,
    Severity,
    analyze_or_raise,
    lint_source,
)
from repro.errors import TypingError
from repro.language.parser import parse_source
from repro.span import Span

CLEAN_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
goal
  ?- anc(a "a", d D).
"""


def codes(source: str) -> list[str]:
    return [d.code for d in lint_source(source).diagnostics]


class TestDiagnosticCore:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("LG999", Severity.ERROR, "nope")

    def test_render_format(self):
        diag = Diagnostic("LG201", Severity.ERROR, "unknown predicate 'p'",
                          Span(3, 7), "m.lg")
        assert diag.render() == \
            "m.lg:3:7: error[LG201]: unknown predicate 'p'"

    def test_render_without_location(self):
        diag = Diagnostic("LG102", Severity.ERROR, "bad schema")
        assert diag.render() == "<input>:0:0: error[LG102]: bad schema"

    def test_collector_partitions_by_severity(self):
        c = Collector()
        c.error("LG201", "e")
        c.warning("LG601", "w")
        assert [d.code for d in c.errors()] == ["LG201"]
        assert [d.code for d in c.warnings()] == ["LG601"]
        assert c.has_errors and len(c) == 2

    def test_every_code_documented(self):
        doc = (pathlib.Path(__file__).parent.parent
               / "docs" / "DIAGNOSTICS.md").read_text()
        for code in CODES:
            assert f"### {code}" in doc, f"{code} missing from docs"

    def test_documented_examples_trigger_their_code(self):
        """Each LOGRES snippet in the catalogue reproduces its code."""
        doc = (pathlib.Path(__file__).parent.parent
               / "docs" / "DIAGNOSTICS.md").read_text()
        checked = 0
        for section in doc.split("### ")[1:]:
            code = section.split(" ", 1)[0]
            # only plain-fenced blocks are LOGRES source; ```python
            # blocks document the module-application API
            match = re.search(r"```\n(.*?)```", section, re.DOTALL)
            if match is None:
                continue
            snippet = match.group(1)
            found = [d.code for d in lint_source(snippet).diagnostics]
            assert code in found, f"{code} example produced {found}"
            checked += 1
        assert checked >= 18  # every LG1xx-LG6xx code has a snippet


class TestLintClean:
    def test_silent_on_clean_program(self):
        report = lint_source(CLEAN_SOURCE)
        assert report.diagnostics == []
        assert not report.has_errors

    def test_report_accessors(self):
        report = lint_source(CLEAN_SOURCE, file="clean.lg")
        assert report.file == "clean.lg"
        assert report.analyzed is not None
        assert json.loads(report.to_json()) == {
            "schema_version": 1,
            "kind": "diagnostics",
            "diagnostics": [],
        }


class TestSyntaxAndSchema:
    def test_parse_error_becomes_lg101(self):
        report = lint_source("rules\n p(x X <- q.", file="bad.lg")
        (diag,) = report.diagnostics
        assert diag.code == "LG101"
        assert diag.severity is Severity.ERROR
        assert diag.file == "bad.lg"
        assert diag.span is not None and diag.span.line == 2

    def test_unknown_type_name_lg103_all_reported(self):
        report = lint_source("""
        associations
          a = (x: nosuch).
          b = (y: missing, z: string).
        """)
        assert [d.code for d in report.diagnostics] == ["LG103", "LG103"]
        spans = [d.span.line for d in report.diagnostics]
        assert spans == sorted(spans) and spans[0] != spans[1]

    def test_invalid_schema_lg102(self):
        # an association containing an association is structurally illegal
        report = lint_source("""
        associations
          a = (x: string).
          b = (y: a).
        """)
        assert [d.code for d in report.diagnostics] == ["LG102"]


class TestCollectAll:
    SEEDED = """
    associations
      parent = (par: string, chil: string).
      anc = (a: string, d: string).
    rules
      anc(a X, d Y) <- parentt(par X, chil Y).
      anc(a X, d Y) <- parent(pax X, chil Y).
      anc(a X, d 3) <- parent(par X, chil X).
    """

    def test_three_seeded_errors_in_one_run(self):
        report = lint_source(self.SEEDED, file="seeded.lg")
        error_codes = [d.code for d in report.errors()]
        assert "LG201" in error_codes  # unknown predicate parentt
        assert "LG301" in error_codes  # unknown label pax
        assert "LG303" in error_codes  # constant 3 at type string
        assert len(report.errors()) >= 3
        # distinct source locations, each attributed to the file
        assert all(d.file == "seeded.lg" for d in report.errors())
        assert len({d.span.line for d in report.errors()}) == 3

    def test_stratification_collected_not_raised(self):
        report = lint_source("""
        associations
          p = (x: string).
          q = (x: string).
        rules
          p(x X) <- q(x X), ~p(x X).
        """)
        assert "LG501" in [d.code for d in report.errors()]

    def test_analyze_or_raise_carries_all_errors(self):
        unit = parse_source(self.SEEDED)
        with pytest.raises(TypingError) as excinfo:
            analyze_or_raise(unit.program(), unit.schema())
        exc = excinfo.value
        assert exc.diagnostic is not None
        assert exc.diagnostic.code == exc.diagnostics[0].code
        assert len(exc.diagnostics) >= 3


class TestSingletonVariables:
    def test_trigger(self):
        source = """
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        rules
          anc(a X, d "k") <- parent(par X, chil Y).
        """
        diags = lint_source(source).diagnostics
        assert [d.code for d in diags] == ["LG601"]
        assert diags[0].severity is Severity.WARNING
        assert "Y" in diags[0].message

    def test_underscore_prefix_silences(self):
        assert codes("""
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        rules
          anc(a X, d "k") <- parent(par X, chil _Y).
        """) == []

    def test_invented_head_variable_exempt(self):
        assert codes("""
        classes
          person = (name: string).
        associations
          named = (n: string).
        rules
          person(self P, name N) <- named(n N).
        """) == []

    def test_silent_on_clean(self):
        assert codes(CLEAN_SOURCE) == []


class TestDuplicateRules:
    BASE = """
    associations
      parent = (par: string, chil: string).
      anc = (a: string, d: string).
      flag = (f: string).
    rules
      anc(a X, d Y) <- parent(par X, chil Y).
    """

    def test_exact_duplicate(self):
        diags = lint_source(
            self.BASE + "  anc(a X, d Y) <- parent(par X, chil Y).\n"
        ).diagnostics
        assert [d.code for d in diags] == ["LG602"]
        assert diags[0].related  # points at the first occurrence

    def test_duplicate_up_to_body_order(self):
        source = """
        associations
          p = (x: string).
          q = (x: string).
          r = (x: string).
        rules
          p(x X) <- q(x X), r(x X).
          p(x X) <- r(x X), q(x X).
        """
        assert codes(source) == ["LG602"]

    def test_subsumed_rule(self):
        diags = lint_source(
            self.BASE
            + "  anc(a X, d Y) <- parent(par X, chil Y), flag(f X).\n"
        ).diagnostics
        assert [d.code for d in diags] == ["LG603"]

    def test_silent_on_distinct_rules(self):
        assert codes(CLEAN_SOURCE) == []


class TestUnreachableRules:
    def test_trigger(self):
        source = """
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
          dead = (d: string).
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
          dead(d X) <- parent(par X, chil X).
        goal
          ?- anc(a "a", d D).
        """
        diags = lint_source(source).diagnostics
        assert [d.code for d in diags] == ["LG604"]
        assert "dead" in diags[0].message

    def test_silent_without_goal(self):
        assert codes("""
        associations
          parent = (par: string, chil: string).
          dead = (d: string).
        rules
          dead(d X) <- parent(par X, chil X).
        """) == []

    def test_class_heads_always_live(self):
        assert codes("""
        classes
          person = (name: string).
        associations
          named = (n: string).
        rules
          person(self P, name N) <- named(n N).
        goal
          ?- named(n N).
        """) == []


class TestInventionInRecursion:
    def test_trigger(self):
        source = """
        classes
          node = (tag: string).
        rules
          node(self N, tag T) <- node(self _M, tag T).
        """
        diags = lint_source(source).diagnostics
        assert [d.code for d in diags] == ["LG605"]
        assert "terminate" in diags[0].message

    def test_non_recursive_invention_silent(self):
        assert codes("""
        classes
          person = (name: string).
        associations
          named = (n: string).
        rules
          person(self P, name N) <- named(n N).
        """) == []


class TestDeriveAndDelete:
    def test_trigger(self):
        source = """
        associations
          p = (x: string).
          q = (x: string).
        rules
          p(x X) <- q(x X).
          ~p(x X) <- q(x X).
        """
        diags = lint_source(source).diagnostics
        assert [d.code for d in diags] == ["LG606", "LG1001"]
        assert diags[0].related  # points at the deriving rule

    def test_silent_on_plain_deletion(self):
        assert codes("""
        associations
          p = (x: string).
          q = (x: string).
        rules
          ~p(x X) <- q(x X).
        """) == []


class TestJsonOutput:
    def test_stable_shape(self):
        report = lint_source("rules\n p(x X <- q.", file="bad.lg")
        payload = json.loads(report.to_json())
        (entry,) = payload["diagnostics"]
        assert entry["code"] == "LG101"
        assert entry["severity"] == "error"
        assert entry["file"] == "bad.lg"
        assert entry["line"] == 2
        assert isinstance(entry["column"], int)
        assert entry["related"] == []
