"""Tests for active-domain computation (Section 2.1)."""

from repro.engine.activedomain import ActiveDomains
from repro.storage import FactSet
from repro.types import INTEGER, STRING, NamedType, SchemaBuilder, SetType
from repro.values import Oid, SetValue, TupleValue


def build():
    schema = (
        SchemaBuilder()
        .domain("name", STRING)
        .clazz("person", ("name", "name"), ("age", INTEGER))
        .association("team", ("tname", "name"),
                     ("members", {"person"}))
        .build()
    )
    facts = FactSet()
    facts.add_object("person", Oid(1), TupleValue(name="ann", age=30))
    facts.add_object("person", Oid(2), TupleValue(name="bob", age=20))
    facts.add_association("team", TupleValue(
        tname="alpha", members=SetValue([Oid(1), Oid(2)])))
    return schema, facts


class TestActiveDomains:
    def test_class_domain_is_its_oids(self):
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        assert domains.domain(NamedType("person")) == \
            frozenset({Oid(1), Oid(2)})

    def test_named_domain_collects_values(self):
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        assert domains.domain(NamedType("name")) == \
            frozenset({"ann", "bob", "alpha"})

    def test_elementary_domain(self):
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        assert domains.domain(INTEGER) == frozenset({30, 20})

    def test_compatible_positions_included(self):
        # STRING positions are compatible with the NAME domain, so
        # string values appear in STRING's domain too
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        assert "ann" in domains.domain(STRING)

    def test_empty_database_empty_domains(self):
        schema, _ = build()
        domains = ActiveDomains(FactSet(), schema)
        assert domains.domain(INTEGER) == frozenset()

    def test_enumerate_is_deterministic(self):
        schema, facts = build()
        a = list(ActiveDomains(facts, schema).enumerate(INTEGER))
        b = list(ActiveDomains(facts, schema).enumerate(INTEGER))
        assert a == b == [20, 30]

    def test_oids_sort_before_scalars(self):
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        out = list(domains.enumerate(NamedType("person")))
        assert out == [Oid(1), Oid(2)]

    def test_cache_hits_same_result(self):
        schema, facts = build()
        domains = ActiveDomains(facts, schema)
        first = domains.domain(INTEGER)
        assert domains.domain(INTEGER) is first
