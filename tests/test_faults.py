"""The fault-injection harness itself (repro.testing.faults)."""

import json
import time

import pytest

from repro.errors import EvalBudgetExceeded
from repro.testing import FAULTS, FaultInjector, FaultSpec, InjectedFault
from repro.testing.faults import ENV_VAR, parse_faults


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


class TestParseFaults:
    def test_single(self):
        (spec,) = parse_faults("storage.fsync=io-error")
        assert spec == FaultSpec("storage.fsync", "io-error", 1, 0.0)

    def test_nth_and_delay(self):
        (spec,) = parse_faults("engine.iteration=latency@3/0.25")
        assert spec.point == "engine.iteration"
        assert spec.action == "latency"
        assert spec.nth == 3
        assert spec.delay == 0.25

    def test_multiple_separators(self):
        specs = parse_faults(
            "a=error, b=cancel@2; c=io-error"
        )
        assert [(s.point, s.action, s.nth) for s in specs] == [
            ("a", "error", 1), ("b", "cancel", 2), ("c", "io-error", 1),
        ]

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_faults("a=explode")

    def test_missing_action_rejected(self):
        with pytest.raises(ValueError, match="expected point=action"):
            parse_faults("justapoint")

    def test_nth_counts_from_one(self):
        with pytest.raises(ValueError, match="counts from 1"):
            FaultSpec("a", "error", nth=0)

    def test_configure_from_env(self):
        inj = FaultInjector()
        inj.configure_from_env({ENV_VAR: "x=error"})
        assert inj.enabled
        with pytest.raises(InjectedFault):
            inj.fire("x")

    def test_env_absent_is_noop(self):
        inj = FaultInjector()
        inj.configure_from_env({})
        assert not inj.enabled


class TestFiring:
    def test_unarmed_point_is_silent(self):
        FAULTS.configure([FaultSpec("a", "error")])
        FAULTS.fire("other")  # no raise

    def test_error_action(self):
        FAULTS.configure([FaultSpec("a", "error")])
        with pytest.raises(InjectedFault, match="'a'"):
            FAULTS.fire("a")

    def test_io_error_action(self):
        FAULTS.configure([FaultSpec("a", "io-error")])
        with pytest.raises(OSError, match="injected I/O fault"):
            FAULTS.fire("a")

    def test_breach_action(self):
        FAULTS.configure([FaultSpec("a", "breach")])
        with pytest.raises(EvalBudgetExceeded):
            FAULTS.fire("a")

    def test_nth_hit_only(self):
        FAULTS.configure([FaultSpec("a", "error", nth=3)])
        FAULTS.fire("a")
        FAULTS.fire("a")
        with pytest.raises(InjectedFault):
            FAULTS.fire("a")
        # after the nth hit the point stays quiet
        FAULTS.fire("a")
        assert FAULTS.hits("a") == 4

    def test_latency_sleeps_then_continues(self):
        FAULTS.configure([FaultSpec("a", "latency", delay=0.02)])
        began = time.monotonic()
        FAULTS.fire("a")
        assert time.monotonic() - began >= 0.02

    def test_cancel_uses_the_guard(self):
        from repro.engine import ResourceGuard

        guard = ResourceGuard()
        FAULTS.configure([FaultSpec("a", "cancel")])
        FAULTS.fire("a", guard=guard)
        assert guard.cancelled

    def test_cancel_without_guard_raises(self):
        FAULTS.configure([FaultSpec("a", "cancel")])
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            FAULTS.fire("a")
        assert exc_info.value.budget == "cancelled"

    def test_inject_context_manager_scopes_the_fault(self):
        with FAULTS.inject("a", "error"):
            assert FAULTS.enabled
            with pytest.raises(InjectedFault):
                FAULTS.fire("a")
        assert not FAULTS.enabled
        FAULTS.fire("a")  # disarmed again

    def test_clear(self):
        FAULTS.configure([FaultSpec("a", "error")])
        FAULTS.clear()
        assert not FAULTS.enabled
        FAULTS.fire("a")


class TestAbortedTraceIsCleanJson:
    """A fault-injected abort must leave only complete trace lines.

    ``repro run`` closes its sinks in a ``finally``, so when an injected
    ``EvalBudgetExceeded`` tears down the fixpoint mid-run the partial
    JSONL trace still flushes: every line parses, the file ends with a
    newline, and the run boundary's own ``finally`` stamps a ``run-end``
    marker with the partial stats — a follower sees the stream terminate
    instead of hanging on a truncated tail.
    """

    SOURCE = (
        "associations\n"
        "  n = (v: integer).\n"
        "rules\n"
        "  n(v 1).\n"
        "  n(v V1) <- n(v V), V1 = V + 1.\n"
    )

    def _run(self, tmp_path, faults):
        from repro.cli import main

        src = tmp_path / "count.lg"
        src.write_text(self.SOURCE)
        trace = tmp_path / "events.jsonl"
        FAULTS.configure_from_env({ENV_VAR: faults})
        status = main([
            "run", str(src), "--trace-out", str(trace),
            "--max-iterations", "50",
        ])
        return status, trace

    def test_breach_exits_3_with_complete_lines(self, tmp_path, capsys):
        status, trace = self._run(
            tmp_path, "engine.iteration=breach@3")
        assert status == 3
        text = trace.read_text()
        assert text.endswith("\n")  # no truncated tail
        payloads = [json.loads(line) for line in text.splitlines()]
        kinds = [p["event"] for p in payloads]
        assert "run-start" in kinds
        # the run boundary emits run-end with partial stats even on
        # abort, so followers get their end-of-stream marker
        assert kinds[-1] == "run-end"
        assert payloads[-1]["iterations"] == 3
        assert capsys.readouterr().err.count("Traceback") == 0

    def test_cancel_also_flushes(self, tmp_path, capsys):
        status, trace = self._run(
            tmp_path, "engine.iteration=cancel@2")
        assert status == 3
        for line in trace.read_text().splitlines():
            json.loads(line)
