"""The fault-injection harness itself (repro.testing.faults)."""

import time

import pytest

from repro.errors import EvalBudgetExceeded
from repro.testing import FAULTS, FaultInjector, FaultSpec, InjectedFault
from repro.testing.faults import ENV_VAR, parse_faults


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


class TestParseFaults:
    def test_single(self):
        (spec,) = parse_faults("storage.fsync=io-error")
        assert spec == FaultSpec("storage.fsync", "io-error", 1, 0.0)

    def test_nth_and_delay(self):
        (spec,) = parse_faults("engine.iteration=latency@3/0.25")
        assert spec.point == "engine.iteration"
        assert spec.action == "latency"
        assert spec.nth == 3
        assert spec.delay == 0.25

    def test_multiple_separators(self):
        specs = parse_faults(
            "a=error, b=cancel@2; c=io-error"
        )
        assert [(s.point, s.action, s.nth) for s in specs] == [
            ("a", "error", 1), ("b", "cancel", 2), ("c", "io-error", 1),
        ]

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_faults("a=explode")

    def test_missing_action_rejected(self):
        with pytest.raises(ValueError, match="expected point=action"):
            parse_faults("justapoint")

    def test_nth_counts_from_one(self):
        with pytest.raises(ValueError, match="counts from 1"):
            FaultSpec("a", "error", nth=0)

    def test_configure_from_env(self):
        inj = FaultInjector()
        inj.configure_from_env({ENV_VAR: "x=error"})
        assert inj.enabled
        with pytest.raises(InjectedFault):
            inj.fire("x")

    def test_env_absent_is_noop(self):
        inj = FaultInjector()
        inj.configure_from_env({})
        assert not inj.enabled


class TestFiring:
    def test_unarmed_point_is_silent(self):
        FAULTS.configure([FaultSpec("a", "error")])
        FAULTS.fire("other")  # no raise

    def test_error_action(self):
        FAULTS.configure([FaultSpec("a", "error")])
        with pytest.raises(InjectedFault, match="'a'"):
            FAULTS.fire("a")

    def test_io_error_action(self):
        FAULTS.configure([FaultSpec("a", "io-error")])
        with pytest.raises(OSError, match="injected I/O fault"):
            FAULTS.fire("a")

    def test_breach_action(self):
        FAULTS.configure([FaultSpec("a", "breach")])
        with pytest.raises(EvalBudgetExceeded):
            FAULTS.fire("a")

    def test_nth_hit_only(self):
        FAULTS.configure([FaultSpec("a", "error", nth=3)])
        FAULTS.fire("a")
        FAULTS.fire("a")
        with pytest.raises(InjectedFault):
            FAULTS.fire("a")
        # after the nth hit the point stays quiet
        FAULTS.fire("a")
        assert FAULTS.hits("a") == 4

    def test_latency_sleeps_then_continues(self):
        FAULTS.configure([FaultSpec("a", "latency", delay=0.02)])
        began = time.monotonic()
        FAULTS.fire("a")
        assert time.monotonic() - began >= 0.02

    def test_cancel_uses_the_guard(self):
        from repro.engine import ResourceGuard

        guard = ResourceGuard()
        FAULTS.configure([FaultSpec("a", "cancel")])
        FAULTS.fire("a", guard=guard)
        assert guard.cancelled

    def test_cancel_without_guard_raises(self):
        FAULTS.configure([FaultSpec("a", "cancel")])
        with pytest.raises(EvalBudgetExceeded) as exc_info:
            FAULTS.fire("a")
        assert exc_info.value.budget == "cancelled"

    def test_inject_context_manager_scopes_the_fault(self):
        with FAULTS.inject("a", "error"):
            assert FAULTS.enabled
            with pytest.raises(InjectedFault):
                FAULTS.fire("a")
        assert not FAULTS.enabled
        FAULTS.fire("a")  # disarmed again

    def test_clear(self):
        FAULTS.configure([FaultSpec("a", "error")])
        FAULTS.clear()
        assert not FAULTS.enabled
        FAULTS.fire("a")
