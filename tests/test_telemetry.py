"""Tests for the live telemetry stack.

Covers the event bus (fan-out, filters, retention replay, drop
accounting under a slow subscriber), trace contexts (envelope fields on
every event type, JSONL round-trip), streaming metrics (histogram
quantile edge cases, windowed rates, Prometheus exposition), heartbeat
emission, the Unix-socket telemetry server, and ``repro tail`` against
both a recorded event file and a live socket.
"""

import io
import json
import os
import socket
import threading

import pytest

from repro.cli import main
from repro.engine import Engine, Semantics
from repro.language.ast import Program
from repro.language.parser import parse_source
from repro.observability import (
    EVENT_TYPES,
    CollectorSink,
    EventBus,
    EventFilter,
    Heartbeat,
    Instrumentation,
    JsonlSink,
    RuleFired,
    StreamingHistogram,
    StreamingMetrics,
    TraceContext,
    WindowedCounter,
    build_filter,
    event_from_dict,
    event_to_dict,
    render_prometheus,
)
from repro.observability.tail import TailView, tail_stream
from repro.observability.telemetry_server import (
    FollowFileSink,
    TelemetryServer,
    serve_telemetry,
    unix_sockets_supported,
)

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


def _load(source=TC_SOURCE):
    unit = parse_source(source)
    return unit.schema(), Program(tuple(unit.rules), unit.goal)


def _beat(i=0, **kw):
    kw.setdefault("stratum", None)
    kw.setdefault("facts", i)
    kw.setdefault("inventions", 0)
    kw.setdefault("elapsed", 0.0)
    return Heartbeat(iteration=i, **kw)


# ---------------------------------------------------------------------------
# trace contexts
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_span_ids_are_monotonic_and_parented(self):
        trace = TraceContext()
        outer, outer_parent = trace.start_span()
        inner, inner_parent = trace.start_span()
        assert outer_parent is None
        assert inner_parent == outer
        assert outer != inner
        assert trace.current() == (inner, outer)

    def test_end_span_pops(self):
        trace = TraceContext()
        outer, _ = trace.start_span()
        trace.start_span()
        trace.end_span()
        assert trace.current() == (outer, None)

    def test_end_span_until_unwinds_past_crashed_children(self):
        trace = TraceContext()
        run, _ = trace.start_span()
        trace.start_span()   # stratum, never closed (simulated abort)
        trace.start_span()   # iteration, never closed
        trace.end_span_until(run)
        assert trace.current() == (None, None)

    def test_run_ids_are_unique(self):
        assert TraceContext().run_id != TraceContext().run_id

    def test_instrumented_run_stamps_every_event(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(sink=collector)
        engine = Engine(schema, program, instrumentation=obs)
        engine.run(FactSetLike(), Semantics.INFLATIONARY)
        run_ids = {e.run_id for e in collector.events}
        assert run_ids == {obs.trace.run_id}
        assert all(e.span_id for e in collector.events)

    def test_boundary_pair_shares_a_span(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(sink=collector)
        engine = Engine(schema, program, instrumentation=obs)
        engine.run(FactSetLike(), Semantics.INFLATIONARY)
        start = next(e for e in collector.events
                     if e.kind == "run-start")
        end = next(e for e in collector.events if e.kind == "run-end")
        assert start.span_id == end.span_id


def FactSetLike():
    from repro.storage.factset import FactSet

    return FactSet()


class TestEnvelopeRoundTrip:
    def test_every_event_type_round_trips_with_envelope(self):
        for kind, cls in EVENT_TYPES.items():
            event = _sample_event(cls)
            event = _with_envelope(event)
            payload = json.loads(json.dumps(event_to_dict(event)))
            back = event_from_dict(payload)
            assert back.kind == kind
            assert back.run_id == "r-test"
            assert back.span_id == "s1"
            assert back.parent_span_id == "s0"

    def test_unset_envelope_is_not_serialized(self):
        event = _beat()
        payload = event_to_dict(event)
        assert "run_id" not in payload
        assert "span_id" not in payload


def _sample_event(cls):
    """A minimally-populated instance of an event dataclass."""
    import dataclasses

    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING or \
                f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            continue
        if f.type in ("int", "int | None"):
            kwargs[f.name] = 1
        elif f.type == "float":
            kwargs[f.name] = 0.5
        elif f.type == "bool":
            kwargs[f.name] = False
        elif f.type in ("tuple", "tuple[str, ...]"):
            kwargs[f.name] = ()
        elif f.type == "dict":
            kwargs[f.name] = {}
        else:
            kwargs[f.name] = "x"
    return cls(**kwargs)


def _with_envelope(event):
    import dataclasses

    return dataclasses.replace(
        event, run_id="r-test", span_id="s1", parent_span_id="s0"
    )


# ---------------------------------------------------------------------------
# the event bus
# ---------------------------------------------------------------------------
class TestEventBus:
    def test_attached_sinks_see_every_event(self):
        bus = EventBus()
        collector = CollectorSink()
        bus.attach_sink(collector)
        for i in range(10):
            bus.emit(_beat(i))
        assert len(collector.events) == 10

    def test_subscription_receives_published_events(self):
        bus = EventBus()
        sub = bus.subscribe(name="t")
        bus.emit(_beat(1))
        bus.emit(_beat(2))
        assert [e.iteration for e in sub.poll()] == [1, 2]

    def test_slow_subscriber_drops_oldest_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe(name="slow", capacity=4)
        for i in range(10):
            bus.emit(_beat(i))
        events = sub.poll()
        assert [e.iteration for e in events] == [6, 7, 8, 9]
        assert sub.dropped == 6
        assert sub.delivered == 10
        stats = bus.stats()
        assert stats["published"] == 10
        entry = stats["subscribers"][0]
        assert entry == {"name": "slow", "delivered": 10,
                         "dropped": 6, "capacity": 4}

    def test_drops_surface_as_metrics(self):
        from repro.observability import MetricsRegistry

        bus = EventBus()
        bus.subscribe(name="slow", capacity=1)
        for i in range(3):
            bus.emit(_beat(i))
        metrics = MetricsRegistry()
        bus.fold_metrics(metrics)
        label = (("subscriber", "slow"),)
        assert metrics.gauge("bus_published_events") == 3
        assert metrics.gauge("bus_dropped_events", label) == 2

    def test_replay_delivers_retained_context(self):
        bus = EventBus(retain=8)
        for i in range(20):
            bus.emit(_beat(i))
        sub = bus.subscribe(name="late", replay=True)
        assert [e.iteration for e in sub.poll()] == list(range(12, 20))

    def test_kind_filter(self):
        bus = EventBus()
        sub = bus.subscribe(name="f",
                            filter=build_filter(kinds=["heartbeat"]))
        bus.emit(_beat(1))
        bus.emit(_rule_fired())
        assert [e.kind for e in sub.poll()] == ["heartbeat"]

    def test_rule_filter_keeps_structural_events(self):
        f = build_filter(rules=[3])
        assert f.accepts(_rule_fired(rule_index=3))
        assert not f.accepts(_rule_fired(rule_index=4))
        assert f.accepts(_beat())  # structural: the run skeleton stays

    def test_close_wakes_waiters_and_keeps_queue(self):
        bus = EventBus()
        sub = bus.subscribe(name="t")
        bus.emit(_beat(1))
        bus.close()
        assert [e.iteration for e in sub.wait(timeout=1)] == [1]
        assert sub.ended

    def test_wait_blocks_until_publish(self):
        bus = EventBus()
        sub = bus.subscribe(name="t")
        got = []

        def consume():
            got.extend(sub.wait(timeout=5))

        t = threading.Thread(target=consume)
        t.start()
        bus.emit(_beat(7))
        t.join(timeout=5)
        assert [e.iteration for e in got] == [7]

    def test_closed_subscription_is_forgotten(self):
        bus = EventBus()
        sub = bus.subscribe(name="t")
        sub.close()
        bus.emit(_beat(1))
        assert bus.stats()["subscribers"] == []

    def test_broken_sink_is_evicted_not_fatal(self):
        """A tail client dying mid-write (BrokenPipeError is an OSError)
        must not take the publisher down: the sink is dropped, counted,
        and the healthy sink keeps receiving."""

        class BrokenSink:
            def __init__(self):
                self.emits = 0
                self.closed = False

            def emit(self, event):
                self.emits += 1
                raise BrokenPipeError("client went away")

            def close(self):
                self.closed = True

        bus = EventBus()
        broken, healthy = BrokenSink(), CollectorSink()
        bus.attach_sink(broken)
        bus.attach_sink(healthy)
        for i in range(5):
            bus.emit(_beat(i))
        assert broken.emits == 1          # evicted after the first failure
        assert broken.closed              # best-effort close on eviction
        assert len(healthy.events) == 5   # the healthy sink saw everything
        assert bus.stats()["dropped_sinks"] == 1

    def test_evicted_sinks_surface_as_metrics(self):
        from repro.observability import MetricsRegistry

        class BrokenSink:
            def emit(self, event):
                raise OSError("disk gone")

            def close(self):
                pass

        bus = EventBus()
        bus.attach_sink(BrokenSink())
        bus.emit(_beat(1))
        metrics = MetricsRegistry()
        bus.fold_metrics(metrics)
        assert metrics.gauge("bus_dropped_sinks") == 1


def _rule_fired(rule_index=0):
    return RuleFired(
        rule_index=rule_index,
        rule="anc(a X, d Y) <- parent(par X, chil Y).",
        pred="anc", fact="anc(a 'a', d 'b')", iteration=1,
    )


# ---------------------------------------------------------------------------
# streaming metrics
# ---------------------------------------------------------------------------
class TestStreamingHistogram:
    def test_empty_reports_zero(self):
        hist = StreamingHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.to_dict()["p99"] == 0.0

    def test_single_observation_all_quantiles_equal_it(self):
        hist = StreamingHistogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(1.5)

    def test_quantiles_clamped_to_observed_range(self):
        hist = StreamingHistogram(buckets=(10.0,))
        for v in (2.0, 3.0, 4.0):
            hist.observe(v)
        assert 2.0 <= hist.quantile(0.5) <= 4.0
        assert hist.quantile(0.99) <= 4.0

    def test_median_of_uniform_samples(self):
        hist = StreamingHistogram(buckets=tuple(float(b)
                                                for b in range(1, 101)))
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=1.5)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=1.5)

    def test_overflow_bucket_catches_large_values(self):
        hist = StreamingHistogram(buckets=(1.0,))
        hist.observe(100.0)
        rows = hist.cumulative()
        assert rows[-1] == (float("inf"), 1)
        assert hist.quantile(0.99) == pytest.approx(100.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            StreamingHistogram(buckets=(2.0, 1.0))


class TestWindowedCounter:
    def test_rate_over_windows(self):
        now = [0.0]
        counter = WindowedCounter(window=1.0, keep=10,
                                  clock=lambda: now[0])
        for _ in range(10):
            counter.inc()
        now[0] = 1.0
        for _ in range(20):
            counter.inc()
        assert counter.total == 30
        assert counter.rate() == pytest.approx(30.0)

    def test_rate_decays_when_producer_stalls(self):
        now = [0.0]
        counter = WindowedCounter(window=1.0, keep=5,
                                  clock=lambda: now[0])
        counter.inc(100)
        now[0] = 100.0  # far past the retained horizon
        assert counter.rate() == 0.0


class TestStreamingMetrics:
    def test_feeds_windows_and_streams(self):
        now = [0.0]
        metrics = StreamingMetrics(clock=lambda: now[0])
        metrics.inc("rule_fires", (("rule", "0"),))
        metrics.observe("rule_time", (("rule", "0"),), 0.002)
        snap = metrics.timeseries_snapshot()
        assert snap["rates"]["rule_fires{rule=0}"]["total"] == 1
        assert snap["histograms"]["rule_time{rule=0}"]["count"] == 1

    def test_base_registry_contract_unchanged(self):
        metrics = StreamingMetrics()
        metrics.inc("hits", amount=3)
        assert metrics.counter("hits") == 3


class TestPrometheusRendering:
    def test_counters_gauges_and_histograms(self):
        metrics = StreamingMetrics(buckets=(0.001, 0.1))
        metrics.inc("rule_fires", (("rule", "0"),), 5)
        metrics.set_gauge("run_facts", value=42)
        metrics.observe("rule_time", value=0.05)
        text = render_prometheus(metrics)
        assert 'repro_rule_fires_total{rule="0"} 5' in text
        assert "repro_run_facts 42" in text
        assert 'repro_rule_time_bucket{le="0.1"} 1' in text
        assert 'repro_rule_time_bucket{le="+Inf"} 1' in text
        assert "repro_rule_time_count 1" in text
        assert text.endswith("\n")

    def test_every_series_line_is_well_formed(self):
        import re

        metrics = StreamingMetrics()
        metrics.inc("rule_fires", (("rule", "0"),))
        metrics.observe("rule_time", (("rule", "0"),), 0.002)
        metrics.set_gauge("bus_published_events", value=10)
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
        )
        for line in render_prometheus(metrics).strip().split("\n"):
            if line.startswith("#"):
                continue
            assert line_re.match(line), line

    def test_plain_registry_renders_summaries(self):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.observe("rule_time", value=0.5)
        text = render_prometheus(metrics)
        assert "repro_rule_time_count 1" in text
        assert "_bucket" not in text


# ---------------------------------------------------------------------------
# heartbeats
# ---------------------------------------------------------------------------
class TestHeartbeats:
    def test_heartbeats_emitted_at_iteration_boundaries(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(sink=collector, heartbeat_interval=0.0)
        engine = Engine(schema, program, instrumentation=obs)
        engine.run(FactSetLike(), Semantics.INFLATIONARY)
        beats = [e for e in collector.events if e.kind == "heartbeat"]
        assert beats
        assert all(e.run_id for e in beats)
        assert beats[-1].facts >= beats[0].facts

    def test_no_heartbeats_without_interval(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(sink=collector)
        engine = Engine(schema, program, instrumentation=obs)
        engine.run(FactSetLike(), Semantics.INFLATIONARY)
        assert not [e for e in collector.events
                    if e.kind == "heartbeat"]


# ---------------------------------------------------------------------------
# guards flush on breach (the partial-trace bugfix)
# ---------------------------------------------------------------------------
class TestFlushOnBreach:
    def test_trip_invokes_on_breach_callback(self):
        from repro.engine import ResourceGuard
        from repro.errors import EvalBudgetExceeded

        flushed = []
        guard = ResourceGuard(max_facts=1)
        guard.arm(on_breach=lambda: flushed.append(True))
        with pytest.raises(EvalBudgetExceeded):
            guard.check_iteration(facts=10)
        assert flushed == [True]

    def test_breached_run_leaves_complete_jsonl(self, tmp_path):
        from repro.engine import EvalConfig, ResourceGuard
        from repro.errors import EvalBudgetExceeded

        schema, program = _load()
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(open(path, "w", encoding="utf-8"),
                         close_stream=True)
        obs = Instrumentation(sink=sink)
        config = EvalConfig(guard=ResourceGuard(max_facts=2))
        engine = Engine(schema, program, config=config,
                        instrumentation=obs)
        with pytest.raises(EvalBudgetExceeded):
            engine.run(FactSetLike(), Semantics.INFLATIONARY)
        obs.close()
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)  # every line is complete JSON


# ---------------------------------------------------------------------------
# telemetry server + repro tail
# ---------------------------------------------------------------------------
def _record_run(path, heartbeat=0.0):
    """An instrumented run recorded to a JSONL file; returns the path."""
    from repro.observability import StreamHeader

    schema, program = _load()
    bus = EventBus()
    sink = JsonlSink(open(path, "w", encoding="utf-8"),
                     close_stream=True)
    bus.attach_sink(sink)
    bus.emit(StreamHeader(source_file="<test>"))
    obs = Instrumentation(sink=bus, heartbeat_interval=heartbeat)
    engine = Engine(schema, program, instrumentation=obs)
    engine.run(FactSetLike(), Semantics.INFLATIONARY)
    obs.close()
    return path


class TestFollowFileSink:
    def test_writes_flushed_jsonl(self, tmp_path):
        path = tmp_path / "follow.jsonl"
        sink = FollowFileSink(str(path))
        sink.emit(_beat(1))
        # flushed per event: visible before close
        assert json.loads(path.read_text().splitlines()[0])
        sink.close()

    def test_serve_telemetry_falls_back_for_jsonl_paths(self, tmp_path):
        bus = EventBus()
        out = serve_telemetry(bus, str(tmp_path / "t.jsonl"))
        try:
            assert isinstance(out, FollowFileSink)
        finally:
            out.close()


class TestTailView:
    def test_aggregates_rule_fires_into_run_end_summary(self):
        view = TailView()
        assert view.line(event_to_dict(_rule_fired())) is None
        end = view.line({
            "event": "run-end", "iterations": 3, "facts": 5,
            "inventions": 0, "elapsed": 0.01,
        })
        assert "r0=1" in end
        assert "3 iteration(s)" in end

    def test_heartbeat_line(self):
        view = TailView()
        line = view.line(event_to_dict(_beat(4, facts=12)))
        assert "iter 4" in line
        assert "12" in line


class TestTailStream:
    def test_text_rendering_of_recorded_run(self, tmp_path, capsys):
        path = _record_run(tmp_path / "run.jsonl")
        out = io.StringIO()
        assert tail_stream(str(path), out=out) == 0
        text = out.getvalue()
        assert "run" in text
        assert "run done" in text

    def test_json_format_reemits_schema_stamped_lines(self, tmp_path):
        path = _record_run(tmp_path / "run.jsonl")
        out = io.StringIO()
        assert tail_stream(str(path), out=out, format="json") == 0
        lines = [json.loads(l) for l in
                 out.getvalue().strip().split("\n")]
        assert lines[0]["event"] == "stream-header"
        assert lines[0]["schema_version"] == 1
        kinds = {l["event"] for l in lines}
        assert "run-start" in kinds and "run-end" in kinds

    def test_kind_filter(self, tmp_path):
        path = _record_run(tmp_path / "run.jsonl", heartbeat=0.0)
        out = io.StringIO()
        assert tail_stream(str(path), out=out, format="json",
                           kinds=["heartbeat"]) == 0
        for line in out.getvalue().strip().split("\n"):
            assert json.loads(line)["event"] == "heartbeat"

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert tail_stream(str(tmp_path / "nope.jsonl"),
                           connect_timeout=0.1) == 2

    def test_cli_tail_command(self, tmp_path, capsys):
        path = _record_run(tmp_path / "run.jsonl")
        assert main(["tail", str(path)]) == 0
        assert "run done" in capsys.readouterr().out


@pytest.mark.skipif(not unix_sockets_supported(),
                    reason="AF_UNIX not available")
class TestTelemetryServer:
    def test_client_receives_stream_over_socket(self, tmp_path):
        schema, program = _load()
        sock_path = str(tmp_path / "t.sock")
        bus = EventBus()
        server = TelemetryServer(bus, sock_path)
        try:
            # connect BEFORE the run: replay + live delivery covers it
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.settimeout(10)
            client.connect(sock_path)
            # the acceptor registers the subscription asynchronously:
            # wait for it so the whole run is delivered live
            import time as _time

            for _ in range(200):
                if bus.stats()["subscribers"]:
                    break
                _time.sleep(0.01)
            assert bus.stats()["subscribers"]
            obs = Instrumentation(sink=bus, heartbeat_interval=0.0)
            engine = Engine(schema, program, instrumentation=obs)
            engine.run(FactSetLike(), Semantics.INFLATIONARY)
            obs.close()
            server.close()
            payload = b""
            while True:
                try:
                    chunk = client.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                payload += chunk
            client.close()
        finally:
            server.close()
        lines = [json.loads(l) for l in
                 payload.decode().strip().split("\n")]
        kinds = [l["event"] for l in lines]
        assert "run-start" in kinds
        assert "heartbeat" in kinds
        assert "run-end" in kinds

    def test_socket_removed_on_close(self, tmp_path):
        sock_path = str(tmp_path / "t.sock")
        bus = EventBus()
        server = TelemetryServer(bus, sock_path)
        assert os.path.exists(sock_path)
        server.close()
        assert not os.path.exists(sock_path)

    def test_cli_run_and_tail_over_socket(self, tmp_path, capsys):
        # a chain long enough that the run outlives the tail's 50ms
        # connect poll: the tail must attach while the run is live
        facts = "\n".join(
            f'  parent(par "n{i}", chil "n{i + 1}").'
            for i in range(150)
        )
        source = tmp_path / "tc.logres"
        source.write_text(TC_SOURCE.replace(
            'rules\n', 'rules\n' + facts + '\n', 1,
        ))
        sock_path = str(tmp_path / "t.sock")
        results = {}
        out = io.StringIO()

        # the tail launches FIRST and waits for the socket to appear,
        # so even an instantly-finishing run is fully observed
        def tail():
            results["tail"] = tail_stream(
                sock_path, out=out, format="json", connect_timeout=10,
            )

        t = threading.Thread(target=tail)
        t.start()
        results["run"] = main([
            "run", str(source), "--telemetry-listen", sock_path,
            "--heartbeat", "0",
        ])
        t.join(timeout=30)
        assert results == {"run": 0, "tail": 0}
        kinds = [json.loads(l)["event"]
                 for l in out.getvalue().strip().split("\n")]
        assert "run-end" in kinds


# ---------------------------------------------------------------------------
# run reports carry the envelope
# ---------------------------------------------------------------------------
class TestReportEnvelope:
    def test_report_records_run_id_and_bus_stats(self):
        from repro.observability.report import build_run_report

        schema, program = _load()
        bus = EventBus()
        from repro.observability import MetricsRegistry

        obs = Instrumentation(metrics=MetricsRegistry(), sink=bus)
        engine = Engine(schema, program, instrumentation=obs)
        engine.run(FactSetLike(), Semantics.INFLATIONARY)
        report = build_run_report(engine, obs, semantics="inflationary")
        assert report.run_id == obs.trace.run_id
        assert report.telemetry["published"] > 0
        payload = report.to_dict()
        assert payload["run_id"] == report.run_id

    def test_from_dict_tolerates_missing_envelope(self):
        from repro.observability.report import RunReport

        report = RunReport.from_dict({
            "schema_version": 1, "kind": "run-report",
        })
        assert report.run_id is None
        assert report.telemetry == {}
