"""Unit tests for the refinement preorder ``≼`` (Appendix A)."""

import pytest

from repro.types import (
    INTEGER,
    STRING,
    MultisetType,
    NamedType,
    SchemaBuilder,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
    is_refinement,
    types_compatible,
)


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .domain("name", STRING)
        .domain("score", (("home", INTEGER), ("guest", INTEGER)))
        .clazz("person", ("name", "name"), ("address", STRING))
        .clazz("student", ("person", "person"), ("school", STRING))
        .isa("student", "person")
        .build()
    )


def tt(*fields):
    return TupleType(tuple(TupleField(l, t) for l, t in fields))


class TestClause1Identity:
    def test_elementary_reflexive(self, schema):
        assert is_refinement(INTEGER, INTEGER, schema)
        assert not is_refinement(INTEGER, STRING, schema)

    def test_named_reflexive(self, schema):
        assert is_refinement(NamedType("name"), NamedType("name"), schema)


class TestClause2DomainExpansion:
    def test_domain_refines_its_rhs(self, schema):
        assert is_refinement(NamedType("name"), STRING, schema)

    def test_rhs_does_not_refine_domain(self, schema):
        # domains denote subsets: STRING is not a refinement of NAME
        assert not is_refinement(STRING, NamedType("name"), schema)

    def test_complex_domain_refines_structure(self, schema):
        target = tt(("home", INTEGER), ("guest", INTEGER))
        assert is_refinement(NamedType("score"), target, schema)


class TestClause3Classes:
    def test_subclass_refines_superclass(self, schema):
        assert is_refinement(
            NamedType("student"), NamedType("person"), schema
        )

    def test_superclass_does_not_refine_subclass(self, schema):
        assert not is_refinement(
            NamedType("person"), NamedType("student"), schema
        )

    def test_structurally_wider_class_refines(self):
        # no isa declared, but clause 3 compares structure
        schema = (
            SchemaBuilder()
            .clazz("a", ("x", INTEGER))
            .clazz("b", ("x", INTEGER), ("y", STRING))
            .build()
        )
        assert is_refinement(NamedType("b"), NamedType("a"), schema)
        assert not is_refinement(NamedType("a"), NamedType("b"), schema)


class TestClause4Tuples:
    def test_width_subtyping(self, schema):
        wide = tt(("x", INTEGER), ("y", STRING))
        narrow = tt(("x", INTEGER))
        assert is_refinement(wide, narrow, schema)
        assert not is_refinement(narrow, wide, schema)

    def test_field_types_must_refine(self, schema):
        t1 = tt(("x", NamedType("name")))
        t2 = tt(("x", STRING))
        assert is_refinement(t1, t2, schema)
        assert not is_refinement(t2, t1, schema)

    def test_label_mismatch_fails(self, schema):
        assert not is_refinement(
            tt(("x", INTEGER)), tt(("y", INTEGER)), schema
        )


class TestClauses5to7Collections:
    def test_set_covariance(self, schema):
        assert is_refinement(
            SetType(NamedType("name")), SetType(STRING), schema
        )
        assert not is_refinement(
            SetType(STRING), SetType(INTEGER), schema
        )

    def test_multiset_covariance(self, schema):
        assert is_refinement(
            MultisetType(NamedType("name")), MultisetType(STRING), schema
        )

    def test_sequence_covariance(self, schema):
        assert is_refinement(
            SequenceType(NamedType("student")),
            SequenceType(NamedType("person")),
            schema,
        )

    def test_different_constructors_incompatible(self, schema):
        assert not is_refinement(SetType(INTEGER), MultisetType(INTEGER),
                                 schema)
        assert not is_refinement(SequenceType(INTEGER), SetType(INTEGER),
                                 schema)


class TestRecursiveEquations:
    def test_recursive_domain_handled_coinductively(self):
        # a recursive domain equation must not loop the checker
        schema = (
            SchemaBuilder()
            .domain("tree", (("label", INTEGER), ("kids", {"tree"})))
            .build()
        )
        target = schema.rhs_of("tree")
        assert is_refinement(NamedType("tree"), target, schema)


class TestCompatibility:
    def test_compatibility_is_symmetric(self, schema):
        assert types_compatible(NamedType("name"), STRING, schema)
        assert types_compatible(STRING, NamedType("name"), schema)

    def test_incompatible_types(self, schema):
        assert not types_compatible(INTEGER, STRING, schema)

    def test_preorder_transitivity_sample(self, schema):
        # student ≼ person and person ≼ (name) imply student ≼ (name)
        narrow = tt(("name", NamedType("name")))
        assert is_refinement(NamedType("student"), narrow, schema)
