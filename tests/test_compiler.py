"""Tests for the LOGRES-to-ALGRES compiler ([Ca90])."""

import pytest

from repro import Engine, FactSet, Oid, TupleValue
from repro.compiler import (
    catalog_to_factset,
    compile_program,
    factset_to_catalog,
)
from repro.errors import CompilationError
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


def parent_facts(*pairs):
    facts = FactSet()
    for p, c in pairs:
        facts.add_association("parent", TupleValue(par=p, chil=c))
    return facts


class TestDataConversion:
    def test_factset_catalog_roundtrip_with_classes(self):
        schema, _ = build("""
        classes
          person = (name: string).
        associations
          likes = (who: person, what: string).
        rules
          likes(who X, what "x") <- likes(who X, what "x").
        """)
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        facts.add_association("likes", TupleValue(who=Oid(1), what="tea"))
        catalog = factset_to_catalog(facts, schema)
        assert len(catalog.get("person")) == 1
        assert catalog.get("person").schema.has_label("self")
        back = catalog_to_factset(catalog, schema)
        assert back == facts

    def test_undeclared_predicate_rejected(self):
        schema, _ = build(TC_SOURCE)
        facts = FactSet()
        facts.add_association("ghost", TupleValue(x=1))
        with pytest.raises(CompilationError, match="not declared"):
            factset_to_catalog(facts, schema)


class TestEquivalenceWithEngine:
    def test_transitive_closure(self):
        schema, program = build(TC_SOURCE)
        edb = parent_facts(("a", "b"), ("b", "c"), ("c", "d"), ("a", "e"))
        compiled = compile_program(program, schema)
        assert compiled.run(edb) == Engine(schema, program).run(edb)

    def test_class_bodies_are_compilable(self):
        schema, program = build("""
        classes
          person = (name: string, age: integer).
        associations
          senior = (name: string, age: integer).
        rules
          senior(name N, age A) <- person(self S, name N, age A),
                                   A >= 65.
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="old", age=70))
        edb.add_object("person", Oid(2), TupleValue(name="kid", age=7))
        compiled = compile_program(program, schema)
        out = compiled.run(edb)
        assert [f.value["name"] for f in out.facts_of("senior")] == ["old"]

    def test_constants_in_head_and_body(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          tagged = (a: string, b: string).
        rules
          tagged(a X, b "fixed") <- edge(a X, b "c").
        """)
        edb = FactSet()
        for a, b in [("x", "c"), ("y", "d")]:
            edb.add_association("edge", TupleValue(a=a, b=b))
        compiled = compile_program(program, schema)
        out = compiled.run(edb)
        assert [(f.value["a"], f.value["b"])
                for f in out.facts_of("tagged")] == [("x", "fixed")]

    def test_repeated_variable_in_literal(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          loop = (a: string, b: string).
        rules
          loop(a X, b X) <- edge(a X, b X).
        """)
        edb = FactSet()
        for a, b in [("x", "x"), ("y", "z")]:
            edb.add_association("edge", TupleValue(a=a, b=b))
        out = compile_program(program, schema).run(edb)
        assert [f.value["a"] for f in out.facts_of("loop")] == ["x"]

    def test_extensional_and_intensional_predicate_merge(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          path = (a: string, b: string).
        rules
          path(a X, b Y) <- edge(a X, b Y).
          path(a X, b Z) <- edge(a X, b Y), path(a Y, b Z).
        """)
        edb = FactSet()
        edb.add_association("edge", TupleValue(a="p", b="q"))
        edb.add_association("path", TupleValue(a="seeded", b="row"))
        out = compile_program(program, schema).run(edb)
        native = Engine(schema, program).run(edb)
        assert out == native
        assert out.count("path") == 2

    def test_multi_rule_nonrecursive_union(self):
        schema, program = build("""
        associations
          m = (v: integer).
          f = (v: integer).
          person = (v: integer).
        rules
          person(v X) <- m(v X).
          person(v X) <- f(v X).
        """)
        edb = FactSet()
        edb.add_association("m", TupleValue(v=1))
        edb.add_association("f", TupleValue(v=2))
        out = compile_program(program, schema).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("person")) == \
            [1, 2]

    def test_dependency_chain_evaluated_in_order(self):
        schema, program = build("""
        associations
          base = (v: integer).
          mid = (v: integer).
          top = (v: integer).
        rules
          mid(v X) <- base(v X), X > 1.
          top(v X) <- mid(v X), X > 2.
        """)
        edb = FactSet()
        for i in range(5):
            edb.add_association("base", TupleValue(v=i))
        out = compile_program(program, schema).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("top")) == [3, 4]


class TestFragmentBoundaries:
    def test_unstratified_negation_rejected(self):
        from repro.errors import StratificationError

        schema, program = build("""
        associations
          e = (v: integer).
          p = (v: integer).
        rules
          p(v X) <- e(v X), ~p(v 0).
        """)
        with pytest.raises(StratificationError):
            compile_program(program, schema)

    def test_active_domain_negation_rejected(self):
        schema, program = build("""
        associations
          e = (a: integer, b: integer).
          p = (a: integer).
        rules
          p(a X) <- e(a X, b Y), ~e(a Y, b Z).
        """)
        with pytest.raises(CompilationError, match="active-domain"):
            compile_program(program, schema)

    def test_deletion_rejected(self):
        schema, program = build("""
        associations
          e = (v: integer).
        rules
          ~e(v X) <- e(v X), X > 3.
        """)
        with pytest.raises(CompilationError):
            compile_program(program, schema)

    def test_invention_rejected(self):
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          s = (tag: string).
        rules
          c(tag X) <- s(tag X).
        """)
        with pytest.raises(CompilationError):
            compile_program(program, schema)

    def test_class_head_rejected(self):
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          s = (tag: string).
        rules
          c(self S, tag X) <- c(self S), s(tag X).
        """)
        with pytest.raises(CompilationError, match="class heads"):
            compile_program(program, schema)

    def test_tuple_variables_rejected(self):
        schema, program = build("""
        associations
          e = (v: integer, w: integer).
          p = (v: integer, w: integer).
        rules
          p(T) <- e(T).
        """)
        with pytest.raises(CompilationError):
            compile_program(program, schema)

    def test_collection_builtins_rejected(self):
        schema, program = build("""
        associations
          e = (v: {integer}).
          p = (v: {integer}).
        rules
          p(v Z) <- e(v X), e(v Y), union(X, Y, Z).
        """)
        with pytest.raises(CompilationError, match="builtin"):
            compile_program(program, schema)

    def test_mutual_recursion_rejected(self):
        schema, program = build("""
        associations
          e = (a: string, b: string).
          odd = (a: string, b: string).
          evenp = (a: string, b: string).
        rules
          odd(a X, b Y) <- e(a X, b Y).
          odd(a X, b Z) <- e(a X, b Y), evenp(a Y, b Z).
          evenp(a X, b Z) <- e(a X, b Y), odd(a Y, b Z).
        """)
        with pytest.raises(CompilationError, match="mutual recursion"):
            compile_program(program, schema)

    def test_nonlinear_recursion_rejected(self):
        schema, program = build("""
        associations
          e = (a: string, b: string).
          tc = (a: string, b: string).
        rules
          tc(a X, b Y) <- e(a X, b Y).
          tc(a X, b Z) <- tc(a X, b Y), tc(a Y, b Z).
        """)
        with pytest.raises(CompilationError, match="non-linear"):
            compile_program(program, schema)

    def test_partial_head_rejected(self):
        schema, program = build("""
        associations
          e = (a: string, b: string).
          p = (a: string, b: string).
        rules
          p(a X) <- e(a X, b Y).
        """)
        with pytest.raises(CompilationError, match="every attribute"):
            compile_program(program, schema)


class TestArithmeticExtension:
    def test_arithmetic_binding_compiles(self):
        schema, program = build("""
        associations
          n = (v: integer).
          double = (v: integer, d: integer).
        rules
          double(v X, d Y) <- n(v X), Y = X * 2 + 1.
        """)
        edb = FactSet()
        for i in range(4):
            edb.add_association("n", TupleValue(v=i))
        compiled = compile_program(program, schema)
        assert compiled.run(edb) == Engine(schema, program).run(edb)

    def test_chained_arithmetic_bindings(self):
        schema, program = build("""
        associations
          n = (v: integer).
          out = (v: integer, w: integer).
        rules
          out(v X, w Z) <- n(v X), Y = X + 1, Z = Y * Y.
        """)
        edb = FactSet()
        edb.add_association("n", TupleValue(v=3))
        compiled = compile_program(program, schema)
        out = compiled.run(edb)
        assert [(f.value["v"], f.value["w"])
                for f in out.facts_of("out")] == [(3, 16)]

    def test_arithmetic_in_comparison(self):
        schema, program = build("""
        associations
          n = (v: integer).
          big = (v: integer).
        rules
          big(v X) <- n(v X), X * 2 > 5.
        """)
        edb = FactSet()
        for i in range(5):
            edb.add_association("n", TupleValue(v=i))
        out = compile_program(program, schema).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("big")) == [3, 4]


class TestStratifiedNegation:
    def test_antijoin_matches_stratified_engine(self):
        from repro import Semantics
        from repro.workloads import random_edges

        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
          leaf = (n: string).
          oneway = (a: string, b: string).
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
          anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
          leaf(n Y) <- parent(par X, chil Y), ~parent(par Y).
          oneway(a X, b Y) <- parent(par X, chil Y),
                              ~parent(par Y, chil X).
        """)
        edb = random_edges(20, 40, seed=12)
        compiled = compile_program(program, schema)
        native = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        assert compiled.run(edb) == native

    def test_negation_with_optimizer(self):
        from repro import Semantics
        from repro.workloads import chain_edges

        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          leaf = (n: string).
        rules
          leaf(n Y) <- parent(par X, chil Y), ~parent(par Y).
        """)
        edb = chain_edges(10)
        compiled = compile_program(program, schema, optimize_plans=True)
        native = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        assert compiled.run(edb) == native
        # exactly one leaf on a chain
        assert compiled.run(edb).count("leaf") == 1
