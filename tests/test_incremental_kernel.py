"""Differential property tests for the incremental fixpoint kernel.

``EvalConfig(incremental=True)`` applies deltas in place
(:func:`repro.engine.step.apply_deltas_inplace`) with persistent indexes
and active domains; ``incremental=False`` keeps the copying reference
implementation.  These tests pin the kernel to the reference:

* 100 randomized flat rule programs (joins, recursion, filters,
  arithmetic, negation, deletion heads over :mod:`repro.workloads`
  graph generators) must produce **bit-identical** fixpoints under the
  inflationary, stratified, and non-inflationary semantics — including
  identical failure behaviour when a run does not terminate;
* class-fact programs (o-value overwrites) must be bit-identical;
* oid-inventing programs must be isomorphic (oid numbering may depend on
  enumeration order, which the two kernels do not share).
"""

import random

import pytest

from repro import Engine, EvalConfig, FactSet, Semantics, parse_source
from repro.errors import LogresError
from repro.values import Oid, TupleValue
from repro.workloads import random_edges

SEEDS = range(100)

MAX_ITERATIONS = 300

# ---------------------------------------------------------------------------
# randomized flat programs
# ---------------------------------------------------------------------------
SHAPES = ("copy", "swap", "join", "filter", "shift", "closure",
          "negation", "deletion")


def random_program(rng: random.Random):
    """A random flat program over ``e``; always stratifiable (each rule
    reads only ``e`` or lower-numbered ``out`` relations)."""
    shapes = rng.choices(SHAPES, k=rng.randint(2, 4))
    decls, rules = [], []
    for i, shape in enumerate(shapes):
        out = f"out{i}"
        decls.append(f"  {out} = (a: string, b: string).")
        prev = f"out{rng.randrange(i)}" if i and rng.random() < 0.4 else "e"
        if shape == "copy":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
        elif shape == "swap":
            rules.append(f"{out}(a Y, b X) <- {prev}(a X, b Y).")
        elif shape == "join":
            rules.append(
                f"{out}(a X, b Z) <- {prev}(a X, b Y), e(a Y, b Z)."
            )
        elif shape == "filter":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y), X < Y.")
        elif shape == "shift":
            rules.append(f"{out}(a X, b Z) <- {prev}(a X, b Y), Z = Y.")
        elif shape == "closure":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
            rules.append(
                f"{out}(a X, b Z) <- {prev}(a X, b Y), {out}(a Y, b Z)."
            )
        elif shape == "negation":
            rules.append(
                f"{out}(a X, b Y) <- {prev}(a X, b Y), ~e(a Y, b X)."
            )
        else:  # deletion head
            rules.append(
                f"~{out}(a X, b Y) <- {out}(a X, b Y), e(a Y, b X)."
            )
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
    source = (
        "associations\n  e = (a: string, b: string).\n"
        + "\n".join(decls)
        + "\nrules\n  "
        + "\n  ".join(rules)
    )
    return source


def random_edb(rng: random.Random) -> FactSet:
    nodes = rng.randint(3, 8)
    edges = rng.randint(2, 12)
    return random_edges(nodes, edges, seed=rng.randrange(10_000),
                        acyclic=rng.random() < 0.7,
                        pred="e", a="a", b="b")


def outcome(schema, program, edb, semantics, incremental, seminaive=True):
    """Run one configuration; (status, payload) so that both kernels can
    be compared even when evaluation legitimately fails."""
    config = EvalConfig(
        max_iterations=MAX_ITERATIONS,
        max_facts=50_000,
        seminaive=seminaive,
        incremental=incremental,
    )
    engine = Engine(schema, program, config)
    try:
        return "ok", engine.run(edb.copy(), semantics)
    except LogresError as exc:
        return "error", type(exc).__name__


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_matches_reference(seed):
    rng = random.Random(seed)
    source = random_program(rng)
    unit = parse_source(source)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    for semantics in (
        Semantics.INFLATIONARY,
        Semantics.STRATIFIED,
        Semantics.NONINFLATIONARY,
    ):
        fast = outcome(schema, program, edb, semantics, incremental=True)
        slow = outcome(schema, program, edb, semantics, incremental=False)
        assert fast[0] == slow[0], (semantics, source, fast, slow)
        assert fast[1] == slow[1], (semantics, source)
    # the naive (non-semi-naive) inflationary path, incremental vs copying
    fast = outcome(schema, program, edb, Semantics.INFLATIONARY,
                   incremental=True, seminaive=False)
    slow = outcome(schema, program, edb, Semantics.INFLATIONARY,
                   incremental=False, seminaive=False)
    assert fast[0] == slow[0] and fast[1] == slow[1], source


# ---------------------------------------------------------------------------
# class facts: o-value overwrites through the in-place kernel
# ---------------------------------------------------------------------------
CLASS_SOURCE = """
classes
  c = (name: string, tag: string).
associations
  e = (a: string, b: string).
rules
  c(self S, tag X) <- c(self S, name X), e(a X, b Y).
"""


@pytest.mark.parametrize("seed", range(20))
def test_class_fact_programs_bit_identical(seed):
    rng = random.Random(1000 + seed)
    unit = parse_source(CLASS_SOURCE)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    for i in range(rng.randint(1, 6)):
        edb.add_object("c", Oid(100 + i), TupleValue(name=f"n{i}"))
    for semantics in (Semantics.INFLATIONARY, Semantics.STRATIFIED):
        fast = outcome(schema, program, edb, semantics, incremental=True)
        slow = outcome(schema, program, edb, semantics, incremental=False)
        assert fast == slow


# ---------------------------------------------------------------------------
# oid invention: identical up to oid renaming
# ---------------------------------------------------------------------------
INVENTION_SOURCE = """
classes
  node = (name: string).
associations
  e = (a: string, b: string).
rules
  node(name X) <- e(a X, b Y).
"""


@pytest.mark.parametrize("seed", range(20))
def test_invention_programs_isomorphic(seed):
    rng = random.Random(2000 + seed)
    unit = parse_source(INVENTION_SOURCE)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    fast = outcome(schema, program, edb, Semantics.INFLATIONARY, True)
    slow = outcome(schema, program, edb, Semantics.INFLATIONARY, False)
    assert fast[0] == slow[0] == "ok"
    assert fast[1].to_instance().isomorphic_to(slow[1].to_instance())


# ---------------------------------------------------------------------------
# stats: the running counter must agree with a full recount
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seminaive", [True, False])
def test_running_counter_matches_recount(seminaive):
    rng = random.Random(42)
    unit = parse_source(random_program(rng))
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    engine = Engine(
        schema, program,
        EvalConfig(max_iterations=MAX_ITERATIONS, seminaive=seminaive,
                   incremental=True),
    )
    out = engine.run(edb.copy())
    assert engine.stats.facts_derived == out.count()
    assert engine.stats.time_total > 0.0
    assert len(engine.stats.time_per_iteration) >= 1
