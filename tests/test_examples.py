"""Every example script must run cleanly and produce its key output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "milan beat inter"),
    ("university_advising.py", "namesake object"),
    ("genealogy.py", "descendants"),
    ("updates_and_modules.py", "correctly rejected"),
    ("algres_pipeline.py", "all three routes agree"),
    ("methods_and_tracing.py", "why does anc(a, d) hold?"),
    ("case_study_parts.py", "Cyclic engineering change rejected"),
    ("case_study_routes.py", "routes through the network"),
]


@pytest.mark.parametrize("script,needle", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert needle in result.stdout
