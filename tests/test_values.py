"""Unit tests for the complex value model and oids."""

import pytest

from repro.values import (
    NIL,
    MultisetValue,
    Oid,
    OidGenerator,
    SequenceValue,
    SetValue,
    TupleValue,
    value_repr,
)


class TestOids:
    def test_nil_is_oid_zero(self):
        assert NIL == Oid(0)
        assert NIL.is_nil
        assert not Oid(1).is_nil

    def test_repr(self):
        assert repr(NIL) == "nil"
        assert repr(Oid(7)) == "&7"

    def test_generator_is_sequential(self):
        gen = OidGenerator()
        assert [gen.fresh().number for _ in range(3)] == [1, 2, 3]

    def test_generator_reserve_above(self):
        gen = OidGenerator()
        gen.reserve_above(Oid(10))
        assert gen.fresh() == Oid(11)
        gen.reserve_above(Oid(5))  # no effect backwards
        assert gen.fresh() == Oid(12)

    def test_generator_rejects_zero_start(self):
        with pytest.raises(ValueError):
            OidGenerator(start=0)


class TestTupleValue:
    def test_label_order_does_not_matter(self):
        assert TupleValue(a=1, b=2) == TupleValue(b=2, a=1)
        assert hash(TupleValue(a=1, b=2)) == hash(TupleValue(b=2, a=1))

    def test_mapping_protocol(self):
        t = TupleValue(x=1, y="s")
        assert t["x"] == 1
        assert t.get("ghost") is None
        assert "y" in t
        assert sorted(t) == ["x", "y"]
        assert len(t) == 2
        with pytest.raises(KeyError):
            t["ghost"]

    def test_project(self):
        t = TupleValue(a=1, b=2, c=3)
        assert t.project(["a", "c"]) == TupleValue(a=1, c=3)
        assert t.project(["ghost"]) == TupleValue()

    def test_with_field_and_without(self):
        t = TupleValue(a=1)
        assert t.with_field("b", 2) == TupleValue(a=1, b=2)
        assert t.with_field("a", 9) == TupleValue(a=9)
        assert TupleValue(a=1, b=2).without("b") == TupleValue(a=1)

    def test_merged_right_bias(self):
        assert TupleValue(a=1, b=2).merged(TupleValue(b=9, c=3)) == \
            TupleValue(a=1, b=9, c=3)

    def test_nested_values(self):
        t = TupleValue(inner=TupleValue(x=1), s=SetValue([1, 2]))
        assert t["inner"]["x"] == 1
        assert 2 in t["s"]


class TestSetValue:
    def test_deduplicates(self):
        assert len(SetValue([1, 1, 2])) == 2

    def test_set_operations(self):
        a, b = SetValue([1, 2]), SetValue([2, 3])
        assert a.union(b) == SetValue([1, 2, 3])
        assert a.intersection(b) == SetValue([2])
        assert a.difference(b) == SetValue([1])
        assert a.with_element(5) == SetValue([1, 2, 5])

    def test_hashable_nested(self):
        outer = SetValue([SetValue([1]), SetValue([2])])
        assert SetValue([1]) in outer


class TestMultisetValue:
    def test_counts_duplicates(self):
        m = MultisetValue([1, 1, 2])
        assert m.multiplicity(1) == 2
        assert m.multiplicity(2) == 1
        assert m.multiplicity(3) == 0
        assert len(m) == 3
        assert sorted(m) == [1, 1, 2]

    def test_support(self):
        assert MultisetValue([1, 1, 2]).support == frozenset({1, 2})

    def test_union_adds_multiplicities(self):
        merged = MultisetValue([1]).union(MultisetValue([1, 2]))
        assert merged.multiplicity(1) == 2
        assert merged.multiplicity(2) == 1

    def test_equality_ignores_order(self):
        assert MultisetValue([1, 2, 1]) == MultisetValue([1, 1, 2])
        assert MultisetValue([1]) != MultisetValue([1, 1])

    def test_from_counts_drops_nonpositive(self):
        m = MultisetValue.from_counts({1: 2, 2: 0})
        assert m.multiplicity(2) == 0
        assert len(m) == 2


class TestSequenceValue:
    def test_order_matters(self):
        assert SequenceValue([1, 2]) != SequenceValue([2, 1])

    def test_indexing_and_length(self):
        s = SequenceValue(["a", "b"])
        assert s[0] == "a"
        assert len(s) == 2

    def test_appended_and_concat(self):
        s = SequenceValue([1]).appended(2)
        assert s == SequenceValue([1, 2])
        assert s.concat(SequenceValue([3])) == SequenceValue([1, 2, 3])

    def test_membership(self):
        assert 1 in SequenceValue([1, 2])
        assert 9 not in SequenceValue([1, 2])


class TestValueRepr:
    def test_strings_quoted(self):
        assert value_repr("x") == '"x"'

    def test_booleans_lowercase(self):
        assert value_repr(True) == "true"
        assert value_repr(False) == "false"

    def test_collections_render_with_constructors(self):
        assert repr(SetValue([1])) == "{1}"
        assert repr(SequenceValue([1, 2])) == "<1, 2>"
        assert repr(MultisetValue([1, 1])) == "[1, 1]"
