"""Tests for the high-level Database facade."""

import pytest

from repro import (
    NIL,
    Database,
    Mode,
    Module,
    Oid,
    Semantics,
    SetValue,
)
from repro.errors import (
    LogresError,
    ModuleApplicationError,
    SchemaError,
    ValueError_,
)

SOURCE = """
domains
  name = string.
classes
  person = (name, address: string).
  student = (person, school: string).
  student isa person.
associations
  parent = (par: name, chil: name).
rules
  parent(par "eve", chil "abel").
"""


@pytest.fixture
def db():
    return Database.from_source(SOURCE)


class TestConstruction:
    def test_from_source_collects_schema_and_rules(self, db):
        assert db.schema.is_class("person")
        assert len(db.rules) == 1

    def test_repr(self, db):
        assert "rules" in repr(db)


class TestInserts:
    def test_insert_object_returns_oid(self, db):
        oid = db.insert("person", name="sara", address="milano")
        assert isinstance(oid, Oid)
        assert db.objects("person")[oid]["name"] == "sara"

    def test_insert_subclass_propagates_to_superclasses(self, db):
        oid = db.insert("student", name="али", address="x", school="s")
        assert oid in db.objects("person")
        assert db.objects("person")[oid]["name"] == "али"

    def test_insert_association_returns_none(self, db):
        assert db.insert("parent", par="a", chil="b") is None
        assert any(t["par"] == "a" for t in db.tuples("parent"))

    def test_insert_coerces_python_collections(self):
        fdb = Database.from_source("""
        classes
          player = (pname: string, roles: {integer}).
        """)
        oid = fdb.insert("player", pname="a", roles={1, 2})
        assert fdb.objects("player")[oid]["roles"] == SetValue([1, 2])

    def test_insert_unknown_predicate_rejected(self, db):
        with pytest.raises(SchemaError, match="unknown predicate"):
            db.insert("ghost", x=1)

    def test_insert_unknown_attribute_rejected(self, db):
        with pytest.raises(ValueError_, match="no attribute"):
            db.insert("person", name="x", address="y", shoe=42)

    def test_incomplete_association_rejected(self, db):
        with pytest.raises(ValueError_, match="misses"):
            db.insert("parent", par="only-one-side")

    def test_nil_reference_accepted_in_class(self):
        tdb = Database.from_source("""
        classes
          person = (name: string).
          team = (tname: string, captain: person).
        """)
        oid = tdb.insert("team", tname="x", captain=NIL)
        assert tdb.objects("team")[oid]["captain"] == NIL
        assert tdb.check() == []


class TestDeletes:
    def test_delete_association_by_attributes(self, db):
        db.insert("parent", par="a", chil="b")
        db.insert("parent", par="a", chil="c")
        assert db.delete("parent", par="a", chil="b") == 1
        assert db.delete("parent", par="zzz") == 0

    def test_delete_object_by_oid_and_by_attributes(self, db):
        oid = db.insert("person", name="sara", address="m")
        assert db.delete("person", oid=oid) == 1
        db.insert("person", name="ugo", address="r")
        assert db.delete("person", name="ugo") == 1


class TestQueriesAndRules:
    def test_query_uses_persistent_rules(self, db):
        answers = db.query('?- parent(par "eve", chil C).')
        assert [a["C"] for a in answers] == ["abel"]

    def test_query_accepts_goal_section_text(self, db):
        answers = db.query('goal\n ?- parent(par P).')
        assert [a["P"] for a in answers] == ["eve"]

    def test_query_without_goal_rejected(self, db):
        with pytest.raises(LogresError):
            db.query("rules\n parent(par \"x\", chil \"y\").")

    def test_add_rules_then_query(self, db):
        db.add_rules("""
          parent(par "abel", chil "enos").
          parent(par X, chil Z) <- parent(par X, chil Y),
                                   parent(par Y, chil Z).
        """)
        answers = db.query('?- parent(par "eve", chil C).')
        assert sorted(a["C"] for a in answers) == ["abel", "enos"]

    def test_instance_cache_invalidated_by_writes(self, db):
        assert len(db.tuples("parent")) == 1
        db.insert("parent", par="x", chil="y")
        assert len(db.tuples("parent")) == 2

    def test_query_hides_oids_in_tuple_bindings(self, db):
        db.insert("person", name="sara", address="m")
        answers = db.query("?- person(P).")
        assert all("self" not in a["P"] for a in answers)


class TestModulesThroughFacade:
    def test_run_module_advances_state(self, db):
        mod = Module.from_source(
            'rules\n  parent(par "abel", chil "enos").', name="m"
        )
        db.run_module(mod, Mode.RIDV)
        assert any(t["chil"] == "enos" for t in db.tuples("parent"))

    def test_rejected_module_preserves_state(self):
        tdb = Database.from_source("""
        classes
          person = (name: string).
        associations
          likes = (who: person, what: string).
        """)
        p = tdb.insert("person", name="a")
        tdb.insert("likes", who=p, what="tea")
        mod = Module.from_source("""
        rules
          ~person(self S) <- person(self S).
        """, name="bad")
        with pytest.raises(ModuleApplicationError):
            tdb.run_module(mod, Mode.RIDV)
        assert p in tdb.objects("person")


class TestPersistence:
    def test_save_load_roundtrip(self, db, tmp_path):
        db.insert("person", name="sara", address="m")
        db.insert("parent", par="sara", chil="luca")
        path = tmp_path / "db.json"
        db.save(path)
        restored = Database.load(path)
        assert restored.tuples("parent") == db.tuples("parent")
        assert len(restored.objects("person")) == 1
        # fresh oids continue above the persisted ones
        new_oid = restored.insert("person", name="x", address="y")
        assert new_oid.number > max(
            o.number for o in db.objects("person")
        )

    def test_semantics_override_per_query(self, db):
        assert db.query(
            "?- parent(par P).", semantics=Semantics.STRATIFIED
        )


class TestExplain:
    def test_explain_association_fact(self):
        db = Database.from_source("""
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
          anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
        """)
        db.insert("parent", par="a", chil="b")
        db.insert("parent", par="b", chil="c")
        tree = db.explain("anc", a="a", d="c")
        rendered = tree.render()
        assert "(extensional)" in rendered
        assert "rule:" in rendered

    def test_explain_class_fact_by_oid(self):
        db = Database.from_source("""
        classes
          c = (tag: string).
        associations
          seed = (tag: string).
        rules
          c(tag X) <- seed(tag X).
        """)
        db.insert("seed", tag="x")
        (oid,) = db.objects("c")
        tree = db.explain("c", oid=oid)
        assert tree.rule is not None

    def test_explain_missing_fact_rejected(self):
        from repro.errors import EvaluationError

        db = Database.from_source("""
        associations
          p = (v: integer).
        """)
        with pytest.raises(EvaluationError, match="does not hold"):
            db.explain("p", v=42)

    def test_explain_class_requires_oid(self):
        from repro.errors import EvaluationError

        db = Database.from_source("""
        classes
          c = (tag: string).
        """)
        with pytest.raises(EvaluationError, match="oid"):
            db.explain("c")


class TestMaterializeAll:
    def test_edb_coincides_with_instance(self):
        """Section 4.2's materialization strategy: E = I afterwards."""
        db = Database.from_source("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
        """)
        db.insert("edge", a="x", b="y")
        db.insert("edge", a="y", b="z")
        added = db.materialize_all()
        assert added == 3  # the three tc tuples became extensional
        assert db.state.edb == db.instance()

    def test_idempotent(self):
        db = Database.from_source("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
        """)
        db.insert("edge", a="x", b="y")
        db.materialize_all()
        assert db.materialize_all() == 0
