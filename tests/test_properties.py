"""Property-based tests (hypothesis) on core invariants.

Covered properties:

* complex values — tuple merge/project laws, multiset union counts,
  set-operation algebra;
* refinement — reflexivity on closed descriptors, transitivity on
  sampled triples;
* fact sets — ``⊕`` associativity and right bias, minus/intersection
  laws;
* serialization — value / fact-set / rule round-trips;
* engine — LOGRES evaluation of random positive flat programs agrees
  with the independent Datalog baseline; semi-naive agrees with naive;
  determinacy up to oid renaming on the invention fragment;
* powerset — |power(R)| = 2^|R| for random small relations.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    Database,
    Engine,
    EvalConfig,
    FactSet,
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    parse_source,
)
from repro.datalog import Atom, DVar, DatalogEngine, DatalogRule
from repro.storage import Fact
from repro.storage.persist import (
    decode_factset,
    decode_value,
    encode_factset,
    encode_value,
)
from repro.types import SchemaBuilder, is_refinement
from repro.types.descriptors import (
    INTEGER,
    STRING,
    MultisetType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
)
from repro.values import Oid

# ---------------------------------------------------------------------------
# value strategies
# ---------------------------------------------------------------------------
scalars = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcxyz", max_size=4),
    st.booleans(),
    st.builds(Oid, st.integers(min_value=0, max_value=20)),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.builds(SetValue, st.frozensets(children, max_size=3)),
        st.builds(MultisetValue, st.lists(children, max_size=3)),
        st.builds(SequenceValue, st.lists(children, max_size=3)),
        st.builds(
            TupleValue,
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children, max_size=3
            ),
        ),
    ),
    max_leaves=8,
)

label_sets = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]), scalars, max_size=4
)


class TestValueProperties:
    @given(label_sets, label_sets)
    def test_tuple_merge_right_bias(self, left, right):
        merged = TupleValue(left).merged(TupleValue(right))
        for key, val in right.items():
            assert merged[key] == val
        for key, val in left.items():
            if key not in right:
                assert merged[key] == val

    @given(label_sets)
    def test_project_then_labels_subset(self, fields):
        t = TupleValue(fields)
        p = t.project(["a", "b"])
        assert set(p.labels) <= {"a", "b"}
        for label in p.labels:
            assert p[label] == t[label]

    @given(st.lists(scalars, max_size=6), st.lists(scalars, max_size=6))
    def test_multiset_union_counts_add(self, xs, ys):
        union = MultisetValue(xs).union(MultisetValue(ys))
        for v in set(xs) | set(ys):
            assert union.multiplicity(v) == xs.count(v) + ys.count(v)

    @given(st.frozensets(scalars, max_size=6),
           st.frozensets(scalars, max_size=6))
    def test_set_algebra(self, xs, ys):
        a, b = SetValue(xs), SetValue(ys)
        assert a.union(b).elements == xs | ys
        assert a.intersection(b).elements == xs & ys
        assert a.difference(b).elements == xs - ys

    @given(values)
    def test_values_are_hashable_and_self_equal(self, value):
        assert hash(value) == hash(value)
        assert value == value


# ---------------------------------------------------------------------------
# refinement
# ---------------------------------------------------------------------------
closed_types = st.recursive(
    st.sampled_from([INTEGER, STRING]),
    lambda children: st.one_of(
        st.builds(SetType, children),
        st.builds(MultisetType, children),
        st.builds(SequenceType, children),
        st.builds(
            lambda fields: TupleType(tuple(
                TupleField(label, t) for label, t in fields.items()
            )),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children,
                min_size=0, max_size=3,
            ),
        ),
    ),
    max_leaves=6,
)

_EMPTY_SCHEMA = SchemaBuilder().build()


class TestRefinementProperties:
    @given(closed_types)
    def test_reflexive_on_closed_descriptors(self, t):
        assert is_refinement(t, t, _EMPTY_SCHEMA)

    @given(closed_types, closed_types, closed_types)
    @settings(max_examples=60)
    def test_transitive(self, t1, t2, t3):
        if is_refinement(t1, t2, _EMPTY_SCHEMA) and \
                is_refinement(t2, t3, _EMPTY_SCHEMA):
            assert is_refinement(t1, t3, _EMPTY_SCHEMA)

    @given(closed_types, closed_types)
    def test_width_extension_refines(self, t1, t2):
        wide = TupleType((TupleField("x", t1), TupleField("y", t2)))
        narrow = TupleType((TupleField("x", t1),))
        assert is_refinement(wide, narrow, _EMPTY_SCHEMA)


# ---------------------------------------------------------------------------
# fact sets
# ---------------------------------------------------------------------------
fact_strategy = st.one_of(
    st.builds(
        lambda pred, fields: Fact(pred, TupleValue(fields)),
        st.sampled_from(["p", "q"]),
        label_sets,
    ),
    st.builds(
        lambda pred, oid, fields: Fact(pred, TupleValue(fields), Oid(oid)),
        st.sampled_from(["c", "d"]),
        st.integers(min_value=1, max_value=6),
        label_sets,
    ),
)

factsets = st.builds(FactSet.from_facts,
                     st.lists(fact_strategy, max_size=8))


class TestFactSetProperties:
    @given(factsets, factsets, factsets)
    @settings(max_examples=60)
    def test_compose_associative(self, a, b, c):
        assert a.compose(b).compose(c) == a.compose(b.compose(c))

    @given(factsets, factsets)
    def test_compose_right_bias(self, a, b):
        merged = a.compose(b)
        for fact in b.facts():
            assert fact in merged

    @given(factsets, factsets)
    def test_minus_then_disjoint(self, a, b):
        left = a.minus(b)
        for fact in left.facts():
            assert fact not in b

    @given(factsets, factsets)
    def test_intersection_subset_of_both(self, a, b):
        inter = a.intersection(b)
        for fact in inter.facts():
            assert fact in a and fact in b

    @given(factsets)
    def test_serialization_roundtrip(self, facts):
        assert decode_factset(encode_factset(facts)) == facts


class TestValueSerializationProperty:
    @given(values)
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value


# ---------------------------------------------------------------------------
# engine vs the independent Datalog baseline
# ---------------------------------------------------------------------------
EDGE_SOURCE = """
associations
  e = (a: integer, b: integer).
  t = (a: integer, b: integer).
rules
  t(a X, b Y) <- e(a X, b Y).
  t(a X, b Z) <- e(a X, b Y), t(a Y, b Z).
"""

edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7)),
    max_size=14,
)


class TestEngineAgreesWithBaseline:
    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_transitive_closure_matches_datalog(self, edges):
        unit = parse_source(EDGE_SOURCE)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        for a, b in edges:
            edb.add_association("e", TupleValue(a=a, b=b))
        logres = Engine(schema, program,
                        EvalConfig(max_iterations=500)).run(edb)
        got = {(f.value["a"], f.value["b"]) for f in logres.facts_of("t")}

        X, Y, Z = DVar("X"), DVar("Y"), DVar("Z")
        baseline = DatalogEngine([
            DatalogRule(Atom("t", X, Y), (Atom("e", X, Y),)),
            DatalogRule(Atom("t", X, Z),
                        (Atom("e", X, Y), Atom("t", Y, Z))),
        ]).seminaive({("e", pair) for pair in edges})
        expected = {args for pred, args in baseline if pred == "t"}
        assert got == expected

    @given(edge_lists)
    @settings(max_examples=25, deadline=None)
    def test_seminaive_equals_naive(self, edges):
        unit = parse_source(EDGE_SOURCE)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        for a, b in edges:
            edb.add_association("e", TupleValue(a=a, b=b))
        fast = Engine(schema, program, EvalConfig(seminaive=True))
        slow = Engine(schema, program, EvalConfig(seminaive=False))
        assert fast.run(edb) == slow.run(edb)


class TestDeterminacyProperty:
    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from("wxyz")),
                    min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_invention_runs_isomorphic(self, pairs):
        source = """
        classes
          link = (l: string, r: string).
        associations
          raw = (l: string, r: string).
        rules
          link(l X, r Y) <- raw(l X, r Y).
        """
        unit = parse_source(source)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        for l, r in pairs:
            edb.add_association("raw", TupleValue(l=l, r=r))
        from repro.values import OidGenerator

        run1 = Engine(schema, program).run(edb).to_instance()
        run2 = Engine(schema, program,
                      oidgen=OidGenerator(start=1000)).run(edb)
        assert run1.isomorphic_to(run2.to_instance())


class TestPowersetProperty:
    @given(st.frozensets(st.integers(min_value=0, max_value=9),
                         max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_cardinality(self, elements):
        db = Database.from_source("""
        associations
          r = (d: integer).
          power = (s: {integer}).
        rules
          power(s X) <- X = {}.
          power(s X) <- r(d Y), append({}, Y, X).
          power(s X) <- power(s Y), power(s Z), union(Y, Z, X).
        """)
        for i in elements:
            db.insert("r", d=i)
        assert len(db.tuples("power")) == 2 ** len(elements)


# ---------------------------------------------------------------------------
# compiled ALGRES plans vs the native engine on random programs
# ---------------------------------------------------------------------------
class TestCompilerDifferential:
    """Random compilable programs: the ALGRES route must agree with the
    native engine fact-for-fact."""

    @given(
        edge_lists,
        st.lists(st.sampled_from(["copy", "swap", "join", "filter",
                                  "shift"]),
                 min_size=1, max_size=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_programs_agree(self, edges, shapes):
        from repro.compiler import compile_program

        rules = []
        for i, shape in enumerate(shapes):
            out = f"out{i}"
            if shape == "copy":
                rules.append(
                    f"{out}(a X, b Y) <- e(a X, b Y)."
                )
            elif shape == "swap":
                rules.append(
                    f"{out}(a Y, b X) <- e(a X, b Y)."
                )
            elif shape == "join":
                rules.append(
                    f"{out}(a X, b Z) <- e(a X, b Y), e(a Y, b Z)."
                )
            elif shape == "filter":
                rules.append(
                    f"{out}(a X, b Y) <- e(a X, b Y), X < Y."
                )
            else:  # shift
                rules.append(
                    f"{out}(a X, b Z) <- e(a X, b Y), Z = Y + 1."
                )
        decls = "\n".join(
            f"  out{i} = (a: integer, b: integer)."
            for i in range(len(shapes))
        )
        source = (
            "associations\n  e = (a: integer, b: integer).\n"
            + decls + "\nrules\n  " + "\n  ".join(rules)
        )
        unit = parse_source(source)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        for a, b in edges:
            edb.add_association("e", TupleValue(a=a, b=b))
        compiled = compile_program(program, schema)
        assert compiled.run(edb) == Engine(schema, program).run(edb)


class TestCompilerNegationDifferential:
    """Random programs with bound-variable negation: compiled anti-joins
    must agree with the native STRATIFIED engine."""

    @given(edge_lists)
    @settings(max_examples=25, deadline=None)
    def test_antijoin_agrees_with_stratified(self, edges):
        from repro import Semantics
        from repro.compiler import compile_program

        unit = parse_source("""
        associations
          e = (a: integer, b: integer).
          asym = (a: integer, b: integer).
          source = (a: integer).
        rules
          asym(a X, b Y) <- e(a X, b Y), ~e(a Y, b X).
          source(a X) <- e(a X, b Y), ~e(b X).
        """)
        schema, program = unit.schema(), unit.program()
        edb = FactSet()
        for a, b in edges:
            edb.add_association("e", TupleValue(a=a, b=b))
        compiled = compile_program(program, schema, optimize_plans=True)
        native = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        assert compiled.run(edb) == native


class TestParserRobustness:
    """The parser must fail *cleanly* (ParseError) on arbitrary input —
    never with an internal exception."""

    @given(st.text(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_random_text_never_crashes(self, text):
        from repro.errors import LogresError

        try:
            parse_source(text)
        except LogresError:
            pass  # ParseError / SchemaError etc. are the contract

    @given(st.text(
        alphabet="abcXYZ(){}<>[]=~.,:\"% \n0123456789",
        max_size=120,
    ))
    @settings(max_examples=150, deadline=None)
    def test_syntax_shaped_noise_never_crashes(self, text):
        from repro.errors import LogresError

        try:
            parse_source("rules\n" + text)
        except LogresError:
            pass
