"""Engine tests: the three semantics and their relationships."""

import pytest

from repro import Engine, EvalConfig, FactSet, Semantics, TupleValue
from repro.errors import NonTerminationError
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def edges(*pairs):
    facts = FactSet()
    for a, b in pairs:
        facts.add_association("edge", TupleValue(a=a, b=b))
    return facts


WIN_SOURCE = """
associations
  edge = (a: string, b: string).
  win = (p: string).
rules
  win(p X) <- edge(a X, b Y), ~win(p Y).
"""


class TestStratifiedVsInflationary:
    def test_agree_on_stratified_programs(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
          missing = (a: string, b: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
          missing(a X, b Y) <- edge(a X, b Y), ~tc(a Y, b X).
        """)
        edb = edges(("x", "y"), ("y", "x"), ("y", "z"))
        inflationary = Engine(schema, program).run(
            edb, Semantics.INFLATIONARY
        )
        stratified = Engine(schema, program).run(
            edb, Semantics.STRATIFIED
        )
        # On this program the negated predicate tc is already total when
        # missing fires in the inflationary run's later steps — but the
        # early steps of the inflationary run can also fire with tc still
        # partial, so only the stratified run is the perfect model.
        perfect = {(f.value["a"], f.value["b"])
                   for f in stratified.facts_of("missing")}
        assert perfect == {("y", "z")}
        inflat = {(f.value["a"], f.value["b"])
                  for f in inflationary.facts_of("missing")}
        assert perfect <= inflat

    def test_win_move_differs_between_semantics(self):
        """The classic game program distinguishes inflationary from
        perfect-model evaluation on a chain of length 3 (a->b->c)."""
        schema, program = build(WIN_SOURCE)
        edb = edges(("a", "b"), ("b", "c"))
        inflationary = Engine(schema, program).run(
            edb, Semantics.INFLATIONARY
        )
        inflat_winners = sorted(
            f.value["p"] for f in inflationary.facts_of("win")
        )
        assert inflat_winners == ["a", "b"]  # both fire in step one
        # the program is not stratified: stratified semantics refuses
        from repro.errors import StratificationError

        with pytest.raises(StratificationError):
            Engine(schema, program).run(edb, Semantics.STRATIFIED)


class TestNonInflationary:
    def test_converges_on_monotone_program(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
        """)
        edb = edges(("x", "y"), ("y", "z"))
        out_non = Engine(schema, program).run(
            edb, Semantics.NONINFLATIONARY
        )
        out_inf = Engine(schema, program).run(edb)
        assert out_non == out_inf

    def test_oscillation_detected(self):
        # p flips each step: p empty -> derived -> blocked -> derived ...
        schema, program = build("""
        associations
          seed = (v: integer).
          p = (v: integer).
        rules
          p(v X) <- seed(v X), ~p(v X).
        """)
        edb = FactSet()
        edb.add_association("seed", TupleValue(v=1))
        engine = Engine(schema, program, EvalConfig(max_iterations=50))
        with pytest.raises(NonTerminationError, match="oscillates"):
            engine.run(edb, Semantics.NONINFLATIONARY)

    def test_derived_facts_not_in_edb_are_recomputed(self):
        # non-inflationary keeps E and recomputes the IDB from scratch,
        # so a derived fact whose support disappears would vanish; with
        # stable support the result matches the inflationary one
        schema, program = build("""
        associations
          src = (v: integer).
          out = (v: integer).
        rules
          out(v X) <- src(v X).
        """)
        edb = FactSet()
        edb.add_association("src", TupleValue(v=1))
        result = Engine(schema, program).run(
            edb, Semantics.NONINFLATIONARY
        )
        assert [f.value["v"] for f in result.facts_of("out")] == [1]


class TestSeminaiveEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_seminaive_equals_naive_on_random_graphs(self, seed):
        from repro.workloads import random_edges

        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
          anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
        """)
        edb = random_edges(12, 20, seed=seed)
        fast = Engine(schema, program, EvalConfig(seminaive=True))
        slow = Engine(schema, program, EvalConfig(seminaive=False))
        assert fast.run(edb) == slow.run(edb)

    def test_seminaive_declined_for_negation(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          one = (a: string).
        rules
          one(a X) <- edge(a X, b Y), ~edge(a Y, b X).
        """)
        engine = Engine(schema, program, EvalConfig(seminaive=True))
        engine.run(edges(("x", "y")))
        assert not engine.stats.used_seminaive

    def test_seminaive_declined_for_class_heads(self):
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          seed = (tag: string).
        rules
          c(tag X) <- seed(tag X).
        """)
        engine = Engine(schema, program, EvalConfig(seminaive=True))
        edb = FactSet()
        edb.add_association("seed", TupleValue(tag="x"))
        engine.run(edb)
        assert not engine.stats.used_seminaive

    def test_seminaive_declined_for_function_reads(self):
        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          fan = (who: string, kids: {string}).
        functions
          kids: string -> {string}.
          member(X, kids(Y)) <- parent(par Y, chil X).
        rules
          fan(who X, kids K) <- parent(par X), K = kids(X).
        """)
        engine = Engine(schema, program, EvalConfig(seminaive=True))
        edb = FactSet()
        edb.add_association("parent", TupleValue(par="a", chil="b"))
        engine.run(edb, Semantics.STRATIFIED)
        # stratified path never claims the semi-naive flag for the
        # function-reading stratum
        assert not engine.stats.used_seminaive


class TestModesAreParametric:
    def test_same_program_three_semantics_three_calls(self):
        """One Engine instance supports all semantics — the module system
        relies on this to make databases parametric in rule semantics."""
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
        """)
        engine = Engine(schema, program)
        edb = edges(("x", "y"), ("y", "z"))
        results = [
            engine.run(edb, semantics)
            for semantics in (
                Semantics.INFLATIONARY,
                Semantics.STRATIFIED,
                Semantics.NONINFLATIONARY,
            )
        ]
        assert results[0] == results[1] == results[2]
