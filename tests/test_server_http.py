"""The ``repro serve`` HTTP surface: status mapping, tenancy, admission.

In-process servers on ephemeral ports; the load generator's
``post_json`` doubles as the test client (it returns error statuses as
data).  The mapping under test is the exit-code convention extended to
HTTP (``docs/ROBUSTNESS.md``): 200 ↔ 0, 409 ↔ 1, 422 ↔ 2,
503 + Retry-After ↔ 3, plus the server-only 429 (LG807), 503 LG808
(draining), 404, 413 and 400.
"""

import json
import socket
import struct
import threading
import time
import urllib.request

import pytest

from repro.observability import CollectorSink, EventBus
from repro.server import ReproServer, ServerConfig, TenantLimits
from repro.server.loadgen import post_json
from repro.testing import FAULTS

SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""

#: 8 parent facts: the instance closes to 8 + 36 anc facts, far past
#: any single-digit max_facts cap
CHAIN = "rules\n" + "\n".join(
    f'  parent(par "p{i}", chil "p{i + 1}").' for i in range(8)
)


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


@pytest.fixture
def server(tmp_path):
    """A started server with one populated database, torn down hard."""
    app, base = _start(tmp_path)
    status, _, _ = post_json(base, "/v1/db/demo", {"source": SOURCE})
    assert status == 201
    status, _, _ = post_json(base, "/v1/db/demo/apply",
                             {"module": CHAIN, "mode": "RIDV"})
    assert status == 200
    yield app, base
    app.close()


def _start(tmp_path, bus=None, **overrides):
    config = ServerConfig(port=0, data_dir=str(tmp_path), **overrides)
    app = ReproServer(config, bus=bus)
    host, port = app.start()
    threading.Thread(target=app.serve_forever, daemon=True).start()
    return app, f"http://{host}:{port}"


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.status, json.loads(resp.read()), dict(resp.headers)


def _raw_post(base, path, data: bytes, headers=None):
    request = urllib.request.Request(
        base + path, data=data, method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


class TestRoutesAndLifecycle:
    def test_healthz_lists_databases(self, server):
        _, base = server
        status, payload, _ = _get(base, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "databases": ["demo"]}

    def test_info_carries_seq_and_fingerprints(self, server):
        _, base = server
        status, payload, _ = _get(base, "/v1/db/demo")
        assert status == 200
        assert payload["applied_seq"] == 1
        assert set(payload["fingerprints"]) == {"schema", "edb", "program"}

    def test_unknown_route_404(self, server):
        _, base = server
        status, payload = _raw_post(base, "/v2/nothing", b"{}")
        assert status == 404

    def test_unknown_database_404(self, server):
        _, base = server
        status, payload, _ = post_json(base, "/v1/db/ghost/run", {})
        assert status == 404
        assert payload["error"]["code"] == "LG901"

    def test_duplicate_create_rejected(self, server):
        _, base = server
        status, payload, _ = post_json(base, "/v1/db/demo",
                                       {"source": SOURCE})
        assert status == 422
        assert "already exists" in payload["error"]["message"]

    def test_invalid_name_rejected(self, server):
        _, base = server
        status, payload, _ = post_json(base, "/v1/db/Nope..Bad",
                                       {"source": SOURCE})
        assert status in (400, 404)  # name never reaches the registry


class TestOperations:
    def test_run_with_goal(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/run", {"goal": '?- anc(a "p0", d D).'}
        )
        assert status == 200
        assert payload["facts"] == 8 + 36
        assert len(payload["answers"]) == 8  # p1..p8 reachable from p0

    def test_run_with_extra_rules_does_not_persist(self, server):
        _, base = server
        extra = "rules\n  anc(a \"x\", d \"y\")."
        status, payload, _ = post_json(base, "/v1/db/demo/run",
                                       {"rules": extra})
        assert status == 200
        assert payload["facts"] == 8 + 36 + 1
        status, payload, _ = post_json(base, "/v1/db/demo/run", {})
        assert payload["facts"] == 8 + 36  # the extra rule was per-request

    def test_apply_advances_seq(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/apply",
            {"module": 'rules\n  parent(par "q1", chil "q2").',
             "mode": "RIDV"},
        )
        assert status == 200
        assert payload["applied_seq"] == 2

    def test_parse_error_is_422_with_diagnostics(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/apply",
            {"module": "rules\n  this is ; not logres"},
        )
        assert status == 422
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes and all(c.startswith("LG") for c in codes)

    def test_check_consistent(self, server):
        _, base = server
        status, payload, _ = post_json(base, "/v1/db/demo/check", {})
        assert status == 200
        assert payload["consistent"] is True

    def test_explain_absent_fact_is_409(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/explain",
            {"fact": 'anc(a="p8", d="p0")'},
        )
        assert status == 409
        assert payload["holds"] is False

    def test_explain_present_fact_renders_tree(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/explain",
            {"fact": 'anc(a="p0", d="p2")'},
        )
        assert status == 200
        assert "anc" in payload["explanation"]

    def test_plan(self, server):
        _, base = server
        status, payload, _ = post_json(base, "/v1/db/demo/plan", {})
        assert status == 200
        assert payload["plans"]


class TestBudgetsAndTenancy:
    def test_timeout_breach_is_503_with_retry_after(self, server):
        _, base = server
        status, payload, headers = post_json(
            base, "/v1/db/demo/run",
            {"budgets": {"timeout": 0.000001}},
        )
        assert status == 503
        assert payload["error"]["code"] == "LG801"
        assert headers.get("Retry-After")

    def test_max_facts_breach_is_503(self, server):
        _, base = server
        status, payload, _ = post_json(
            base, "/v1/db/demo/run", {"budgets": {"max_facts": 5}}
        )
        assert status == 503
        assert payload["error"]["code"] == "LG802"

    def test_tenant_cap_clamps_requests(self, tmp_path):
        app, base = _start(
            tmp_path,
            tenant_limits={"small": TenantLimits(max_facts=5)},
        )
        try:
            post_json(base, "/v1/db/demo", {"source": SOURCE})
            post_json(base, "/v1/db/demo/apply",
                      {"module": CHAIN, "mode": "RIDV"})
            # an untenanted request runs under the server defaults
            status, _, _ = post_json(base, "/v1/db/demo/run", {})
            assert status == 200
            # the capped tenant breaches — even asking for more budget
            status, payload, _ = post_json(
                base, "/v1/db/demo/run",
                {"budgets": {"max_facts": 10**9}}, tenant="small",
            )
            assert status == 503
            assert payload["error"]["code"] == "LG802"
        finally:
            app.close()


class TestAdmissionAndBodies:
    def test_queue_timeout_sheds_with_429(self, tmp_path):
        app, base = _start(
            tmp_path, max_concurrent=1, queue_depth=4, queue_timeout=0.05,
            retry_after=3.0,
        )
        try:
            post_json(base, "/v1/db/demo", {"source": SOURCE})
            with app.admission.admit():  # the only slot, held by the test
                status, payload, headers = post_json(
                    base, "/v1/db/demo/run", {}
                )
            assert status == 429
            assert payload["error"]["code"] == "LG807"
            assert headers.get("Retry-After") == "3"
            assert app.admission.stats()["shed_timeout"] == 1
        finally:
            app.close()

    def test_oversized_body_is_413(self, tmp_path):
        app, base = _start(tmp_path, max_body_bytes=256)
        try:
            status, payload = _raw_post(
                base, "/v1/db/x", b'{"source": "' + b"a" * 500 + b'"}'
            )
            assert status == 413
        finally:
            app.close()

    def test_malformed_json_is_400(self, server):
        _, base = server
        status, payload = _raw_post(base, "/v1/db/demo/run",
                                    b"{not json at all")
        assert status == 400
        assert payload["error"]["code"] == "LG101"

    def test_draining_rejects_new_work_with_lg808(self, server):
        app, base = server
        app.draining.set()
        try:
            status, payload, headers = post_json(base, "/v1/db/demo/run", {})
            assert status == 503
            assert payload["error"]["code"] == "LG808"
            assert headers.get("Retry-After")
            status, payload, _ = _get(base, "/healthz")
            assert payload["status"] == "draining"
        finally:
            app.draining.clear()


class TestTelemetry:
    def test_every_response_carries_a_run_id(self, server):
        _, base = server
        status, _, headers = post_json(base, "/v1/db/demo/run", {})
        assert headers.get("X-Repro-Run-Id")

    def test_metrics_exposition(self, server):
        app, base = server
        post_json(base, "/v1/db/demo/run", {})
        # request metrics are recorded after the response bytes go out;
        # poll briefly so the scrape cannot race the bookkeeping
        deadline = time.monotonic() + 5
        while True:
            with urllib.request.urlopen(
                base + "/metrics", timeout=10
            ) as resp:
                assert "version=0.0.4" in resp.headers["Content-Type"]
                text = resp.read().decode()
            wanted = 'repro_server_requests_total{op="run",status="200"}'
            if wanted in text or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert wanted in text
        assert 'repro_server_db_applied_seq{db="demo"} 1' in text
        assert "repro_server_request_seconds_count" in text
        assert "repro_server_admission_active 0" in text

    def test_requests_publish_bus_events(self, tmp_path):
        bus = EventBus()
        collector = CollectorSink()
        bus.attach_sink(collector)
        app, base = _start(tmp_path, bus=bus)
        try:
            post_json(base, "/v1/db/demo", {"source": SOURCE})
            post_json(base, "/v1/db/demo/run", {})
            # events publish after the response bytes go out: poll
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and len(
                [e for e in collector.events
                 if e.kind == "server-request"]
            ) < 2:
                time.sleep(0.02)
        finally:
            app.close()
        reqs = [e for e in collector.events if e.kind == "server-request"]
        assert [r.op for r in reqs] == ["create", "run"]
        assert all(r.run_id for r in reqs)
        assert reqs[0].status == 201 and reqs[1].status == 200

    def test_injected_write_fault_becomes_a_500(self, server):
        """A non-disconnect OSError mid-reply (disk gone, injected
        fault) hits the 500 boundary — diagnosable, never a hang."""
        _, base = server
        with FAULTS.inject("server.response", action="io-error"):
            status, payload, _ = post_json(base, "/v1/db/demo/run", {})
        assert status == 500
        assert payload["error"]["code"] == "LG901"

    def test_mid_response_disconnect_is_counted_not_fatal(self, server):
        app, base = server
        host, _, port = base.rpartition("//")[2].partition(":")
        with FAULTS.inject("server.response", action="latency",
                           delay=0.5):
            sock = socket.create_connection((host, int(port)), timeout=10)
            sock.sendall(
                b"POST /v1/db/demo/run HTTP/1.1\r\n"
                b"Host: t\r\nContent-Type: application/json\r\n"
                b"Content-Length: 2\r\n\r\n{}"
            )
            time.sleep(0.15)  # the handler is now in the latency window
            # RST on close so the server's write fails immediately
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
            deadline = time.monotonic() + 5
            while (app.client_disconnects == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
        assert app.client_disconnects == 1
        # the server still serves
        status, _, _ = post_json(base, "/v1/db/demo/run", {})
        assert status == 200
