"""Edge-case coverage across subsystems."""

import pytest

from repro import (
    Database,
    Engine,
    FactSet,
    Oid,
    Semantics,
    SetValue,
    TupleValue,
)
from repro.errors import SafetyError
from repro.language.parser import parse_source
from repro.values import Instance


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


class TestCyclicIsomorphism:
    """The determinacy check must handle cyclic object graphs."""

    def cyclic_instance(self, a, b):
        return Instance(
            pi={"node": {Oid(a), Oid(b)}},
            nu={
                Oid(a): TupleValue(next=Oid(b)),
                Oid(b): TupleValue(next=Oid(a)),
            },
        )

    def test_two_cycles_of_same_length_isomorphic(self):
        assert self.cyclic_instance(1, 2).isomorphic_to(
            self.cyclic_instance(10, 20)
        )

    def test_cycle_vs_self_loop_not_isomorphic(self):
        cycle = self.cyclic_instance(1, 2)
        loops = Instance(
            pi={"node": {Oid(1), Oid(2)}},
            nu={
                Oid(1): TupleValue(next=Oid(1)),
                Oid(2): TupleValue(next=Oid(2)),
            },
        )
        assert not cycle.isomorphic_to(loops)

    def test_nil_next_distinguishes(self):
        cycle = self.cyclic_instance(1, 2)
        chain = Instance(
            pi={"node": {Oid(1), Oid(2)}},
            nu={
                Oid(1): TupleValue(next=Oid(2)),
                Oid(2): TupleValue(next=Oid(0)),
            },
        )
        assert not cycle.isomorphic_to(chain)


class TestFunctionMemberDeletion:
    def test_negated_member_head_removes_extensional_entries(self):
        """A negated member(...) head deletes from the function's backing
        association.  The entries are extensional here — a positive rule
        re-deriving them would make the sequence oscillate (undefined
        semantics, as for any insert/delete tug-of-war)."""
        schema, program = build("""
        associations
          purge = (n: string).
        functions
          kids: string -> {string}.
          ~member(X, kids(Y)) <- member(X, kids(Y)), purge(n X).
        """)
        edb = FactSet()
        edb.add_association("__fn_kids", TupleValue(arg0="a", value="b"))
        edb.add_association("__fn_kids", TupleValue(arg0="a", value="c"))
        edb.add_association("purge", TupleValue(n="b"))
        out = Engine(schema, program).run(edb)
        remaining = {
            f.value["value"] for f in out.facts_of("__fn_kids")
        }
        assert remaining == {"c"}

    def test_rederiving_deletion_is_undefined(self):
        from repro import EvalConfig
        from repro.errors import NonTerminationError

        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          purge = (n: string).
        functions
          kids: string -> {string}.
          member(X, kids(Y)) <- parent(par Y, chil X).
          ~member(X, kids(Y)) <- member(X, kids(Y)), purge(n X).
        """)
        edb = FactSet()
        edb.add_association("parent", TupleValue(par="a", chil="b"))
        edb.add_association("purge", TupleValue(n="b"))
        engine = Engine(schema, program, EvalConfig(max_iterations=32))
        with pytest.raises(NonTerminationError):
            engine.run(edb)


class TestEagerRuleValidation:
    def test_add_rules_rejects_unsafe_rules_immediately(self):
        db = Database.from_source("""
        associations
          p = (x: integer).
        """)
        with pytest.raises(SafetyError):
            db.add_rules("p(x Y) <- p(x X).")
        assert db.rules == ()  # nothing was committed

    def test_add_rules_accepts_denials(self):
        db = Database.from_source("""
        associations
          p = (x: integer).
        """)
        db.add_rules("<- p(x X), X > 100.")
        assert len(db.rules) == 1


class TestEmptyCollectionsInFacts:
    def test_empty_set_attribute_round_trips_through_engine(self):
        schema, program = build("""
        associations
          bag = (items: {integer}).
          copy = (items: {integer}).
        rules
          copy(items X) <- bag(items X).
        """)
        edb = FactSet()
        edb.add_association("bag", TupleValue(items=SetValue()))
        out = Engine(schema, program).run(edb)
        (fact,) = out.facts_of("copy")
        assert fact.value["items"] == SetValue()

    def test_membership_over_empty_set_yields_nothing(self):
        schema, program = build("""
        associations
          bag = (items: {integer}).
          found = (v: integer).
        rules
          found(v X) <- bag(items S), member(X, S).
        """)
        edb = FactSet()
        edb.add_association("bag", TupleValue(items=SetValue()))
        out = Engine(schema, program).run(edb)
        assert out.count("found") == 0


class TestZeroArityPredicates:
    def test_propositional_predicate(self):
        schema, program = build("""
        associations
          alarm = ().
          trigger = (v: integer).
        rules
          alarm <- trigger(v X), X > 9.
        """)
        edb = FactSet()
        edb.add_association("trigger", TupleValue(v=10))
        out = Engine(schema, program).run(edb)
        assert out.count("alarm") == 1

    def test_propositional_negation(self):
        schema, program = build("""
        associations
          alarm = ().
          calm = ().
          trigger = (v: integer).
        rules
          alarm <- trigger(v X), X > 9.
          calm <- trigger(v X), ~alarm.
        """)
        edb = FactSet()
        edb.add_association("trigger", TupleValue(v=1))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        assert out.count("calm") == 1
        assert out.count("alarm") == 0


class TestUnicodeAndOddStrings:
    def test_unicode_values_flow_through(self):
        db = Database.from_source("""
        associations
          p = (s: string).
        """)
        db.insert("p", s="héllo wörld ✓")
        answers = db.query("?- p(s S).")
        assert answers[0]["S"] == "héllo wörld ✓"

    def test_strings_with_quotes_parse(self):
        schema, program = build(r'''
        associations
          p = (s: string).
        rules
          p(s "say \"hi\"").
        ''')
        out = Engine(schema, program).run(FactSet())
        (fact,) = out.facts_of("p")
        assert fact.value["s"] == 'say "hi"'


class TestLargeScaleSmoke:
    def test_moderately_deep_recursion(self):
        from repro.workloads import chain_edges

        schema, program = build("""
        associations
          parent = (par: string, chil: string).
          anc = (a: string, d: string).
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
          anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
        """)
        n = 60
        out = Engine(schema, program).run(chain_edges(n))
        assert out.count("anc") == (n + 1) * n // 2
