"""Transactional module application: atomicity under injected faults.

The contract (docs/ROBUSTNESS.md): after any *failed* application the
input state equals the original — byte-identical fingerprints of the
whole ``(E, R, S)`` triple — and after any successful one it equals the
fully-applied result.  Nothing in between is ever observable.  The
matrix here covers all six modes x all three semantics x every fault
shape the harness can inject mid-apply.
"""

import pytest

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    Semantics,
    TupleValue,
    apply_module,
    parse_program,
    parse_schema_source,
)
from repro.errors import (
    EvalBudgetExceeded,
    ModuleApplicationError,
    TransactionError,
)
from repro.storage.factset import Fact
from repro.modules.txn import Savepoint, state_fingerprints
from repro.observability import CollectorSink, Instrumentation
from repro.testing import FAULTS, InjectedFault
from repro.values.oids import OidGenerator

SCHEMA = """
associations
  italian = (n: string).
  roman = (n: string).
"""

STATE_RULES = """
rules
  italian(X) <- roman(X).
"""

MODULE_SOURCE = """
rules
  roman(n "ugo").
  italian(n "luca").
"""

#: RDDI / RDDV delete rules that must exist in the state
DELETION_MODULE_SOURCE = STATE_RULES

ALL_MODES = list(Mode)
ALL_SEMANTICS = list(Semantics)


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


def make_state() -> DatabaseState:
    schema = parse_schema_source(SCHEMA)
    edb = FactSet()
    edb.add_association("italian", TupleValue(n="sara"))
    edb.add_association("roman", TupleValue(n="remo"))
    return DatabaseState(
        schema, edb, parse_program(STATE_RULES).rules
    )


def module_for(mode: Mode) -> Module:
    if mode in (Mode.RDDI, Mode.RDDV):
        return Module.from_source(DELETION_MODULE_SOURCE, name="m")
    return Module.from_source(MODULE_SOURCE, name="m")


class TestFingerprints:
    def test_identical_states_have_identical_fingerprints(self):
        assert state_fingerprints(make_state()) == \
            state_fingerprints(make_state())

    def test_every_component_is_covered(self):
        base = state_fingerprints(make_state())
        assert set(base) == {"schema", "edb", "program"}

        changed = make_state()
        changed.edb.add_association("roman", TupleValue(n="numa"))
        diff = state_fingerprints(changed)
        assert diff["edb"] != base["edb"]
        assert diff["schema"] == base["schema"]
        assert diff["program"] == base["program"]

    def test_insensitive_to_mutation_order(self):
        a = make_state()
        b = make_state()
        a.edb.add_association("roman", TupleValue(n="numa"))
        # b arrives at the same content via an add + remove + re-add
        b.edb.add_association("roman", TupleValue(n="numa"))
        b.edb.discard(Fact("roman", TupleValue(n="remo")))
        b.edb.add_association("roman", TupleValue(n="remo"))
        assert state_fingerprints(a) == state_fingerprints(b)


class TestAtomicityMatrix:
    """The acceptance matrix: fault x mode x semantics."""

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("point", ["module.apply", "module.finalize"])
    def test_injected_error_restores_state_exactly(
        self, mode, semantics, point
    ):
        state = make_state()
        before = state_fingerprints(state)
        with FAULTS.inject(point, "error"):
            with pytest.raises(InjectedFault):
                apply_module(state, module_for(mode), mode,
                             semantics=semantics)
        assert state_fingerprints(state) == before

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_injected_guard_breach_restores_state(self, mode):
        state = make_state()
        before = state_fingerprints(state)
        # the breach hits the very first engine iteration — the initial
        # consistency materialize — so it propagates unwrapped
        with FAULTS.inject("engine.iteration", "breach"):
            with pytest.raises(EvalBudgetExceeded):
                apply_module(state, module_for(mode), mode)
        assert state_fingerprints(state) == before

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_fault_free_application_succeeds(self, mode, semantics):
        state = make_state()
        before = state_fingerprints(state)
        result = apply_module(state, module_for(mode), mode,
                              semantics=semantics)
        # the input state is never mutated, even on success
        assert state_fingerprints(state) == before
        assert result.state is not state
        # and the journal is released: no further bookkeeping
        assert not state.edb.journaling

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_state_reusable_after_rollback(self, mode):
        """A failed application leaves a fully working state behind."""
        state = make_state()
        with FAULTS.inject("module.finalize", "error"):
            with pytest.raises(InjectedFault):
                apply_module(state, module_for(mode), mode)
        result = apply_module(state, module_for(mode), mode)
        assert result.mode is mode


class TestRollbackDetails:
    def test_constraint_violation_rolls_back(self):
        state = make_state()
        before = state_fingerprints(state)
        # a denial violated by the module's own insertion
        module = Module.from_source("""
        rules
          roman(n "ugo").
          <- roman(n "ugo").
        """, name="bad")
        with pytest.raises(ModuleApplicationError):
            apply_module(state, module, Mode.RADV)
        assert state_fingerprints(state) == before

    def test_oidgen_position_restored(self):
        schema = parse_schema_source("""
        classes
          thing = (tag: string).
        associations
          seed = (tag: string).
        """)
        edb = FactSet()
        edb.add_association("seed", TupleValue(tag="a"))
        state = DatabaseState(schema, edb)
        oidgen = OidGenerator()
        module = Module.from_source("""
        rules
          thing(tag T) <- seed(tag T).
        """, name="invent")
        position = oidgen.next_number
        with FAULTS.inject("module.finalize", "error"):
            with pytest.raises(InjectedFault):
                apply_module(state, module, Mode.RIDV, oidgen=oidgen)
        assert oidgen.next_number == position
        # the successful retry invents the same oids
        result = apply_module(state, module, Mode.RIDV, oidgen=oidgen)
        assert result.state.edb.count("thing") == 1

    def test_rollback_emits_module_rollback_event(self):
        from repro.observability import MetricsRegistry

        sink = CollectorSink()
        obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
        state = make_state()
        with FAULTS.inject("module.finalize", "error"):
            with pytest.raises(InjectedFault):
                apply_module(state, module_for(Mode.RADI), Mode.RADI,
                             instrumentation=obs)
        events = sink.of_kind("module-rollback")
        assert len(events) == 1
        event = events[0]
        assert event.module == "m"
        assert event.mode == "RADI"
        assert event.reason == "InjectedFault"
        assert event.restored is True
        assert obs.metrics.counter(
            "module_rollbacks", (("mode", "RADI"),)
        ) == 1

    def test_mode_check_failure_also_rolls_back(self):
        state = make_state()
        before = state_fingerprints(state)
        module = Module.from_source(
            MODULE_SOURCE + 'goal\n  ?- italian(n N).', name="g"
        )
        # goals are illegal under data-variant modes (LG701)
        with pytest.raises(ModuleApplicationError):
            apply_module(state, module, Mode.RIDV)
        assert state_fingerprints(state) == before


class TestSavepointUnit:
    def test_rollback_undoes_in_place_mutation(self):
        state = make_state()
        before = state_fingerprints(state)
        sp = Savepoint(state)
        state.edb.add_association("roman", TupleValue(n="numa"))
        state.edb.discard(Fact("italian", TupleValue(n="sara")))
        state.rules = ()
        sp.rollback()
        assert state_fingerprints(state) == before
        assert not state.edb.journaling

    def test_release_keeps_changes(self):
        state = make_state()
        sp = Savepoint(state)
        state.edb.add_association("roman", TupleValue(n="numa"))
        sp.release()
        assert state.edb.count("roman") == 2
        assert not state.edb.journaling

    def test_nested_savepoints(self):
        state = make_state()
        outer = Savepoint(state)
        state.edb.add_association("roman", TupleValue(n="numa"))
        inner = Savepoint(state)
        state.edb.add_association("roman", TupleValue(n="anco"))
        inner.rollback()
        assert state.edb.count("roman") == 2  # numa survives
        outer.rollback()
        assert state.edb.count("roman") == 1
        assert not state.edb.journaling

    def test_unrestorable_state_raises_transaction_error(self):
        state = make_state()
        sp = Savepoint(state)
        # sabotage: mutate behind the journal's back, so the undo log
        # cannot reproduce the original content
        state.edb.end_journal()
        state.edb.add_association("roman", TupleValue(n="numa"))
        state.edb.begin_journal()
        with pytest.raises(TransactionError, match="edb"):
            sp.rollback()
