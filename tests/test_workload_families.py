"""The bench workload families: determinism, shape, kernel agreement.

The matrix contract (docs/PERFORMANCE.md):

* **bit-determinism** — the same ``(scale, seed)`` produces the same
  canonical FactSet fingerprint on every generation, for every family
  at every scale grade (large grades are capped here; set
  ``REPRO_FULL_SCALES=1`` to sweep the committed grades in full);
* **budget fidelity** — a generator lands within a tolerance band of
  its fact budget, so scale labels on BENCH rows mean what they say;
* **kernel agreement** — every family's program computes the same
  instance under all four matrix kernels, modulo a renaming of
  invented oids (invention *order* legitimately differs per kernel);
* a Hypothesis fuzz pass runs random small (family, scale, seed)
  cells against the reference kernel and re-checks determinism.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine, Semantics
from repro.workloads.bench import KERNELS, kernel_config
from repro.workloads.families import (
    FAMILIES,
    SCALE_GRADES,
    factset_fingerprint,
    resolve_scale,
)

#: grades swept by default; the full committed grades only with
#: REPRO_FULL_SCALES=1 (10⁵/10⁶ generation is minutes, not seconds)
_CAP = 10_000 if not os.environ.get("REPRO_FULL_SCALES") else None
GRADES = [
    (name, scale) for name, scale in SCALE_GRADES.items()
    if _CAP is None or scale <= _CAP
]


def _agree(a, b) -> bool:
    return a == b or a.to_instance().isomorphic_to(b.to_instance())


class TestDeterminism:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("grade,scale", GRADES)
    def test_same_seed_same_fingerprint(self, family, grade, scale):
        fam = FAMILIES[family]
        first = fam.generate(scale, 7)
        second = fam.generate(scale, 7)
        assert factset_fingerprint(first) == factset_fingerprint(second)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_different_seeds_differ(self, family):
        fam = FAMILIES[family]
        assert factset_fingerprint(fam.generate(500, 1)) != \
            factset_fingerprint(fam.generate(500, 2))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("grade,scale", GRADES)
    def test_budget_fidelity(self, family, grade, scale):
        count = FAMILIES[family].generate(scale, 0).count()
        assert 0.8 * scale <= count <= 1.2 * scale


class TestPrograms:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_builds_and_derives(self, family):
        fam = FAMILIES[family]
        schema, program, edb = fam.build(150, seed=0)
        out = Engine(schema, program).run(edb, Semantics.INFLATIONARY)
        assert out.count() > edb.count()
        for pred in fam.derived_preds:
            assert out.count(pred) > 0, pred

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_kernel_agreement(self, family):
        schema, program, edb = FAMILIES[family].build(150, seed=5)
        outcomes = {
            kernel: Engine(schema, program, kernel_config(kernel)).run(
                edb, Semantics.INFLATIONARY)
            for kernel in KERNELS
        }
        reference = outcomes["reference"]
        for kernel, instance in outcomes.items():
            assert _agree(reference, instance), kernel

    def test_kg_exercises_invention_and_isa(self):
        fam = FAMILIES["kg"]
        schema, program, edb = fam.build(300, seed=0)
        out = Engine(schema, program).run(edb, Semantics.INFLATIONARY)
        assert out.count("riskcase") > 0          # invented objects
        assert schema.is_class("riskcase")
        # isa propagation: every stakeholder is also an entity
        assert out.oids_of("stakeholder") <= out.oids_of("entity")


class TestScales:
    def test_grade_names_resolve(self):
        assert resolve_scale("1e3") == 1_000
        assert resolve_scale("1e6") == 1_000_000
        assert resolve_scale(250) == 250
        assert resolve_scale("250") == 250

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")
        with pytest.raises(ValueError):
            resolve_scale("-5")


class TestFuzz:
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        scale=st.integers(min_value=20, max_value=90),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_run_on_reference_kernel(
            self, family, scale, seed):
        fam = FAMILIES[family]
        schema, program, edb = fam.build(scale, seed=seed)
        assert factset_fingerprint(edb) == \
            factset_fingerprint(fam.generate(scale, seed))
        out = Engine(schema, program, kernel_config("reference")).run(
            edb, Semantics.INFLATIONARY)
        assert out.count() >= edb.count()
