"""Every versioned JSON surface leads with the shared schema header.

The observability and analysis tools each emit a machine-readable
payload; :func:`repro.observability.events.payload_header` is the one
place that stamps ``schema_version`` and ``kind`` on all of them.  This
module pins the stamp on every surface, so adding a new JSON payload
without the header (or with a drifting kind string) fails a test
instead of silently forking the convention.
"""

import json

from repro.engine import Engine, Semantics
from repro.language.ast import Program
from repro.language.parser import parse_source
from repro.observability import Instrumentation, MetricsRegistry
from repro.observability.events import SCHEMA_VERSION, payload_header
from repro.storage.factset import FactSet

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  anc(a X, d Y) <- parent(par X, chil Y).
"""


def _instrumented_run():
    unit = parse_source(TC_SOURCE)
    schema = unit.schema()
    program = Program(tuple(unit.rules), unit.goal)
    obs = Instrumentation(metrics=MetricsRegistry())
    engine = Engine(schema, program, instrumentation=obs)
    engine.run(FactSet(), Semantics.INFLATIONARY)
    return engine, obs


def _assert_header(payload: dict, kind: str):
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["kind"] == kind


class TestPayloadHeader:
    def test_header_shape(self):
        assert payload_header("x") == {
            "schema_version": SCHEMA_VERSION, "kind": "x",
        }

    def test_header_is_a_fresh_dict(self):
        a = payload_header("x")
        a["extra"] = 1
        assert "extra" not in payload_header("x")


class TestSurfaces:
    def test_lint_diagnostics(self):
        from repro.analysis.diagnostics import diagnostics_to_json

        _assert_header(json.loads(diagnostics_to_json([])),
                       "diagnostics")

    def test_analyze(self):
        from repro.analysis import analyze_source

        analysis = analyze_source(TC_SOURCE, file="<test>")
        _assert_header(analysis.to_dict(), "analysis")

    def test_profile(self):
        from repro.observability.profile import build_profile

        engine, obs = _instrumented_run()
        _assert_header(build_profile(engine, obs).to_dict(), "profile")

    def test_run_report(self):
        from repro.observability.report import build_run_report

        engine, obs = _instrumented_run()
        report = build_run_report(engine, obs,
                                  semantics="inflationary")
        _assert_header(report.to_dict(), "run-report")

    def test_report_diff(self):
        from repro.observability.diff import diff_reports
        from repro.observability.report import build_run_report

        engine, obs = _instrumented_run()
        report = build_run_report(engine, obs,
                                  semantics="inflationary")
        _assert_header(diff_reports(report, report).to_dict(),
                       "report-diff")

    def test_why_not(self):
        from repro.observability.whynot import WhyNotReport

        report = WhyNotReport("f", "inflationary", "never-derived")
        _assert_header(report.to_dict(), "why-not")

    def test_metrics_snapshot(self):
        _, obs = _instrumented_run()
        _assert_header(obs.snapshot(), "metrics-snapshot")

    def test_bench_row(self):
        from repro.workloads.bench import run_cell
        from repro.workloads.families import FAMILIES

        row, _ = run_cell(FAMILIES["reach"], 20, "compiled", reps=1)
        _assert_header(row, "bench-row")
        # the trace-context envelope: the cell's RunReport run id
        assert isinstance(row["run_id"], str) and row["run_id"]

    def test_pytest_bench_row(self):
        import sys

        sys.path.insert(0, ".")
        try:
            from benchmarks.telemetry import bench_row
        finally:
            sys.path.pop(0)

        class _Stats:
            min = mean = stddev = 0.001
            rounds = 1

        class _Meta:
            stats = _Stats()
            group = "e99-test"
            name = "test_x[1]"
            extra_info = {}

        _assert_header(bench_row(_Meta(), "2026-01-01T00:00:00"),
                       "bench-row")

    def test_bench_trend_report(self, tmp_path):
        from repro.observability.trend import TrendStore, trend_report

        payload = trend_report(TrendStore.load(tmp_path))
        _assert_header(payload, "bench-trend")
        assert isinstance(payload["run_id"], str) and payload["run_id"]
