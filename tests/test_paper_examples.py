"""Integration tests: every worked example of the paper, end to end.

Each test names the example it reproduces and asserts the outcome the
paper states (where the paper gives one) or the outcome its prose
implies.  OCR-damaged fragments of the original text are reconstructed;
each reconstruction is noted inline.
"""

import pytest

from repro import (
    Database,
    Engine,
    FactSet,
    Mode,
    Module,
    Oid,
    Semantics,
    SetValue,
    TupleValue,
    parse_source,
)
from repro.workloads import FOOTBALL_SCHEMA, UNIVERSITY_SCHEMA


class TestExample21FootballSchema:
    """Example 2.1: the football database type equations."""

    def test_schema_parses_and_validates(self):
        db = Database.from_source(FOOTBALL_SCHEMA)
        assert db.schema.is_domain("score")
        assert db.schema.is_class("player")
        assert db.schema.is_class("team")
        assert db.schema.is_association("game")

    def test_populated_database_is_consistent(self):
        db = Database.from_source(FOOTBALL_SCHEMA)
        p1 = db.insert("player", name="baggio", roles={10})
        p2 = db.insert("player", name="maldini", roles={3, 5})
        t1 = db.insert("team", team_name="alpha", base_players=[p1],
                       substitutes={p2})
        t2 = db.insert("team", team_name="beta", base_players=[p2],
                       substitutes=set())
        db.insert("game", h_team=t1, g_team=t2, date="1990-05-23",
                  score={"home": 2, "guest": 1})
        assert db.check() == []

    def test_object_sharing_players_in_two_teams(self):
        """Object sharing (Section 2.1): the same player oid may appear
        in several teams' rosters."""
        db = Database.from_source(FOOTBALL_SCHEMA)
        star = db.insert("player", name="star", roles={10})
        db.insert("team", team_name="a", base_players=[star],
                  substitutes=set())
        db.insert("team", team_name="b", base_players=[star],
                  substitutes=set())
        assert db.check() == []
        rosters = [v["base_players"] for v in db.objects("team").values()]
        assert all(star in r for r in rosters)


class TestExample22ChildrenAndJunior:
    """Example 2.2: the CHILDREN data function and the nullary JUNIOR."""

    SOURCE = """
    domains
      bdate = string.
    classes
      person = (name: string, age: integer).
    associations
      parent = (father: person, child: person, bdate).
    functions
      children: person -> {(person: person, bdate: bdate)}.
      member(T, children(X)) <- parent(father X, child Y, bdate Z),
                                T = (person Y, bdate Z).
      junior -> {person}.
      member(X, junior) <- person(self X, age A), A <= 18.
    """

    def test_children_function(self):
        db = Database.from_source(self.SOURCE)
        abe = db.insert("person", name="abe", age=80)
        homer = db.insert("person", name="homer", age=40)
        db.insert("parent", father=abe, child=homer, bdate="1955")
        answers = db.query("?- member(T, children(F)), person(self F).")
        assert len(answers) == 1
        assert answers[0]["T"] == TupleValue(person=homer, bdate="1955")

    def test_junior_nullary_function(self):
        db = Database.from_source(self.SOURCE)
        db.insert("person", name="kid", age=12)
        db.insert("person", name="grown", age=30)
        answers = db.query(
            "?- member(X, junior), person(self X, name N)."
        )
        assert [a["N"] for a in answers] == ["kid"]


class TestExample31LegalOccurrences:
    """Example 3.1: legal predicate occurrences and their unifications."""

    def make_db(self):
        db = Database.from_source(UNIVERSITY_SCHEMA)
        school = db.insert("school", school_name="polimi", kind="public",
                           dean=Oid(0))
        prof = db.insert("professor", name="smith", address="milan",
                         course="db", profschool=school)
        stud = db.insert("student", name="smith", address="rome",
                         studschool=school)
        db.insert("advises", prof=prof, stud=stud)
        # elect the dean now that the professor exists
        db.state.edb.add_object(
            "school", school,
            db.objects("school")[school].with_field("dean", prof),
        )
        db._instance_cache = None
        return db, prof, stud

    def test_labeled_constant_occurrence(self):
        db, prof, stud = self.make_db()
        answers = db.query('?- person(name "smith", address X).')
        assert sorted(a["X"] for a in answers) == ["milan", "rome"]

    def test_self_occurrence(self):
        db, prof, stud = self.make_db()
        answers = db.query("?- person(self X).")
        assert {a["X"] for a in answers} == {prof, stud}

    def test_tuple_variable_occurrence(self):
        db, prof, stud = self.make_db()
        answers = db.query("?- person(X).")
        assert len(answers) == 2

    def test_dean_pattern_unifies_with_professor_oid(self):
        """Line 5's school(dean(self X)): X binds the professor's oid,
        which also satisfies person(self X) — the unification class 3 of
        the example."""
        db, prof, stud = self.make_db()
        answers = db.query(
            "?- school(dean(self X)), person(self X)."
        )
        assert [a["X"] for a in answers] == [prof]

    def test_advises_field_unifies_with_tuple_variable(self):
        """Unification class 2: the tuple variable of person and the
        professor-typed field of advises denote the same object."""
        db, prof, stud = self.make_db()
        answers = db.query(
            "?- advises(prof X, stud S), professor(self X, name N)."
        )
        assert [a["N"] for a in answers] == ["smith"]


class TestExample32Descendants:
    """Example 3.2: building a nested association with a data function."""

    SOURCE = """
    associations
      parent = (par: string, chil: string).
      ancestor = (anc: string, des: {string}).
    functions
      desc: string -> {string}.
      member(X, desc(Y)) <- parent(par Y, chil X).
      member(X, desc(Y)) <- parent(par Y, chil Z), member(X, T),
                            T = desc(Z).
    rules
      ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
    """

    def test_nested_descendants(self):
        db = Database.from_source(self.SOURCE,
                                  semantics=Semantics.STRATIFIED)
        for p, c in [("a", "b"), ("b", "c"), ("b", "d"), ("d", "e")]:
            db.insert("parent", par=p, chil=c)
        rows = {t["anc"]: t["des"] for t in db.tuples("ancestor")}
        assert rows["a"] == SetValue(["b", "c", "d", "e"])
        assert rows["d"] == SetValue(["e"])


class TestExample33Powerset:
    """Example 3.3: the powerset program via Append and Union.

    OCR reconstruction: the garbled `&pend(O, Y x)` is read as
    ``append({}, Y, X)`` (result-last convention), and
    ``Union(X, Y, Z)`` as computing the last argument."""

    SOURCE = """
    associations
      r = (d: integer).
      power = (s: {integer}).
    rules
      power(s X) <- X = {}.
      power(s X) <- r(d Y), append({}, Y, X).
      power(s X) <- power(s Y), power(s Z), union(Y, Z, X).
    """

    @pytest.mark.parametrize("n", [0, 1, 3, 4])
    def test_powerset_has_2_to_the_n_tuples(self, n):
        db = Database.from_source(self.SOURCE)
        for i in range(n):
            db.insert("r", d=i)
        assert len(db.tuples("power")) == 2 ** n

    def test_duplicate_elimination_through_associations(self):
        """The reason associations exist (Section 2.1): a class never
        contains duplicates, so fixpoint computations that need
        duplicate elimination use associations.  The powerset of a
        3-element relation converges to exactly 8 tuples instead of
        growing forever."""
        db = Database.from_source(self.SOURCE)
        for i in range(3):
            db.insert("r", d=i)
        sets = {frozenset(t["s"]) for t in db.tuples("power")}
        assert len(sets) == 8


class TestExample34InterestingPair:
    """Example 3.4 / the IP quantification discussion (Section 3.1)."""

    SOURCE = """
    classes
      ip = (employee: string, manager: string).
    associations
      pair = (employee: string, manager: string).
      emp = (ename: string, pname: string, works: string).
      dept = (dname: string, depmgr: string).
    rules
      pair(employee E, manager M) <- emp(ename E, pname N, works D),
                                     dept(dname D, depmgr M),
                                     emp(ename M, pname N).
      ip(X) <- pair(X).
    """

    def populate(self, db):
        for e, n, w in [("e1", "ann", "d1"), ("m1", "ann", "d2"),
                        ("e2", "ann", "d1")]:
            db.insert("emp", ename=e, pname=n, works=w)
        db.insert("dept", dname="d1", depmgr="m1")

    def test_association_controls_duplicates_then_objects_created(self):
        """The paper's fix for the quantification problem: compute the
        pairs as an association (explicit duplicate control), then
        promote each distinct pair to an object."""
        db = Database.from_source(self.SOURCE)
        self.populate(db)
        pairs = db.tuples("pair")
        assert {(t["employee"], t["manager"]) for t in pairs} == \
            {("e1", "m1"), ("e2", "m1")}
        ip_objects = db.objects("ip")
        assert len(ip_objects) == 2  # one object per distinct pair


class TestExample41TriggerUpdate:
    """Example 4.1: RIDV module application with a trigger rule."""

    def test_exact_paper_outcome(self):
        db = Database.from_source("""
        associations
          italian = (n: string).
          roman = (n: string).
        """)
        db.insert("italian", n="sara")
        module = Module.from_source("""
        rules
          italian(n "luca").
          roman(n "ugo").
          italian(X) <- roman(X).
        """, name="ex41")
        db.run_module(module, Mode.RIDV)
        assert {t["n"] for t in db.tuples("italian")} == \
            {"sara", "luca", "ugo"}
        assert {t["n"] for t in db.tuples("roman")} == {"ugo"}


class TestExample42UpdateThroughDeletion:
    """Example 4.2: E1 = {p(1,1), p(2,3), p(3,3), p(4,5)}.

    OCR reconstruction: the deletion rule's last literal is read as
    ``~mod(Y)`` (the MOD association records the *updated* tuples; a
    p-tuple with an even key that is not an updated tuple is the stale
    original and is deleted).  This is the only reading that reproduces
    the paper's stated E1 and converges."""

    def test_exact_paper_outcome(self):
        db = Database.from_source("""
        associations
          p = (d1: integer, d2: integer).
        """)
        for i in range(1, 5):
            db.insert("p", d1=i, d2=i)
        module = Module.from_source("""
        associations
          mod = (d1: integer, d2: integer).
        rules
          p(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                           ~mod(d1 X, d2 Y).
          mod(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                             ~mod(d1 X, d2 Y).
          ~p(Y) <- p(Y, d1 X), even(X), ~mod(Y).
        """, name="ex42")
        db.run_module(module, Mode.RIDV)
        result = sorted((t["d1"], t["d2"]) for t in db.tuples("p"))
        assert result == [(1, 1), (2, 3), (3, 3), (4, 5)]


class TestSection42MaterializationStrategies:
    """Section 4.2: materializing the instance (E = I) by running the
    intensional rules as RIDV updates."""

    def test_materialize_via_ridv_makes_e_equal_i(self):
        db = Database.from_source("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
        """)
        db.insert("edge", a="x", b="y")
        db.insert("edge", a="y", b="z")
        tc_module = Module.from_source("""
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
        """, name="tc")
        result = db.run_module(tc_module, Mode.RIDV)
        assert result.instance == db.state.edb  # E = I
        assert len(db.tuples("tc")) == 3

    def test_updating_derived_relation_cleanest_way(self):
        """Section 4.2's 'cleanest way of updating an intensional
        relation': materialize it (RIDV), delete the old rules (RDDV),
        then install the new definition (RADV) with a cleanup of stale
        materialized tuples."""
        old_rule = """
        rules
          derived(v X) <- base(v X).
        """
        db = Database.from_source("""
        associations
          base = (v: integer).
          derived = (v: integer).
        """ + old_rule)
        db.insert("base", v=1)
        db.insert("base", v=7)
        # 1. materialize the relation to be updated
        db.run_module(Module.from_source(old_rule, name="mat"),
                      Mode.RIDV)
        materialized = {f.value["v"]
                        for f in db.state.edb.facts_of("derived")}
        assert materialized == {1, 7}
        # 2. delete the old rule (facts it alone derives over ∅: none)
        db.run_module(Module.from_source(old_rule, name="drop"),
                      Mode.RDDV)
        assert db.state.rules == ()
        # 3. new definition + cleanup of stale extensional tuples
        db.run_module(Module.from_source("""
        rules
          ~derived(v X) <- derived(v X), X > 5.
        """, name="cleanup"), Mode.RIDV)
        db.run_module(Module.from_source("""
        rules
          derived(v X) <- base(v X), X <= 5.
        """, name="new-def"), Mode.RADI)
        assert {t["v"] for t in db.tuples("derived")} == {1}
