"""Tests for the Section 5 extensions: methods and update builders."""

import pytest

from repro import Database, Mode
from repro.errors import SchemaError
from repro.extensions import (
    MethodRegistry,
    build_delete_module,
    build_insert_module,
    build_update_module,
)
from repro.extensions.methods import MethodError


@pytest.fixture
def pair_db():
    db = Database.from_source("""
    associations
      p = (d1: integer, d2: integer).
    """)
    for i in range(1, 5):
        db.insert("p", d1=i, d2=i)
    return db


@pytest.fixture
def university_db():
    db = Database.from_source("""
    domains
      name = string.
    classes
      person = (name, address: string).
      student = (person, school: string).
      student isa person.
    associations
      parent = (par: name, chil: name).
    """)
    return db


class TestInsertModule:
    def test_inserts_rows(self, pair_db):
        mod = build_insert_module(pair_db.schema, "p",
                                  [dict(d1=9, d2=9), dict(d1=8, d2=8)])
        pair_db.run_module(mod, Mode.RIDV)
        values = {(t["d1"], t["d2"]) for t in pair_db.tuples("p")}
        assert (9, 9) in values and (8, 8) in values

    def test_missing_attribute_rejected(self, pair_db):
        with pytest.raises(SchemaError, match="misses"):
            build_insert_module(pair_db.schema, "p", [dict(d1=1)])

    def test_class_target_rejected(self, university_db):
        with pytest.raises(SchemaError, match="associations"):
            build_insert_module(university_db.schema, "person",
                                [dict(name="x", address="y")])


class TestDeleteModule:
    def test_delete_by_constant(self, pair_db):
        mod = build_delete_module(pair_db.schema, "p", {"d1": 2})
        pair_db.run_module(mod, Mode.RIDV)
        assert {t["d1"] for t in pair_db.tuples("p")} == {1, 3, 4}

    def test_delete_by_comparison(self, pair_db):
        mod = build_delete_module(pair_db.schema, "p", {"d2": (">", 2)})
        pair_db.run_module(mod, Mode.RIDV)
        assert {t["d2"] for t in pair_db.tuples("p")} == {1, 2}

    def test_delete_by_unary_guard(self, pair_db):
        mod = build_delete_module(pair_db.schema, "p",
                                  {"d1": ("odd",)})
        pair_db.run_module(mod, Mode.RIDV)
        assert {t["d1"] for t in pair_db.tuples("p")} == {2, 4}


class TestUpdateModule:
    def test_reproduces_example_4_2(self, pair_db):
        mod = build_update_module(
            pair_db.schema, "p",
            where={"d1": ("even",)},
            assign={"d2": ("+", 1)},
        )
        pair_db.run_module(mod, Mode.RIDV)
        assert sorted((t["d1"], t["d2"]) for t in pair_db.tuples("p")) == \
            [(1, 1), (2, 3), (3, 3), (4, 5)]

    def test_constant_assignment(self, pair_db):
        mod = build_update_module(
            pair_db.schema, "p", where={"d1": 1}, assign={"d2": 99},
        )
        pair_db.run_module(mod, Mode.RIDV)
        assert (1, 99) in {(t["d1"], t["d2"]) for t in pair_db.tuples("p")}

    def test_update_is_idempotent_per_application(self, pair_db):
        """Applying the module once performs one field update, even
        though the new tuples match `where` again — the scratch relation
        blocks cascading (Example 4.2's MOD)."""
        mod = build_update_module(
            pair_db.schema, "p",
            where={"d1": ("even",)},
            assign={"d2": ("+", 1)},
        )
        pair_db.run_module(mod, Mode.RIDV)
        values = {(t["d1"], t["d2"]) for t in pair_db.tuples("p")}
        assert (2, 3) in values and (2, 4) not in values

    def test_unknown_attribute_rejected(self, pair_db):
        with pytest.raises(SchemaError, match="no attribute"):
            build_update_module(pair_db.schema, "p",
                                where={"ghost": 1}, assign={"d2": 2})


class TestMethods:
    def make_registry(self, db):
        sara = db.insert("student", name="sara", address="milan",
                         school="polimi")
        bob = db.insert("person", name="bob", address="rome")
        db.insert("parent", par="sara", chil="luca")
        db.insert("parent", par="sara", chil="mia")
        registry = MethodRegistry(db)
        registry.define("person", "children", """
        goal
          ?- person(self Self, name N), parent(par N, chil C).
        """)
        registry.define("student", "intro", """
        goal
          ?- student(self Self, name N, school S).
        """)
        return registry, sara, bob

    def test_call_binds_receiver(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        answers = registry.call(sara, "children")
        assert sorted(a["C"] for a in answers) == ["luca", "mia"]
        assert registry.call(bob, "children") == []

    def test_inherited_dispatch(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        # children is defined on person, called on a student
        assert registry.call(sara, "children")

    def test_method_not_visible_upward(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        with pytest.raises(MethodError, match="no method"):
            registry.call(bob, "intro")

    def test_methods_of_lists_inherited(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        names = [m.name for m in registry.methods_of("student")]
        assert names == ["children", "intro"]
        assert [m.name for m in registry.methods_of("person")] == \
            ["children"]

    def test_override_shadows_superclass(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        registry.define("student", "children", """
        goal
          ?- student(self Self, name N), parent(par N, chil C),
             C != "mia".
        """)
        answers = registry.call(sara, "children")
        assert [a["C"] for a in answers] == ["luca"]

    def test_parameters(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        registry.define("person", "has_child", """
        goal
          ?- person(self Self, name N), parent(par N, chil Who).
        """, parameters=("who",))
        answers = registry.call(sara, "has_child", who="luca")
        assert answers
        assert registry.call(sara, "has_child", who="nobody") == []
        with pytest.raises(MethodError, match="parameters"):
            registry.call(sara, "has_child")

    def test_encapsulation_helper_rules_not_persistent(self, university_db):
        registry, sara, bob = self.make_registry(university_db)
        registry.define("person", "descendants", """
        associations
          reach = (a: name, d: name).
        rules
          reach(a X, d Y) <- parent(par X, chil Y).
          reach(a X, d Z) <- parent(par X, chil Y), reach(a Y, d Z).
        goal
          ?- person(self Self, name N), reach(a N, d D).
        """)
        answers = registry.call(sara, "descendants")
        assert sorted(a["D"] for a in answers) == ["luca", "mia"]
        # RIDI semantics: nothing leaked into the database
        assert not university_db.schema.has("reach")
        assert len(university_db.rules) == 0

    def test_goal_required(self, university_db):
        registry = MethodRegistry(university_db)
        with pytest.raises(MethodError, match="goal"):
            registry.define("person", "broken", "rules\n parent(par \"x\", chil \"y\").")

    def test_non_class_rejected(self, university_db):
        registry = MethodRegistry(university_db)
        with pytest.raises(SchemaError, match="not a class"):
            registry.define("parent", "m", "goal\n ?- parent(par X).")

    def test_unknown_oid_rejected(self, university_db):
        from repro import Oid

        registry, sara, bob = self.make_registry(university_db)
        with pytest.raises(MethodError, match="no object"):
            registry.call(Oid(999), "children")
