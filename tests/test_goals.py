"""Focused tests for goal answering (repro.engine.goals)."""

from repro import Engine, FactSet, Oid, Semantics, TupleValue
from repro.engine.goals import answer_goal, goal_holds
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def university():
    schema, program = build("""
    classes
      person = (name: string, age: integer).
    associations
      likes = (who: person, what: string).
    """)
    edb = FactSet()
    edb.add_object("person", Oid(1), TupleValue(name="ann", age=30))
    edb.add_object("person", Oid(2), TupleValue(name="bob", age=20))
    edb.add_association("likes", TupleValue(who=Oid(1), what="tea"))
    out = Engine(schema, program).run(edb)
    return schema, out


def goal_of(text):
    return parse_source("goal\n " + text).goal


class TestAnswerShapes:
    def test_oid_bindings_returned_as_oids(self):
        schema, instance = university()
        answers = answer_goal(goal_of("?- likes(who W, what T)."),
                              instance, schema)
        assert answers == [{"W": Oid(1), "T": "tea"}]

    def test_tuple_bindings_hide_self(self):
        schema, instance = university()
        answers = answer_goal(goal_of("?- person(P)."), instance, schema)
        assert len(answers) == 2
        for answer in answers:
            assert "self" not in answer["P"]
            assert "name" in answer["P"]

    def test_anonymous_variables_not_reported(self):
        schema, instance = university()
        answers = answer_goal(goal_of("?- person(self _, name N)."),
                              instance, schema)
        assert all(set(a) == {"N"} for a in answers)

    def test_builtins_in_goals(self):
        schema, instance = university()
        answers = answer_goal(
            goal_of("?- person(name N, age A), A >= 25."),
            instance, schema,
        )
        assert [a["N"] for a in answers] == ["ann"]

    def test_ground_goal_yields_single_empty_answer(self):
        schema, instance = university()
        answers = answer_goal(goal_of('?- person(name "ann").'),
                              instance, schema)
        assert answers == [{}]

    def test_failed_goal_yields_no_answers(self):
        schema, instance = university()
        assert answer_goal(goal_of('?- person(name "zoe").'),
                           instance, schema) == []

    def test_goal_holds_boolean(self):
        schema, instance = university()
        assert goal_holds(goal_of('?- likes(what "tea").'), instance,
                          schema)
        assert not goal_holds(goal_of('?- likes(what "gin").'), instance,
                              schema)


class TestGoalsThroughDereference:
    def test_goal_pattern_navigation(self):
        schema, instance = university()
        answers = answer_goal(
            goal_of("?- likes(who(name N, age A), what T)."),
            instance, schema,
        )
        assert answers == [{"N": "ann", "A": 30, "T": "tea"}]
