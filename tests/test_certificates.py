"""Certificate soundness: permutation within a certified group is free.

The independence certificates of :mod:`repro.analysis.interference`
claim that rules inside one group are order-insensitive.  This suite
holds that claim to the bit level: for 100+ random programs — spanning
joins, recursion, filters, negation, deletion heads, class-attribute
writes, class reads and oid invention — permuting the source rules
within any certified-independent group must produce a final instance
**identical** to the unpermuted program evaluated on the reference
kernel, under all three semantics (matching failure behaviour included).

This is also what licenses the engine's certificate-backed reordering
in ``Engine._attach_plans`` (cheapest-plan-first within a group).
"""

import random

from hypothesis import given, settings, strategies as st

from repro import Engine, EvalConfig, FactSet, Semantics, parse_source
from repro.analysis import lint_source
from repro.errors import LogresError
from repro.language.ast import Program
from repro.workloads import random_edges

MAX_ITERATIONS = 300

SHAPES = (
    "copy", "swap", "join", "filter", "closure", "negation", "deletion",
    "class-write", "class-read",
)


def random_cert_program(rng: random.Random) -> str:
    """A random program over association ``e`` and class ``node``.

    Shapes mirror the incremental-kernel generator plus the
    object-oriented ones that matter to interference analysis: class
    attribute writes (o-value overwrites), class reads, and (sometimes)
    an oid-inventing rule.  Always stratifiable.
    """
    shapes = rng.choices(SHAPES, k=rng.randint(3, 6))
    decls, rules = [], []
    for i, shape in enumerate(shapes):
        out = f"out{i}"
        decls.append(f"  {out} = (a: string, b: string).")
        prev = f"out{rng.randrange(i)}" if i and rng.random() < 0.4 else "e"
        if shape == "copy":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
        elif shape == "swap":
            rules.append(f"{out}(a Y, b X) <- {prev}(a X, b Y).")
        elif shape == "join":
            rules.append(
                f"{out}(a X, b Z) <- {prev}(a X, b Y), e(a Y, b Z)."
            )
        elif shape == "filter":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y), X < Y.")
        elif shape == "closure":
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
            rules.append(
                f"{out}(a X, b Z) <- {prev}(a X, b Y), {out}(a Y, b Z)."
            )
        elif shape == "negation":
            rules.append(
                f"{out}(a X, b Y) <- {prev}(a X, b Y), ~e(a Y, b X)."
            )
        elif shape == "deletion":
            rules.append(
                f"~{out}(a X, b Y) <- {out}(a X, b Y), e(a Y, b X)."
            )
            rules.append(f"{out}(a X, b Y) <- {prev}(a X, b Y).")
        elif shape == "class-write":
            rules.append(
                f"node(self S, tag Y) <- node(self S, name X),"
                f" {prev}(a X, b Y)."
            )
        else:  # class-read
            rules.append(
                f"{out}(a X, b X) <- node(self S, name X)."
            )
    if rng.random() < 0.3:
        # a single inventor keeps multi-rule certificates possible;
        # a second one (sometimes) exercises the singleton guard
        rules.append("node(name X, tag X) <- e(a X, b X).")
        if rng.random() < 0.3:
            rules.append("node(name Y, tag Y) <- e(a Y, b Y).")
    source = (
        "classes\n  node = (name: string, tag: string).\n"
        "associations\n  e = (a: string, b: string).\n"
        + "\n".join(decls)
        + "\nrules\n  "
        + "\n  ".join(rules)
    )
    return source


def seed_edb(rng: random.Random) -> FactSet:
    nodes = rng.randint(3, 7)
    edges = rng.randint(2, 10)
    return random_edges(nodes, edges, seed=rng.randrange(10_000),
                        acyclic=rng.random() < 0.7,
                        pred="e", a="a", b="b")


def outcome(schema, program, edb, semantics, *, reference: bool):
    """(status, payload) so legitimately failing runs compare equal."""
    config = EvalConfig(
        max_iterations=MAX_ITERATIONS,
        max_facts=50_000,
        incremental=not reference,
        plan=not reference,
    )
    engine = Engine(schema, program, config)
    try:
        return "ok", engine.run(edb.copy(), semantics)
    except LogresError as exc:
        return "error", type(exc).__name__


def permute_within_group(program: Program, group, rng: random.Random):
    """The program with the rules of one certified group shuffled in
    place (their source slots keep their positions; members rotate)."""
    perm = list(group)
    while True:
        rng.shuffle(perm)
        if perm != list(group) or len(group) < 2:
            break
    rules = list(program.rules)
    for slot, src in zip(group, perm):
        rules[slot] = program.rules[src]
    return Program(tuple(rules), program.goal)


SEMANTICS = (
    Semantics.INFLATIONARY,
    Semantics.STRATIFIED,
    Semantics.NONINFLATIONARY,
)


@settings(max_examples=120, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=10**9))
def test_certified_permutation_is_bit_identical(seed):
    rng = random.Random(seed)
    source = random_cert_program(rng)
    report = lint_source(source)
    assert not report.has_errors, source
    inter = report.interference
    candidates = [
        g for s in inter.strata for g in s.groups if len(g) >= 2
    ]
    if not candidates:
        return  # all-singleton certificates: nothing to permute
    group = rng.choice(candidates)

    unit = parse_source(source)
    schema, program = unit.schema(), unit.program()
    permuted = permute_within_group(program, group, rng)
    edb = seed_edb(rng)
    for semantics in SEMANTICS:
        base = outcome(schema, program, edb, semantics, reference=True)
        alt = outcome(schema, permuted, edb, semantics, reference=False)
        assert base[0] == alt[0], (semantics, source, group, base, alt)
        assert base[1] == alt[1], (semantics, source, group)


def test_generator_produces_permutable_groups():
    """The property above must not be vacuous: a healthy share of the
    generated programs carry a multi-rule certificate."""
    rng = random.Random(7)
    hits = 0
    for _ in range(40):
        report = lint_source(random_cert_program(rng))
        assert not report.has_errors
        hits += any(
            len(g) >= 2
            for s in report.interference.strata
            for g in s.groups
        )
    assert hits >= 20


def test_known_program_has_multi_rule_certificate():
    source = """
    associations
      e = (a: string, b: string).
      out0 = (a: string, b: string).
      out1 = (a: string, b: string).
    rules
      out0(a X, b Y) <- e(a X, b Y).
      out1(a Y, b X) <- e(a X, b Y).
    """
    report = lint_source(source)
    inter = report.interference
    assert [s.groups for s in inter.strata] in (
        [[[0, 1]]],                       # one stratum, one group
        [[[0]], [[1]]],                   # or split strata, each whole
    )
