"""Unit tests for type descriptors (Appendix A, Definition 1)."""

import pytest

from repro.errors import TypeEquationError
from repro.types.descriptors import (
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
)


class TestElementaryTypes:
    def test_singletons_exist(self):
        assert INTEGER.name == "integer"
        assert STRING.name == "string"
        assert REAL.name == "real"
        assert BOOLEAN.name == "boolean"

    def test_equality_by_name(self):
        assert INTEGER == ElementaryType("integer")
        assert INTEGER != STRING

    def test_hashable(self):
        assert len({INTEGER, STRING, INTEGER}) == 2


class TestTupleType:
    def test_labels_in_declaration_order(self):
        t = TupleType((TupleField("b", INTEGER), TupleField("a", STRING)))
        assert t.labels == ("b", "a")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TypeEquationError, match="duplicate"):
            TupleType((TupleField("x", INTEGER), TupleField("x", STRING)))

    def test_field_lookup(self):
        t = TupleType((TupleField("x", INTEGER),))
        assert t.field("x").type == INTEGER
        with pytest.raises(KeyError):
            t.field("missing")

    def test_has_label(self):
        t = TupleType((TupleField("x", INTEGER),))
        assert t.has_label("x")
        assert not t.has_label("y")

    def test_empty_tuple_is_legal(self):
        assert TupleType(()).labels == ()

    def test_accepts_bare_pairs(self):
        t = TupleType((("x", INTEGER), ("y", STRING)))
        assert t.field("y").type == STRING


class TestWalkAndReferences:
    def test_walk_visits_nested_descriptors(self):
        t = SetType(TupleType((TupleField("a", NamedType("person")),)))
        kinds = [type(d).__name__ for d in t.walk()]
        assert kinds == ["SetType", "TupleType", "NamedType"]

    def test_named_references_collects_names(self):
        t = TupleType((
            TupleField("a", NamedType("person")),
            TupleField("b", SequenceType(NamedType("team"))),
            TupleField("c", MultisetType(INTEGER)),
        ))
        assert t.named_references() == {"person", "team"}

    def test_elementary_has_no_references(self):
        assert INTEGER.named_references() == set()


class TestReprs:
    def test_constructor_reprs_match_paper_notation(self):
        assert repr(SetType(INTEGER)) == "{INTEGER}"
        assert repr(MultisetType(INTEGER)) == "[INTEGER]"
        assert repr(SequenceType(INTEGER)) == "<INTEGER>"
        t = TupleType((TupleField("x", INTEGER),))
        assert repr(t) == "(x: INTEGER)"
