"""Engine tests: positive rules, joins, recursion, builtins, goals."""

import pytest

from repro import Engine, EvalConfig, FactSet, Semantics, TupleValue
from repro.engine.goals import answer_goal, goal_holds
from repro.errors import NonTerminationError
from repro.language.parser import parse_program, parse_source


def run(schema, program_text, edb, semantics=Semantics.INFLATIONARY,
        config=None):
    engine = Engine(schema, parse_program(program_text), config=config)
    return engine.run(edb, semantics), engine


def pairs(facts, pred, a, b):
    return sorted((f.value[a], f.value[b]) for f in facts.facts_of(pred))


class TestTransitiveClosure:
    def test_chain(self, edge_schema, chain_parents, tc_program):
        engine = Engine(edge_schema, tc_program)
        out = engine.run(chain_parents)
        assert pairs(out, "anc", "a", "d") == [
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        ]

    def test_edb_is_not_mutated(self, edge_schema, chain_parents,
                                tc_program):
        before = chain_parents.copy()
        Engine(edge_schema, tc_program).run(chain_parents)
        assert chain_parents == before

    def test_seminaive_and_naive_agree(self, edge_schema, chain_parents,
                                       tc_program):
        fast = Engine(edge_schema, tc_program,
                      EvalConfig(seminaive=True))
        slow = Engine(edge_schema, tc_program,
                      EvalConfig(seminaive=False))
        assert fast.run(chain_parents) == slow.run(chain_parents)
        assert fast.stats.used_seminaive
        assert not slow.stats.used_seminaive

    def test_empty_edb_gives_empty_idb(self, edge_schema, tc_program):
        out = Engine(edge_schema, tc_program).run(FactSet())
        assert out.count() == 0


class TestJoinsAndSelections:
    def test_join_through_shared_variable(self, edge_schema):
        edb = FactSet()
        for p, c in [("a", "b"), ("b", "c")]:
            edb.add_association("parent", TupleValue(par=p, chil=c))
        out, _ = run(
            edge_schema,
            "anc(a X, d Z) <- parent(par X, chil Y),"
            " parent(par Y, chil Z).",
            edb,
        )
        assert pairs(out, "anc", "a", "d") == [("a", "c")]

    def test_constant_selection(self, edge_schema, chain_parents):
        out, _ = run(
            edge_schema,
            'anc(a "a", d Y) <- parent(par "a", chil Y).',
            chain_parents,
        )
        assert pairs(out, "anc", "a", "d") == [("a", "b")]

    def test_comparison_filter(self):
        unit = parse_source("""
        associations
          n = (v: integer).
          big = (v: integer).
        rules
          big(v X) <- n(v X), X > 2.
        """)
        edb = FactSet()
        for i in range(5):
            edb.add_association("n", TupleValue(v=i))
        out = Engine(unit.schema(), unit.program()).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("big")) == [3, 4]

    def test_arithmetic_binding(self):
        unit = parse_source("""
        associations
          n = (v: integer).
          double = (v: integer, d: integer).
        rules
          double(v X, d Y) <- n(v X), Y = X * 2.
        """)
        edb = FactSet()
        edb.add_association("n", TupleValue(v=3))
        out = Engine(unit.schema(), unit.program()).run(edb)
        assert pairs(out, "double", "v", "d") == [(3, 6)]

    def test_same_generation(self):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
          sg = (l: string, r: string).
        rules
          sg(l X, r X) <- parent(par P, chil X).
          sg(l X, r Y) <- parent(par P1, chil X),
                          parent(par P2, chil Y), sg(l P1, r P2).
        """)
        edb = FactSet()
        for p, c in [("top", "r"), ("r", "a"), ("r", "b"),
                     ("a", "x"), ("b", "y")]:
            edb.add_association("parent", TupleValue(par=p, chil=c))
        out = Engine(unit.schema(), unit.program()).run(edb)
        sg = set(pairs(out, "sg", "l", "r"))
        assert ("x", "y") in sg
        assert ("a", "b") in sg
        assert ("a", "x") not in sg


class TestFactRules:
    def test_facts_fire_once(self, edge_schema):
        out, engine = run(
            edge_schema,
            'parent(par "a", chil "b").',
            FactSet(),
        )
        assert out.count("parent") == 1

    def test_fact_with_rule_interaction(self, edge_schema):
        out, _ = run(
            edge_schema,
            """
            parent(par "a", chil "b").
            anc(a X, d Y) <- parent(par X, chil Y).
            """,
            FactSet(),
        )
        assert pairs(out, "anc", "a", "d") == [("a", "b")]


class TestBudgets:
    def test_fact_budget_enforced(self):
        unit = parse_source("""
        associations
          n = (v: integer).
        rules
          n(v Y) <- n(v X), Y = X + 1.
        """)
        edb = FactSet()
        edb.add_association("n", TupleValue(v=0))
        engine = Engine(unit.schema(), unit.program(),
                        EvalConfig(max_facts=50, seminaive=False))
        with pytest.raises(NonTerminationError):
            engine.run(edb)

    def test_iteration_budget_enforced(self):
        unit = parse_source("""
        associations
          n = (v: integer).
        rules
          n(v Y) <- n(v X), Y = X + 1.
        """)
        edb = FactSet()
        edb.add_association("n", TupleValue(v=0))
        engine = Engine(unit.schema(), unit.program(),
                        EvalConfig(max_iterations=5, seminaive=False))
        with pytest.raises(NonTerminationError) as err:
            engine.run(edb)
        assert err.value.iterations >= 5

    def test_seminaive_budget_enforced(self):
        unit = parse_source("""
        associations
          n = (v: integer).
        rules
          n(v Y) <- n(v X), Y = X + 1.
        """)
        edb = FactSet()
        edb.add_association("n", TupleValue(v=0))
        engine = Engine(unit.schema(), unit.program(),
                        EvalConfig(max_facts=50, seminaive=True))
        with pytest.raises(NonTerminationError):
            engine.run(edb)


class TestGoals:
    def test_answer_goal_bindings(self, edge_schema, chain_parents,
                                  tc_program):
        out = Engine(edge_schema, tc_program).run(chain_parents)
        goal = parse_source('goal\n ?- anc(a "a", d D).').goal
        answers = answer_goal(goal, out, edge_schema)
        assert sorted(a["D"] for a in answers) == ["b", "c", "d"]

    def test_goal_with_negation(self, edge_schema, chain_parents,
                                tc_program):
        out = Engine(edge_schema, tc_program).run(chain_parents)
        goal = parse_source(
            'goal\n ?- parent(par X, chil Y), ~anc(a Y, d "d").'
        ).goal
        answers = answer_goal(goal, out, edge_schema)
        assert {(a["X"], a["Y"]) for a in answers} == {("c", "d")}

    def test_goal_holds(self, edge_schema, chain_parents, tc_program):
        out = Engine(edge_schema, tc_program).run(chain_parents)
        yes = parse_source('goal\n ?- anc(a "a", d "d").').goal
        no = parse_source('goal\n ?- anc(a "d", d "a").').goal
        assert goal_holds(yes, out, edge_schema)
        assert not goal_holds(no, out, edge_schema)

    def test_duplicate_answers_collapsed(self, edge_schema, chain_parents,
                                         tc_program):
        out = Engine(edge_schema, tc_program).run(chain_parents)
        goal = parse_source("goal\n ?- anc(a X).").goal
        answers = answer_goal(goal, out, edge_schema)
        assert sorted(a["X"] for a in answers) == ["a", "b", "c"]


class TestStats:
    def test_stats_populated(self, edge_schema, chain_parents, tc_program):
        engine = Engine(edge_schema, tc_program)
        engine.run(chain_parents)
        assert engine.stats.iterations >= 2
        assert engine.stats.facts_derived >= 6


class TestEngineObservability:
    def test_strata_counted_under_stratified_semantics(self):
        from repro import Semantics
        from repro.language.parser import parse_source

        unit = parse_source("""
        associations
          edge = (a: string, b: string).
          tc = (a: string, b: string).
          leaf = (n: string).
        rules
          tc(a X, b Y) <- edge(a X, b Y).
          tc(a X, b Z) <- edge(a X, b Y), tc(a Y, b Z).
          leaf(n Y) <- edge(a X, b Y), ~edge(a Y).
        """)
        edb = FactSet()
        edb.add_association("edge", TupleValue(a="x", b="y"))
        engine = Engine(unit.schema(), unit.program())
        engine.run(edb, Semantics.STRATIFIED)
        assert engine.stats.strata == 2

    def test_stats_reset_between_runs(self, edge_schema, chain_parents,
                                      tc_program):
        engine = Engine(edge_schema, tc_program)
        engine.run(chain_parents)
        first = engine.stats.iterations
        engine.run(FactSet())
        assert engine.stats.iterations < first

    def test_run_is_repeatable_on_same_engine(self, edge_schema,
                                              chain_parents, tc_program):
        engine = Engine(edge_schema, tc_program)
        assert engine.run(chain_parents) == engine.run(chain_parents)
