"""Unit tests for the built-in predicates and their modes."""

import pytest

from repro.errors import BuiltinError
from repro.language.ast import Var
from repro.language.builtins import BUILTINS, get_builtin, is_builtin
from repro.values import (
    MultisetValue,
    SequenceValue,
    SetValue,
)

X, Y = Var("X"), Var("Y")


def solve(name, *args):
    return list(get_builtin(name).solve(list(args)))


class TestRegistry:
    def test_is_builtin(self):
        assert is_builtin("member")
        assert is_builtin("MEMBER")  # case-insensitive
        assert not is_builtin("parent")

    def test_get_unknown_raises(self):
        with pytest.raises(BuiltinError, match="unknown"):
            get_builtin("teleport")

    def test_arity_enforced(self):
        with pytest.raises(BuiltinError, match="takes 2"):
            solve("member", 1)

    def test_every_builtin_documents_itself(self):
        assert all(b.doc for b in BUILTINS.values())


class TestEquality:
    def test_check_mode(self):
        assert solve("=", 1, 1) == [{}]
        assert solve("=", 1, 2) == []

    def test_bind_left_and_right(self):
        assert solve("=", X, 5) == [{X: 5}]
        assert solve("=", 5, X) == [{X: 5}]

    def test_both_unbound_raises(self):
        with pytest.raises(BuiltinError, match="bound side"):
            solve("=", X, Y)

    def test_disequality_requires_bound(self):
        assert solve("!=", 1, 2) == [{}]
        assert solve("!=", 1, 1) == []
        with pytest.raises(BuiltinError):
            solve("!=", X, 1)


class TestComparisons:
    @pytest.mark.parametrize("op,a,b,holds", [
        ("<", 1, 2, True), ("<", 2, 1, False),
        ("<=", 2, 2, True), (">", 3, 1, True),
        (">=", 1, 2, False),
        ("<", "a", "b", True),  # strings compare lexicographically
    ])
    def test_comparisons(self, op, a, b, holds):
        assert bool(solve(op, a, b)) is holds

    def test_incomparable_values_raise(self):
        with pytest.raises(BuiltinError, match="incomparable"):
            solve("<", 1, "x")


class TestMember:
    def test_enumerates_sets(self):
        out = solve("member", X, SetValue([1, 2]))
        assert sorted(b[X] for b in out) == [1, 2]

    def test_enumerates_sequences_without_duplicates(self):
        out = solve("member", X, SequenceValue([1, 1, 2]))
        assert sorted(b[X] for b in out) == [1, 2]

    def test_check_mode(self):
        assert solve("member", 1, SetValue([1])) == [{}]
        assert solve("member", 9, SetValue([1])) == []

    def test_collection_must_be_bound(self):
        with pytest.raises(BuiltinError, match="bound"):
            solve("member", 1, Y)

    def test_non_collection_raises(self):
        with pytest.raises(BuiltinError, match="expects a set"):
            solve("member", 1, 42)


class TestSetConstructors:
    def test_union_result_last(self):
        out = solve("union", SetValue([1]), SetValue([2]), X)
        assert out == [{X: SetValue([1, 2])}]

    def test_union_check_mode(self):
        assert solve("union", SetValue([1]), SetValue([2]),
                     SetValue([1, 2])) == [{}]
        assert solve("union", SetValue([1]), SetValue([2]),
                     SetValue([1])) == []

    def test_union_multisets_adds_multiplicities(self):
        out = solve("union", MultisetValue([1]), MultisetValue([1]), X)
        assert out[0][X].multiplicity(1) == 2

    def test_union_sequences_concatenates(self):
        out = solve("union", SequenceValue([1]), SequenceValue([2]), X)
        assert out[0][X] == SequenceValue([1, 2])

    def test_union_mixed_kinds_raises(self):
        with pytest.raises(BuiltinError):
            solve("union", SetValue([1]), SequenceValue([2]), X)

    def test_intersection_and_difference(self):
        a, b = SetValue([1, 2]), SetValue([2, 3])
        assert solve("intersection", a, b, X) == [{X: SetValue([2])}]
        assert solve("difference", a, b, X) == [{X: SetValue([1])}]

    def test_append_to_set_sequence_multiset(self):
        assert solve("append", SetValue([1]), 2, X) == \
            [{X: SetValue([1, 2])}]
        assert solve("append", SequenceValue([1]), 2, X) == \
            [{X: SequenceValue([1, 2])}]
        out = solve("append", MultisetValue([1]), 1, X)
        assert out[0][X].multiplicity(1) == 2

    def test_append_non_collection_raises(self):
        with pytest.raises(BuiltinError):
            solve("append", 1, 2, X)

    def test_subset(self):
        assert solve("subset", SetValue([1]), SetValue([1, 2])) == [{}]
        assert solve("subset", SetValue([3]), SetValue([1, 2])) == []


class TestAggregates:
    def test_count(self):
        assert solve("count", SetValue([1, 2]), X) == [{X: 2}]
        assert solve("count", MultisetValue([1, 1]), X) == [{X: 2}]

    def test_sum_numeric_only(self):
        assert solve("sum", SetValue([1, 2]), X) == [{X: 3}]
        with pytest.raises(BuiltinError, match="non-numeric"):
            solve("sum", SetValue(["a"]), X)

    def test_min_max(self):
        assert solve("min", SetValue([3, 1]), X) == [{X: 1}]
        assert solve("max", SetValue([3, 1]), X) == [{X: 3}]

    def test_min_of_empty_fails_silently(self):
        assert solve("min", SetValue([]), X) == []

    def test_length_and_nth(self):
        seq = SequenceValue(["a", "b"])
        assert solve("length", seq, X) == [{X: 2}]
        assert solve("nth", seq, 1, X) == [{X: "a"}]   # 1-based
        assert solve("nth", seq, 3, X) == []           # out of range
        with pytest.raises(BuiltinError):
            solve("length", SetValue([1]), X)


class TestNumericPredicates:
    def test_even_odd(self):
        assert solve("even", 4) == [{}]
        assert solve("even", 3) == []
        assert solve("odd", 3) == [{}]
        with pytest.raises(BuiltinError):
            solve("even", "x")

    def test_mod(self):
        assert solve("mod", 7, 3, X) == [{X: 1}]
        with pytest.raises(BuiltinError, match="zero"):
            solve("mod", 7, 0, X)


class TestSequenceBuiltins:
    def test_first_and_last(self):
        seq = SequenceValue(["a", "b", "c"])
        assert solve("first", seq, X) == [{X: "a"}]
        assert solve("last", seq, X) == [{X: "c"}]

    def test_first_of_empty_fails_silently(self):
        assert solve("first", SequenceValue([]), X) == []
        assert solve("last", SequenceValue([]), X) == []

    def test_reverse(self):
        seq = SequenceValue([1, 2, 3])
        assert solve("reverse", seq, X) == [{X: SequenceValue([3, 2, 1])}]
        assert solve("reverse", SequenceValue([]), X) == \
            [{X: SequenceValue([])}]

    def test_sequence_builtins_reject_sets(self):
        with pytest.raises(BuiltinError):
            solve("first", SetValue([1]), X)
        with pytest.raises(BuiltinError):
            solve("reverse", SetValue([1]), X)
