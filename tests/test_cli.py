"""Tests for the command-line interface."""

import pytest

from repro.cli import main

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.logres"
    path.write_text(TC_SOURCE)
    return str(path)


class TestRun:
    def test_prints_instance(self, tc_file, capsys):
        assert main(["run", tc_file]) == 0
        out = capsys.readouterr().out
        assert "anc (3):" in out
        assert "parent (2):" in out

    def test_goal_answers(self, tc_file, tmp_path, capsys):
        path = tmp_path / "q.logres"
        path.write_text(TC_SOURCE + '\ngoal\n  ?- anc(a "a", d D).\n')
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 answer(s):" in out

    def test_semantics_flag(self, tc_file, capsys):
        assert main(["run", tc_file, "--semantics", "stratified"]) == 0

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.logres"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.logres"
        path.write_text("rules\n p(x X <- q.")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error[LG101]" in err
        assert f"{path}:2:" in err  # file:line:col prefix
        assert "Traceback" not in err


class TestCheck:
    def test_consistent_program(self, tc_file, capsys):
        assert main(["check", tc_file]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_violation_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.logres"
        path.write_text(TC_SOURCE + '\nrules\n  <- anc(a "a", d "c").\n')
        assert main(["check", str(path)]) == 1
        assert "violation" in capsys.readouterr().out


class TestFmt:
    def test_canonical_output_reparses(self, tc_file, capsys, tmp_path):
        assert main(["fmt", tc_file]) == 0
        formatted = capsys.readouterr().out
        path = tmp_path / "fmt.logres"
        path.write_text(formatted)
        assert main(["check", str(path)]) == 0


class TestExplain:
    def test_derivation_tree(self, tc_file, capsys):
        assert main(["explain", tc_file, 'anc(a="a", d="c")']) == 0
        out = capsys.readouterr().out
        assert "step" in out and "rule:" in out

    def test_unknown_fact(self, tc_file, capsys):
        assert main(["explain", tc_file, 'anc(a="zz", d="qq")']) == 1

    def test_malformed_fact(self, tc_file, capsys):
        assert main(["explain", tc_file, "anc"]) == 2


class TestStateIntegration:
    def test_run_against_persisted_state(self, tmp_path, capsys):
        from repro import Database

        db = Database.from_source("""
        associations
          parent = (par: string, chil: string).
        """)
        db.insert("parent", par="x", chil="y")
        state_path = tmp_path / "state.json"
        db.save(state_path)

        query = tmp_path / "q.logres"
        query.write_text("goal\n  ?- parent(par P, chil C).\n")
        assert main(["run", str(query), "--state", str(state_path)]) == 0
        assert "1 answer(s):" in capsys.readouterr().out
