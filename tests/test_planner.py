"""Unit tests for the cost-based rule planner.

The planner (:mod:`repro.engine.planner`) is the one optimizer surface:
it chooses literal orders for the engine (and, via
:func:`static_literal_order`, join orders for the LOGRES→ALGRES
compiler) and re-exports the algebraic identities of
:mod:`repro.algres.optimize`.  These tests pin the ordering heuristics,
the observability wiring (events, metrics, profile, run report) and the
single-optimizer identity.
"""

from repro import Engine, EvalConfig, FactSet, Semantics, parse_source
from repro.engine.planner import Stats, build_plan, static_literal_order
from repro.storage.factset import Fact
from repro.values.complex import TupleValue


def _unit(src):
    unit = parse_source(src)
    return unit.schema(), unit.program()


def _edges(pred, pairs):
    out = FactSet()
    for a, b in pairs:
        out.add(Fact(pred, TupleValue({"a": a, "b": b})))
    return out


TC_SOURCE = """
associations
  e = (a: string, b: string).
  tc = (a: string, b: string).
rules
  tc(a X, b Y) <- e(a X, b Y).
  tc(a X, b Z) <- e(a X, b Y), tc(a Y, b Z).
"""


def test_recursive_rule_probes_index_after_scan():
    schema, program = _unit(TC_SOURCE)
    engine = Engine(schema, program, EvalConfig())
    edb = _edges("e", [(f"n{i}", f"n{i+1}") for i in range(10)])
    (plan,) = engine.explain_plan(edb)
    recursive = plan.rules[1]
    assert recursive.order == (0, 1)
    assert recursive.steps[0].access == "scan"
    assert recursive.steps[1].access.startswith("index:")
    # every positive position has a delta order for the semi-naive seeds
    assert set(recursive.delta_orders) == {0, 1}


def test_smallest_relation_scanned_first():
    src = """
associations
  big = (a: string, b: string).
  small = (a: string, b: string).
  out = (p: string, q: string).
rules
  out(p X, q Y) <- big(a X, b X2), small(a Y, b Y2).
"""
    schema, program = _unit(src)
    edb = _edges("big", [(f"b{i}", f"b{i+1}") for i in range(30)])
    for a, b in [("s0", "s1"), ("s1", "s2")]:
        edb.add(Fact("small", TupleValue({"a": a, "b": b})))
    engine = Engine(schema, program, EvalConfig())
    (plan,) = engine.explain_plan(edb)
    rule = plan.rules[0]
    assert rule.order == (1, 0)  # small before big
    assert rule.reordered


def test_builtin_pushed_to_earliest_legal_position():
    src = """
associations
  e = (a: string, b: string).
  out = (a: string, b: string).
rules
  out(a X, b Y) <- X < Y, e(a X, b Y).
"""
    schema, program = _unit(src)
    engine = Engine(schema, program, EvalConfig())
    (plan,) = engine.explain_plan(FactSet())
    rule = plan.rules[0]
    # the comparison cannot run before X and Y are bound; it follows
    # the literal immediately (earliest legal), not in textual order
    assert rule.order == (1, 0)
    assert [s.kind for s in rule.steps] == ["literal", "builtin"]


def test_negation_runs_as_soon_as_bound():
    src = """
associations
  e = (a: string, b: string).
  f = (a: string, b: string).
  out = (a: string, b: string).
rules
  out(a X, b Z) <- e(a X, b Y), e(a Y, b Z), ~f(a X, b Y).
"""
    schema, program = _unit(src)
    engine = Engine(schema, program, EvalConfig())
    (plan,) = engine.explain_plan(_edges("e", [("x", "y")]))
    rule = plan.rules[0]
    assert rule.order is not None
    steps = {step.pos: i for i, step in enumerate(rule.steps)}
    # the negation (pos 2) runs right after its variables are bound by
    # pos 0, before the second join
    assert steps[2] == 1


def test_stratified_plans_one_per_stratum():
    src = """
associations
  e = (a: string, b: string).
  r = (a: string, b: string).
  u = (a: string, b: string).
rules
  r(a X, b Y) <- e(a X, b Y).
  u(a X, b Y) <- e(a X, b Y), ~r(a X, b Y).
"""
    schema, program = _unit(src)
    engine = Engine(schema, program, EvalConfig())
    plans = engine.explain_plan(_edges("e", [("x", "y")]),
                                Semantics.STRATIFIED)
    assert len(plans) == 2
    assert [p.stratum for p in plans] == [0, 1]
    assert all(p.semantics == "stratified" for p in plans)


def test_engine_records_plans_and_run_uses_them():
    schema, program = _unit(TC_SOURCE)
    engine = Engine(schema, program, EvalConfig(compile_threshold=0))
    edb = _edges("e", [(f"n{i}", f"n{i+1}") for i in range(5)])
    out = engine.run(edb)
    assert out.count("tc") == 5 + 4 + 3 + 2 + 1
    assert len(engine.plans) == 1
    assert engine.plans[0].rules[1].order == (0, 1)
    # plan=off keeps the same answers and records nothing
    engine_off = Engine(schema, program, EvalConfig(plan=False))
    out_off = engine_off.run(edb)
    assert {f.value for f in out.facts_of("tc")} == \
        {f.value for f in out_off.facts_of("tc")}
    assert engine_off.plans == []


def test_plan_events_metrics_and_report():
    from repro.observability import (
        CollectorSink,
        Instrumentation,
        MetricsRegistry,
    )
    from repro.observability.report import build_run_report

    schema, program = _unit(TC_SOURCE)
    collector = CollectorSink()
    obs = Instrumentation(MetricsRegistry(), collector)
    engine = Engine(schema, program, EvalConfig(),
                    instrumentation=obs)
    engine.run(_edges("e", [("x", "y"), ("y", "z")]))
    events = [e for e in collector.events if e.kind == "plan"]
    assert len(events) == 1
    assert events[0].rules == 2
    assert events[0].plan["rules"][1]["order"] == [0, 1]
    snap = obs.metrics.snapshot()["counters"]
    assert snap.get("plans_built{semantics=inflationary}") == 1
    report = build_run_report(engine, obs, semantics="inflationary")
    assert report.config["plan"] is True
    assert report.config["kernel"] == "incremental"
    assert report.plans and report.plans[0]["rules"]
    roundtrip = type(report).from_dict(report.to_dict())
    assert roundtrip.plans == report.plans
    assert roundtrip.config == report.config


def test_profile_carries_plans():
    from repro.observability.profile import profile_program

    schema, program = _unit(TC_SOURCE)
    _, profile, obs = profile_program(
        schema, program, _edges("e", [("x", "y")])
    )
    obs.close()
    assert profile.plans and profile.plans[0]["semantics"] == \
        "inflationary"
    assert "plans" in profile.to_dict()
    assert "plans:" in profile.render_text()


def test_derivable_predicates_floored_not_preferred():
    schema, program = _unit(TC_SOURCE)
    engine = Engine(schema, program, EvalConfig())
    edb = _edges("e", [(f"n{i}", f"n{i+1}") for i in range(10)])
    stats = Stats(edb, idb_preds=("tc",))
    # tc is empty at planning time but floored to the largest relation,
    # so the extensional scan is preferred over the empty recursion
    assert stats.card("tc") == stats.card("e") == 10.0
    (plan,) = engine.explain_plan(edb)
    assert plan.rules[1].steps[0].text.startswith("e(")


def test_static_literal_order_propagates_bindings():
    src = """
associations
  p = (a: string, b: string).
  q = (a: string, b: string).
  out = (a: string, b: string).
rules
  out(a X, b Z) <- q(a Y, b Z), p(a X, b Y).
"""
    schema, program = _unit(src)
    body = list(program.rules[0].body)
    order = static_literal_order(body)
    # with neutral stats the textual first literal scans, then the
    # second probes the shared variable's index
    assert order == [0, 1]
    assert static_literal_order(body[:1]) == [0]


def test_single_optimizer_surface():
    """The algebraic identities exist once: the planner re-exports the
    very same functions the ALGRES package exposes."""
    import importlib

    import repro.algres as algres
    import repro.engine.planner as planner

    algres_optimize = importlib.import_module("repro.algres.optimize")
    assert planner.optimize is algres_optimize.optimize
    assert planner.optimize is algres.optimize
    assert planner.condition_fields is algres_optimize.condition_fields
    assert planner.rename_condition is algres_optimize.rename_condition


def test_build_plan_direct_fallback_contract():
    """A plan is advisory: rules the static scheduler cannot order get
    ``order=None`` plus a reason, and the engine keeps the dynamic
    scheduler (exercised via a compiled-fragment miss: patterns)."""
    src = """
associations
  e = (a: string, b: string).
  out = (a: string, b: string).
rules
  out(a X, b Y) <- e(a X, b Y).
"""
    schema, program = _unit(src)
    engine = Engine(schema, program, EvalConfig())
    plan = build_plan(engine.runtimes, FactSet(), schema)
    assert plan.rules[0].order == (0,)
    assert plan.rules[0].fallback is None
    rendered = plan.render_text()
    assert "rule 0" in rendered and "est" in rendered
