"""Tests for the source renderer, including parse∘render round-trips."""

import pytest

from repro.language.parser import parse_program, parse_source
from repro.language.pretty import (
    render_program,
    render_rule,
    render_schema,
    render_source,
    render_value,
)
from repro.values import (
    NIL,
    MultisetValue,
    Oid,
    SequenceValue,
    SetValue,
    TupleValue,
)

ROUND_TRIP_PROGRAMS = [
    'p(x 1).',
    'p(x X) <- q(x X).',
    'p(x X) <- q(x X), ~r(x X).',
    '~p(T) <- p(T), kill(T).',
    '<- married(p X), divorced(p X).',
    'p(x Z) <- q(x Y), Z = Y * 2 + 1.',
    'p(s X) <- X = {}, q(s {1, 2}).',
    'p(x X) <- person(self S, name X).',
    'p(x X) <- person(name X, W, self Z), q(x X).',
    'p(x X) <- school(dean(self X)).',
    'p(x X) <- q(x X), union(A, B, C), member(A, C), count(C, N),'
    ' N > 0, q(x A), q(s B), q(s C).',
    'member(X, desc(Y)) <- parent(par Y, chil X).',
    'anc(a X, d Y) <- parent(par X), Y = desc(X).',
]


class TestProgramRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_PROGRAMS)
    def test_parse_render_parse_fixpoint(self, source):
        program = parse_program(source)
        rendered = render_program(program)
        reparsed = parse_program(rendered)
        assert reparsed.rules == program.rules

    def test_goal_round_trip(self):
        unit = parse_source("rules\n p(x 1).\ngoal\n ?- p(x X), X > 0.")
        rendered = render_program(unit.program())
        reparsed = parse_program(rendered)
        assert reparsed.goal == unit.goal


class TestSchemaRoundTrip:
    SCHEMA = """
    domains
      name = string.
      score = (home: integer, guest: integer).
    classes
      player = (name: name, roles: {integer}).
      team = (tname: name, base: <player>, subs: {player}).
      captain = (player: player, badge: string).
      captain isa player.
    associations
      game = (h: team, g: team, sc: score).
    functions
      desc: (name) -> {name}.
      junior -> {player}.
    """

    def test_schema_round_trip(self):
        schema = parse_source(self.SCHEMA).schema()
        rendered = render_schema(schema)
        reparsed = parse_source(rendered).schema()
        assert reparsed.equations == schema.equations
        assert reparsed.isa_declarations == schema.isa_declarations
        assert reparsed.functions == schema.functions

    def test_render_source_combines_sections(self):
        unit = parse_source(self.SCHEMA + """
        rules
          game(h X, g Y, sc S) <- game(h Y, g X, sc S).
        """)
        text = render_source(unit.schema(), unit.program())
        reparsed = parse_source(text)
        assert reparsed.schema().equations == unit.schema().equations
        assert reparsed.rules == unit.rules

    def test_hidden_function_predicates_not_rendered(self):
        from repro.language.analysis import schema_with_functions

        schema = schema_with_functions(parse_source(self.SCHEMA).schema())
        rendered = render_schema(schema)
        assert "__fn_" not in rendered


class TestValueRendering:
    @pytest.mark.parametrize("value,expected", [
        (True, "true"),
        ("a\"b", '"a\\"b"'),
        (SetValue([2, 1]), "{1, 2}"),
        (MultisetValue([1, 1]), "[1, 1]"),
        (SequenceValue([2, 1]), "<2, 1>"),
        (TupleValue(a=1), "(a 1)"),
        (NIL, "nil"),
    ])
    def test_rendering(self, value, expected):
        assert render_value(value) == expected

    def test_oids_are_not_renderable(self):
        with pytest.raises(ValueError, match="not visible"):
            render_value(Oid(3))


class TestRuleRendering:
    def test_denial(self):
        rule = parse_program("<- p(x X), q(x X).").rules[0]
        assert render_rule(rule).startswith("<- ")

    def test_function_head(self):
        rule = parse_program(
            "member(X, desc(Y)) <- parent(par Y, chil X)."
        ).rules[0]
        assert render_rule(rule).startswith("member(X, desc(Y))")
