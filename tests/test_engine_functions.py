"""Engine tests: data functions (Section 2.1, Examples 2.2 and 3.2)."""

from repro import Engine, FactSet, Oid, Semantics, SetValue, TupleValue
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def parents(*pairs):
    facts = FactSet()
    for p, c in pairs:
        facts.add_association("parent", TupleValue(par=p, chil=c))
    return facts


class TestDescendants:
    SOURCE = """
    associations
      parent = (par: string, chil: string).
      ancestor = (anc: string, des: {string}).
    functions
      desc: string -> {string}.
      member(X, desc(Y)) <- parent(par Y, chil X).
      member(X, desc(Y)) <- parent(par Y, chil Z), member(X, T),
                            T = desc(Z).
    rules
      ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
    """

    def test_example_3_2_nested_descendants(self):
        schema, program = build(self.SOURCE)
        edb = parents(("a", "b"), ("b", "c"), ("b", "d"))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        rows = {f.value["anc"]: f.value["des"]
                for f in out.facts_of("ancestor")}
        assert rows == {
            "a": SetValue(["b", "c", "d"]),
            "b": SetValue(["c", "d"]),
        }

    def test_function_read_of_missing_args_is_empty_set(self):
        schema, program = build(self.SOURCE)
        edb = parents(("a", "b"))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        rows = {f.value["anc"]: f.value["des"]
                for f in out.facts_of("ancestor")}
        assert rows == {"a": SetValue(["b"])}

    def test_inflationary_semantics_warns_by_growing_sets(self):
        """Without stratification the nesting rule runs while desc is
        still growing: intermediate (smaller) sets survive in the
        inflationary instance.  This is the anomaly Section 3.1's
        stratification discussion addresses."""
        schema, program = build(self.SOURCE)
        edb = parents(("a", "b"), ("b", "c"))
        out = Engine(schema, program).run(edb, Semantics.INFLATIONARY)
        sets_for_a = [f.value["des"] for f in out.facts_of("ancestor")
                      if f.value["anc"] == "a"]
        assert SetValue(["b", "c"]) in sets_for_a
        assert len(sets_for_a) >= 2  # the partial {b} also survives


class TestChildrenWithComplexElements:
    def test_example_2_2_children_function(self):
        """CHILDREN: person -> {(person, bdate)} — set of tuples."""
        schema, program = build("""
        associations
          parent = (father: string, child: string, bdate: string).
          fam = (who: string, kids: {(person: string, bdate: string)}).
        functions
          children: string -> {(person: string, bdate: string)}.
          member(T, children(X)) <- parent(father X, child Y, bdate Z),
                                    T = (person Y, bdate Z).
        rules
          fam(who X, kids K) <- parent(father X), K = children(X).
        """)
        edb = FactSet()
        edb.add_association("parent", TupleValue(
            father="abe", child="homer", bdate="1955"))
        edb.add_association("parent", TupleValue(
            father="abe", child="herb", bdate="1953"))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        (row,) = out.facts_of("fam")
        assert row.value["kids"] == SetValue([
            TupleValue(person="homer", bdate="1955"),
            TupleValue(person="herb", bdate="1953"),
        ])


class TestNullaryFunctions:
    def test_junior_names_a_subset_of_a_class(self):
        """Example 2.2's JUNIOR -> {person} nullary function."""
        schema, program = build("""
        classes
          person = (name: string, age: integer).
        associations
          stats = (n: integer).
        functions
          junior -> {person}.
          member(X, junior()) <- person(self X, age A), A <= 18.
        rules
          stats(n N) <- person(self P), S = junior(), count(S, N).
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="kid", age=12))
        edb.add_object("person", Oid(2), TupleValue(name="adult", age=40))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        values = {f.value["n"] for f in out.facts_of("stats")}
        assert values == {1}

    def test_bare_name_resolves_to_nullary_function(self):
        # 'junior' without parentheses also denotes the function
        schema, program = build("""
        classes
          person = (name: string, age: integer).
        associations
          youth = (name: string).
        functions
          junior -> {person}.
          member(X, junior) <- person(self X, age A), A <= 18.
        rules
          youth(name N) <- member(X, junior), person(self X, name N).
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="kid", age=12))
        edb.add_object("person", Oid(2), TupleValue(name="old", age=90))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        assert [f.value["name"] for f in out.facts_of("youth")] == ["kid"]
