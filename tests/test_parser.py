"""Unit tests for the LOGRES source parser."""

import pytest

from repro.errors import ParseError
from repro.language.ast import (
    ArithExpr,
    BuiltinLiteral,
    Constant,
    FunctionApp,
    FunctionHead,
    Literal,
    Pattern,
    Var,
)
from repro.language.parser import parse_program, parse_schema_source, parse_source
from repro.types import INTEGER, STRING, NamedType, SequenceType, SetType
from repro.types.descriptors import MultisetType
from repro.types.equations import Kind
from repro.values import NIL, SetValue


class TestSchemaSections:
    def test_football_schema_parses(self):
        # Example 2.1, regularized
        schema = parse_schema_source("""
        domains
          name = string.
          role = integer.
          score = (home: integer, guest: integer).
        classes
          player = (name, roles: {role}).
          team = (team_name: name, base_players: <player>,
                  substitutes: {player}).
        associations
          game = (h_team: team, g_team: team, date: string, score).
        """)
        assert schema.is_domain("score")
        player = schema.effective_type("player")
        assert player.field("roles").type == SetType(NamedType("role"))
        team = schema.effective_type("team")
        assert team.field("base_players").type == \
            SequenceType(NamedType("player"))
        game = schema.effective_type("game")
        assert game.field("score").type == NamedType("score")

    def test_unlabeled_components_take_type_name(self):
        schema = parse_schema_source("""
        domains
          date = string.
        associations
          a = (date, n: integer).
        """)
        assert schema.effective_type("a").has_label("date")

    def test_duplicate_unlabeled_components_autonumber(self):
        # the paper's SCORE = (INTEGER, INTEGER)
        schema = parse_schema_source("""
        domains
          score = (integer, integer).
        """)
        rhs = schema.rhs_of("score")
        assert rhs.labels == ("integer", "integer_2")

    def test_multiset_constructor(self):
        schema = parse_schema_source("""
        associations
          bag = (items: [integer]).
        """)
        assert schema.effective_type("bag").field("items").type == \
            MultisetType(INTEGER)

    def test_isa_statement_in_classes_section(self):
        schema = parse_schema_source("""
        classes
          person = (name: string).
          student = (person, school: string).
          student isa person.
        """)
        assert schema.is_subclass("student", "person")

    def test_labeled_isa_statement(self):
        schema = parse_schema_source("""
        classes
          person = (name: string).
          empl = (emp: person, manager: person).
          empl emp isa person.
        """)
        assert schema.is_subclass("empl", "person")
        assert "manager" in schema.effective_type("empl").labels

    def test_section_keyword_and_colon_accepted(self):
        schema = parse_schema_source("""
        domains section:
          name = string.
        """)
        assert schema.is_domain("name")

    def test_missing_section_header_rejected(self):
        with pytest.raises(ParseError, match="section header"):
            parse_source("name = string.")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_schema_source("""
            associations
              a = (x: integer, x: string).
            """)


class TestFunctionDeclarations:
    def test_unary_function(self):
        unit = parse_source("""
        domains
          name = string.
        functions
          desc: name -> {name}.
        """)
        decl = unit.functions[0]
        assert decl.name == "desc"
        assert decl.arity == 1
        assert decl.element_type == NamedType("name")

    def test_paper_style_without_colon(self):
        unit = parse_source("""
        classes
          person = (name: string).
        functions
          desc person -> {person}.
        """)
        assert unit.functions[0].arg_types == (NamedType("person"),)

    def test_nullary_function(self):
        unit = parse_source("""
        classes
          person = (name: string).
        functions
          junior -> {person}.
        """)
        assert unit.functions[0].arity == 0

    def test_multi_argument_function(self):
        unit = parse_source("""
        functions
          pairs: (integer, string) -> {integer}.
        """)
        assert unit.functions[0].arg_types == (INTEGER, STRING)

    def test_non_set_result_rejected(self):
        with pytest.raises(ParseError, match="set type"):
            parse_source("functions\n  f: integer -> integer.")

    def test_member_rules_live_in_functions_section(self):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
        functions
          desc: string -> {string}.
          member(X, desc(Y)) <- parent(par Y, chil X).
        """)
        assert len(unit.rules) == 1
        assert isinstance(unit.rules[0].head, FunctionHead)


class TestRules:
    def test_fact_without_arrow(self):
        program = parse_program('p(n "a").')
        assert program.rules[0].is_fact

    def test_fact_with_empty_body(self):
        program = parse_program('p(n "a") <- .')
        assert program.rules[0].is_fact

    def test_denial(self):
        program = parse_program("<- married(p X), divorced(p X).")
        assert program.rules[0].is_denial

    def test_negated_head_is_deletion(self):
        program = parse_program("~p(x X) <- q(x X).")
        assert program.rules[0].head.negated

    def test_self_argument(self):
        program = parse_program("p(x X) <- person(self S, name X).")
        body = program.rules[0].body[0]
        assert body.args.self_term == Var("S")

    def test_tuple_variable_with_labels(self):
        program = parse_program("p(x X) <- person(name X, Y, self Z).")
        args = program.rules[0].body[0].args
        assert args.tuple_var == Var("Y")
        assert args.self_term == Var("Z")

    def test_positional_arguments_kept_for_resolution(self):
        program = parse_program("p(x X) <- advises(X1, Y1).")
        args = program.rules[0].body[0].args
        assert args.positional == (Var("X1"), Var("Y1"))

    def test_nested_pattern(self):
        program = parse_program("p(x X) <- school(dean(self X)).")
        label, term = program.rules[0].body[0].args.labeled[0]
        assert label == "dean"
        assert isinstance(term, Pattern)
        assert term.args.self_term == Var("X")

    def test_negation_tilde_and_not(self):
        program = parse_program(
            "p(x X) <- q(x X), ~r(x X), not s(x X)."
        )
        negs = [l.negated for l in program.rules[0].body]
        assert negs == [False, True, True]

    def test_comparisons(self):
        program = parse_program("p(x X) <- q(x X), X <= 18, X != 5.")
        ops = [l.name for l in program.rules[0].body[1:]]
        assert ops == ["<=", "!="]

    def test_arithmetic(self):
        program = parse_program("p(x Z) <- q(x Y), Z = Y * 2 + 1.")
        eq = program.rules[0].body[1]
        assert isinstance(eq.args[1], ArithExpr)
        assert eq.args[1].op == "+"

    def test_collection_constants(self):
        program = parse_program(
            "p(x X) <- X = {}, q(s {1, 2}), r(m [1, 1]), t(q <1, 2>)."
        )
        empty = program.rules[0].body[0].args[1]
        assert empty == Constant(SetValue())

    def test_nil_constant(self):
        program = parse_program("p(x X) <- school(dean nil, name X).")
        label, term = program.rules[0].body[0].args.labeled[0]
        assert term == Constant(NIL)

    def test_anonymous_variables_are_fresh(self):
        program = parse_program("p(x X) <- q(a _, b _), r(x X).")
        q = program.rules[0].body[0]
        v1, v2 = (t for _, t in q.args.labeled)
        assert v1 != v2

    def test_function_application_in_equality(self):
        program = parse_program("a(anc X, des Y) <- p(par X), Y = desc(X).")
        eq = program.rules[0].body[1]
        assert isinstance(eq.args[1], FunctionApp)

    def test_builtin_shadowed_by_user_predicate_arity(self):
        program = parse_program("p(x X) <- mod(Y), q(x X).")
        assert isinstance(program.rules[0].body[0], Literal)

    def test_builtin_with_matching_arity_stays_builtin(self):
        program = parse_program("p(x X) <- q(x X), mod(X, 2, Z), Z = 0.")
        assert isinstance(program.rules[0].body[1], BuiltinLiteral)

    def test_unquoted_constant_gives_helpful_error(self):
        with pytest.raises(ParseError, match="double-quoted"):
            parse_program("p(smith) <- q(smith).")

    def test_labeled_unquoted_name_becomes_function_app(self):
        # 'junior' could be a nullary data function; the analysis phase
        # rejects it if no such function is declared
        program = parse_program("p(x X) <- member(X, junior), q(x X).")
        blit = program.rules[0].body[0]
        assert isinstance(blit.args[1], FunctionApp)

    def test_goal_section(self):
        unit = parse_source("""
        rules
          p(x 1).
        goal
          ?- p(x X), X > 0.
        """)
        assert unit.goal is not None
        assert len(unit.goal.literals) == 2

    def test_two_goals_rejected(self):
        with pytest.raises(ParseError, match="multiple goals"):
            parse_source("goal\n ?- p(x X).\ngoal\n ?- q(x X).")

    def test_member_head_requires_function_application(self):
        with pytest.raises(ParseError, match="data-function"):
            parse_program("member(X, Y) <- q(x X, y Y).")


class TestRoundtripReprs:
    def test_rule_repr_is_readable(self):
        program = parse_program("anc(a X, d Z) <- p(par X), anc(a X, d Z).")
        text = repr(program.rules[0])
        assert "anc(" in text and "<-" in text
