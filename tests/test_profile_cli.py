"""Tests for ``repro profile`` and the run command's observability flags.

Pins the acceptance invariant of the profiling subsystem: the per-rule
``fires`` column sums to the tracer's derivation count (every fire event
is one derivation record).
"""

import json

import pytest

from repro.cli import main
from repro.engine.trace import Tracer
from repro.language.ast import Program
from repro.language.parser import parse_source
from repro.observability import read_jsonl
from repro.observability.profile import profile_program
from repro.storage.factset import FactSet

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.logres"
    path.write_text(TC_SOURCE)
    return str(path)


class TestProfileProgram:
    def test_fires_sum_to_tracer_derivations(self):
        unit = parse_source(TC_SOURCE)
        tracer = Tracer()
        _, profile, _ = profile_program(
            unit.schema(), Program(tuple(unit.rules)), FactSet(),
            sink=tracer,
        )
        fires = sum(row.fires for row in profile.rules)
        assert fires == len(tracer.derivations) == 5

    def test_profile_is_ranked_and_complete(self):
        unit = parse_source(TC_SOURCE)
        _, profile, _ = profile_program(
            unit.schema(), Program(tuple(unit.rules)), FactSet(),
        )
        assert len(profile.rules) == 4  # every rule gets a row
        times = [row.time_cum for row in profile.rules]
        assert times == sorted(times, reverse=True)
        assert profile.facts == 5
        assert profile.iterations >= 2
        assert len(profile.iteration_times) == profile.iterations

    def test_profile_serializes(self):
        unit = parse_source(TC_SOURCE)
        _, profile, _ = profile_program(
            unit.schema(), Program(tuple(unit.rules)), FactSet(),
        )
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["facts"] == 5
        assert {row["index"] for row in payload["rules"]} == {0, 1, 2, 3}
        assert "counters" in payload["metrics"]


class TestProfileCommand:
    def test_text_output(self, tc_file, capsys):
        assert main(["profile", tc_file]) == 0
        out = capsys.readouterr().out
        assert "per-rule (ranked by cumulative time):" in out
        assert "anc(a X, d Z)" in out
        assert "phases:" in out

    def test_json_output_schema(self, tc_file, capsys):
        assert main(["profile", tc_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("file", "total_ms", "iterations", "facts", "rules",
                    "strata", "iteration_times_ms", "phases", "metrics"):
            assert key in payload
        assert payload["file"] == tc_file
        assert sum(r["fires"] for r in payload["rules"]) == 5

    def test_trace_out(self, tc_file, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        assert main(["profile", tc_file, "--trace-out", str(out)]) == 0
        with out.open() as f:
            events = read_jsonl(f)
        assert sum(1 for e in events if e.kind == "rule-fire") == 5

    def test_missing_file(self, capsys):
        assert main(["profile", "/nonexistent.logres"]) == 2


class TestRunObservabilityFlags:
    def test_trace_and_metrics_out(self, tc_file, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "run", tc_file,
            "--trace-out", str(events_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        with events_path.open() as f:
            events = read_jsonl(f)
        assert events[0].kind == "stream-header"
        assert events[0].schema_version == 1
        assert events[0].source_file == tc_file
        assert events[1].kind == "run-start"
        assert events[-1].kind == "run-end"
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema_version"] == 1
        assert "metrics" in snapshot and "phases" in snapshot
        assert snapshot["metrics"]["counters"]  # non-empty

    def test_metrics_out_alone(self, tc_file, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "run", tc_file, "--metrics-out", str(metrics_path),
        ]) == 0
        snapshot = json.loads(metrics_path.read_text())
        fires = sum(
            v for k, v in snapshot["metrics"]["counters"].items()
            if k.startswith("rule_fires")
        )
        assert fires == 5

    def test_plain_run_unchanged(self, tc_file, capsys):
        assert main(["run", tc_file]) == 0
        assert "anc (3):" in capsys.readouterr().out
