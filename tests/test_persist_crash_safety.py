"""Crash-safe persistence: atomic writes, checksums, corruption handling."""

import json
import os

import pytest

from repro import Database
from repro.cli import main
from repro.errors import StorageError
from repro.storage.persist import (
    FORMAT_VERSION,
    atomic_write_text,
    dumps_state,
    load_state,
    loads_state,
    state_checksum,
)
from repro.testing import FAULTS, InjectedFault

SOURCE = """
classes
  person = (name: string, age: integer).
associations
  likes = (who: person, what: string).
  adult = (name: string).
rules
  adult(name N) <- person(name N, age A), A >= 18.
"""


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


@pytest.fixture
def db():
    database = Database.from_source(SOURCE)
    ada = database.insert("person", name="ada", age=36)
    database.insert("person", name="kid", age=7)
    database.insert("likes", who=ada, what="proofs")
    return database


def roundtrip(database):
    return Database.loads(database.dumps())


class TestFormatV2:
    def test_payload_carries_version_and_checksum(self, db):
        payload = json.loads(db.dumps())
        assert payload["version"] == FORMAT_VERSION
        body = {k: payload[k] for k in ("schema", "edb", "program")}
        assert payload["checksum"] == state_checksum(body)

    def test_roundtrip_preserves_state(self, db):
        again = roundtrip(db)
        assert again.edb.count() == db.edb.count()
        assert len(again.rules) == len(db.rules)
        assert again.dumps() == db.dumps()

    def test_fresh_oids_do_not_collide_after_reload(self, db):
        again = roundtrip(db)
        taken = {f.oid for f in again.edb.facts_of("person")}
        new = again.insert("person", name="new", age=20)
        assert new not in taken

    def test_legacy_v1_payload_loads_without_checksum(self, db):
        payload = json.loads(db.dumps())
        del payload["checksum"]
        payload["version"] = 1
        schema, edb, program = loads_state(json.dumps(payload))
        assert edb.count() == db.edb.count()


class TestCorruptionDetection:
    def test_truncated_payload(self, db):
        text = db.dumps()
        with pytest.raises(StorageError, match="corrupt state payload"):
            loads_state(text[: len(text) // 2])

    def test_not_an_object(self):
        with pytest.raises(StorageError, match="not a JSON object"):
            loads_state("[1, 2, 3]")

    def test_flipped_checksum(self, db):
        payload = json.loads(db.dumps())
        payload["checksum"] = "0" * 64
        with pytest.raises(StorageError, match="checksum mismatch"):
            loads_state(json.dumps(payload))

    def test_tampered_body_fails_the_checksum(self, db):
        payload = json.loads(db.dumps())
        payload["edb"] = []
        with pytest.raises(StorageError, match="checksum mismatch"):
            loads_state(json.dumps(payload))

    def test_unknown_version(self, db):
        payload = json.loads(db.dumps())
        payload["version"] = 99
        with pytest.raises(StorageError, match="version"):
            loads_state(json.dumps(payload))

    def test_missing_section(self, db):
        payload = json.loads(db.dumps())
        del payload["program"]
        with pytest.raises(StorageError, match="missing program"):
            loads_state(json.dumps(payload))


class TestAtomicWrite:
    def test_write_then_read(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"

    def test_failed_write_keeps_previous_file(self, tmp_path):
        target = tmp_path / "db.json"
        target.write_text("previous contents")
        with FAULTS.inject("storage.fsync", "io-error"):
            with pytest.raises(OSError):
                atomic_write_text(target, "new contents")
        assert target.read_text() == "previous contents"

    def test_failed_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "db.json"
        for point in ("storage.write", "storage.fsync"):
            with FAULTS.inject(point, "io-error"):
                with pytest.raises(OSError):
                    atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == []

    def test_database_save_is_atomic(self, tmp_path, db):
        target = tmp_path / "db.json"
        db.save(target)
        before = target.read_text()
        db.insert("person", name="eve", age=44)
        with FAULTS.inject("storage.fsync", "io-error"):
            with pytest.raises(OSError):
                db.save(target)
        # the old on-disk database survives the failed save, loadable
        assert target.read_text() == before
        assert Database.load(target).edb.count() == 3
        db.save(target)
        assert Database.load(target).edb.count() == 4

    def test_load_state_fires_the_read_fault_point(self, tmp_path, db):
        target = tmp_path / "db.json"
        db.save(target)
        with FAULTS.inject("storage.read", "error"):
            with pytest.raises(InjectedFault):
                load_state(target)
        schema, edb, program = load_state(target)
        assert edb.count() == 3


class TestCliCorruptState:
    def write_program(self, tmp_path):
        src = tmp_path / "prog.lg"
        src.write_text("""
        associations
          p = (x: string).
        rules
          p(x "a").
        """)
        return src

    def write_state(self, tmp_path, db):
        state = tmp_path / "state.json"
        db.save(state)
        return state

    def test_intact_state_loads(self, tmp_path, db, capsys):
        src = self.write_program(tmp_path)
        state = self.write_state(tmp_path, db)
        assert main(["run", str(src), "--state", str(state)]) == 0

    @pytest.mark.parametrize("corruption", ["truncate", "checksum",
                                            "version"])
    def test_corrupt_state_exits_2(self, tmp_path, db, capsys, corruption):
        src = self.write_program(tmp_path)
        state = self.write_state(tmp_path, db)
        text = state.read_text()
        if corruption == "truncate":
            state.write_text(text[: len(text) // 2])
        elif corruption == "checksum":
            payload = json.loads(text)
            payload["checksum"] = "0" * 64
            state.write_text(json.dumps(payload))
        else:
            payload = json.loads(text)
            payload["version"] = 99
            state.write_text(json.dumps(payload))
        on_disk = state.read_text()
        status = main(["run", str(src), "--state", str(state)])
        assert status == 2
        err = capsys.readouterr().err
        assert "error[LG901]" in err
        assert "Traceback" not in err
        # loading never mutates the on-disk file, corrupt or not
        assert state.read_text() == on_disk
