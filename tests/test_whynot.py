"""Tests for why-not provenance (``repro explain --why-not``).

Pins the tentpole acceptance criteria: for an absent fact, each
candidate rule reports its first failing body literal with a source
span, and the report distinguishes "never derived" from "derived then
deleted" under all three semantics.
"""

import pytest

from repro import Engine, FactSet, Semantics, TupleValue
from repro.engine.trace import Tracer
from repro.language.parser import parse_source
from repro.observability.whynot import (
    BODY_SATISFIABLE,
    BODY_UNSATISFIABLE,
    DERIVED_THEN_DELETED,
    HEAD_MISMATCH,
    HOLDS,
    NEVER_DERIVED,
    NO_CANDIDATE_RULE,
    explain_absence,
)
from repro.storage import Fact

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""

# derives q then deletes it in the same step: reaches a fixpoint in one
# iteration under every semantics, so it is usable for all three
DELETE_SOURCE = """
associations
  p = (v: integer).
  q = (v: integer).
rules
  q(v X) <- p(v X).
  ~q(v X) <- p(v X).
"""


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def tc_run():
    schema, program = build(TC_SOURCE)
    edb = FactSet()
    for p, c in [("a", "b"), ("b", "c")]:
        edb.add_association("parent", TupleValue(par=p, chil=c))
    tracer = Tracer()
    engine = Engine(schema, program)
    instance = engine.run(edb, tracer=tracer)
    return engine, instance, tracer


class TestNeverDerived:
    def test_reports_first_failing_literal_per_rule(self):
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance, Fact("anc", TupleValue(a="c", d="a")),
            tracer=tracer, source_file="tc.lg",
        )
        assert report.status == NEVER_DERIVED
        assert len(report.candidates) == 2  # both anc rules considered
        for miss in report.candidates:
            assert miss.status == BODY_UNSATISFIABLE
            assert miss.failed_literal is not None
            assert "parent" in miss.failed_literal
            assert miss.failed_location.startswith("tc.lg:")
            # file:line:column
            assert len(miss.failed_location.split(":")) == 3

    def test_head_bindings_are_live_in_near_miss(self):
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance, Fact("anc", TupleValue(a="c", d="a")),
            tracer=tracer,
        )
        bindings = report.candidates[0].bindings
        assert bindings.get("X") == '"c"'
        assert '"a"' in bindings.values()

    def test_best_near_miss_ranked_first(self):
        # anc(a "a", d "zz"): the recursive rule matches parent(a, b)
        # and then fails on anc(b, zz) — a deeper near miss than the
        # base rule's immediate failure on parent(a, zz)
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance, Fact("anc", TupleValue(a="a", d="zz")),
            tracer=tracer,
        )
        assert report.status == NEVER_DERIVED
        best = report.candidates[0]
        assert best.matched == 1 and best.total == 2
        assert "anc" in best.failed_literal

    def test_holds_when_fact_present(self):
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance, Fact("anc", TupleValue(a="a", d="c")),
            tracer=tracer,
        )
        assert report.status == HOLDS

    def test_no_candidate_rule_for_edb_predicate(self):
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance,
            Fact("parent", TupleValue(par="z", chil="z")),
            tracer=tracer,
        )
        assert report.status == NO_CANDIDATE_RULE
        assert report.candidates == []

    def test_head_mismatch_on_constant_head(self):
        schema, program = build("""
        associations
          flag = (name: string).
        rules
          flag(name "on") <- flag(name "seed").
        """)
        engine = Engine(schema, program)
        instance = engine.run(FactSet())
        report = explain_absence(
            engine, instance, Fact("flag", TupleValue(name="off")),
        )
        assert len(report.candidates) == 1
        assert report.candidates[0].status == HEAD_MISMATCH

    def test_json_payload_is_versioned(self):
        engine, instance, tracer = tc_run()
        report = explain_absence(
            engine, instance, Fact("anc", TupleValue(a="c", d="a")),
            tracer=tracer,
        )
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["kind"] == "why-not"
        assert payload["status"] == NEVER_DERIVED
        assert payload["candidates"][0]["failed_literal"]


class TestDerivedThenDeleted:
    @pytest.mark.parametrize("semantics", list(Semantics))
    def test_deletion_provenance_all_semantics(self, semantics):
        schema, program = build(DELETE_SOURCE)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        tracer = Tracer()
        engine = Engine(schema, program)
        instance = engine.run(edb, semantics, tracer=tracer)
        fact = Fact("q", TupleValue(v=1))
        assert fact not in instance
        report = explain_absence(
            engine, instance, fact, tracer=tracer,
            semantics=semantics.value,
        )
        assert report.status == DERIVED_THEN_DELETED
        assert len(report.derivations) == 1
        assert len(report.deletions) == 1
        assert report.deletions[0].rule.startswith("~q")
        # the producing rule still matches the final instance
        (candidate,) = report.candidates
        assert candidate.status == BODY_SATISFIABLE

    def test_without_tracer_falls_back_to_never_derived(self):
        schema, program = build(DELETE_SOURCE)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        engine = Engine(schema, program)
        instance = engine.run(edb)
        report = explain_absence(
            engine, instance, Fact("q", TupleValue(v=1)),
        )
        assert report.status == NEVER_DERIVED  # no Δ⁻ records available
        assert report.deletions == []

    def test_render_text_mentions_both_steps(self):
        schema, program = build(DELETE_SOURCE)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        tracer = Tracer()
        engine = Engine(schema, program)
        instance = engine.run(edb, tracer=tracer)
        report = explain_absence(
            engine, instance, Fact("q", TupleValue(v=1)), tracer=tracer,
        )
        text = report.render_text()
        assert "derived then deleted" in text
        assert "derived at step" in text
        assert "deleted at step" in text


class TestTracerDeletionQueries:
    def test_deletions_of_matches_leniently(self):
        schema, program = build(DELETE_SOURCE)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        edb.add_association("p", TupleValue(v=2))
        tracer = Tracer()
        Engine(schema, program).run(edb, tracer=tracer)
        assert len(tracer.deletions()) == 2
        hits = tracer.deletions_of(Fact("q", TupleValue(v=1)))
        assert len(hits) == 1
        assert hits[0].fact.value["v"] == 1

    def test_derivations_of_excludes_deletions(self):
        schema, program = build(DELETE_SOURCE)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        tracer = Tracer()
        Engine(schema, program).run(edb, tracer=tracer)
        fact = Fact("q", TupleValue(v=1))
        assert all(not d.deleted for d in tracer.derivations_of(fact))
        assert all(d.deleted for d in tracer.deletions_of(fact))

    def test_class_fact_deletion_matched_by_oid(self):
        # class facts match deletion records by oid even when the
        # queried o-value names no attributes
        from repro.values.oids import Oid

        schema, program = build(DELETE_SOURCE)
        rule = program.rules[0]
        tracer = Tracer()
        tracer.begin_iteration(1)
        tracer.record(Fact("c", TupleValue(tag="x"), oid=Oid(5)),
                      rule, {}, deleted=True)
        assert len(tracer.deletions_of(
            Fact("c", TupleValue(), oid=Oid(5)))) == 1
        assert tracer.deletions_of(
            Fact("c", TupleValue(), oid=Oid(6))) == []


class TestExplainWhyNotCLI:
    @pytest.fixture
    def tc_file(self, tmp_path):
        path = tmp_path / "tc.lg"
        path.write_text("""
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
""")
        return str(path)

    def test_absent_fact_text(self, tc_file, capsys):
        from repro.cli import main

        code = main(["explain", tc_file, 'anc(a="c", d="a")',
                     "--why-not"])
        assert code == 1
        out = capsys.readouterr().out
        assert "never derived" in out
        assert "first failing literal" in out
        assert f"{tc_file}:" in out  # source spans resolved to the file

    def test_absent_fact_json(self, tc_file, capsys):
        import json

        from repro.cli import main

        code = main(["explain", tc_file, 'anc(a="c", d="a")',
                     "--why-not", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "why-not"
        assert payload["schema_version"] == 1
        assert payload["status"] == "never-derived"

    def test_present_fact_exits_zero(self, tc_file, capsys):
        from repro.cli import main

        assert main(["explain", tc_file, 'anc(a="a", d="c")',
                     "--why-not"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_deleted_fact_reported(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "del.lg"
        path.write_text("""
associations
  p = (v: integer).
  q = (v: integer).
rules
  p(v 1).
  q(v X) <- p(v X).
  ~q(v X) <- p(v X).
""")
        for semantics in ("inflationary", "stratified",
                          "noninflationary"):
            code = main(["explain", str(path), "q(v=1)", "--why-not",
                         "--semantics", semantics])
            assert code == 1
            out = capsys.readouterr().out
            assert "derived then deleted" in out
