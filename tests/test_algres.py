"""Tests for the ALGRES extended relational algebra."""

import pytest

from repro.algres import (
    Aggregate,
    And,
    Catalog,
    Closure,
    Comparison,
    Constant_,
    Difference,
    Distinct,
    Extend,
    Field,
    Intersection,
    Join,
    Nest,
    Not,
    Or,
    Product,
    Project,
    Relation,
    Rename,
    Scan,
    Select,
    Union,
    Unnest,
    evaluate,
)
from repro.errors import AlgebraError, NonTerminationError
from repro.types.descriptors import INTEGER, STRING
from repro.values import SetValue, TupleValue


@pytest.fixture
def catalog():
    people = Relation.build(
        "people",
        [("pname", STRING), ("age", INTEGER), ("city", STRING)],
        [
            dict(pname="ann", age=30, city="milan"),
            dict(pname="bob", age=20, city="rome"),
            dict(pname="cyn", age=40, city="milan"),
        ],
    )
    visits = Relation.build(
        "visits",
        [("pname", STRING), ("place", STRING)],
        [
            dict(pname="ann", place="duomo"),
            dict(pname="ann", place="navigli"),
            dict(pname="bob", place="forum"),
        ],
    )
    return Catalog({"people": people, "visits": visits})


def rows(rel):
    return sorted(tuple(sorted(r.items)) for r in rel)


class TestRelation:
    def test_rejects_non_tuple_rows(self):
        schema = Relation.build("r", [("x", INTEGER)]).schema
        with pytest.raises(AlgebraError, match="tuple value"):
            Relation("r", schema, [42])

    def test_rejects_unknown_attributes(self):
        base = Relation.build("r", [("x", INTEGER)])
        with pytest.raises(AlgebraError, match="unknown attributes"):
            base.with_rows([TupleValue(x=1, ghost=2)])

    def test_attribute_type_lookup(self, catalog):
        people = catalog.get("people")
        assert people.attribute_type("age") == INTEGER
        with pytest.raises(AlgebraError):
            people.attribute_type("ghost")

    def test_rows_deduplicate(self):
        rel = Relation.build("r", [("x", INTEGER)],
                             [dict(x=1), dict(x=1)])
        assert len(rel) == 1


class TestSelectProject:
    def test_select_comparison(self, catalog):
        out = evaluate(
            Select(Scan("people"),
                   Comparison(Field("age"), ">", Constant_(25))),
            catalog,
        )
        assert {r["pname"] for r in out} == {"ann", "cyn"}

    def test_boolean_connectives(self, catalog):
        cond = And(
            Comparison(Field("city"), "=", Constant_("milan")),
            Or(
                Comparison(Field("age"), "<", Constant_(35)),
                Not(Comparison(Field("pname"), "=", Constant_("cyn"))),
            ),
        )
        out = evaluate(Select(Scan("people"), cond), catalog)
        assert {r["pname"] for r in out} == {"ann"}

    def test_project(self, catalog):
        out = evaluate(Project(Scan("people"), "city"), catalog)
        assert {r["city"] for r in out} == {"milan", "rome"}
        assert out.labels == ("city",)

    def test_project_unknown_label_raises(self, catalog):
        with pytest.raises(AlgebraError):
            evaluate(Project(Scan("people"), "ghost"), catalog)

    def test_field_path_into_nested_tuple(self):
        from repro.types.descriptors import TupleType

        score_type = TupleType((("home", INTEGER), ("guest", INTEGER)))
        games = Relation(
            "games",
            TupleType((("score", score_type),)),
            [TupleValue(score=TupleValue(home=3, guest=1))],
        )
        catalog = Catalog({"games": games})
        out = evaluate(
            Select(Scan("games"),
                   Comparison(Field("score", "home"), ">",
                              Field("score", "guest"))),
            catalog,
        )
        assert len(out) == 1


class TestRename:
    def test_rename(self, catalog):
        out = evaluate(Rename(Scan("visits"), {"pname": "who"}), catalog)
        assert "who" in out.labels and "pname" not in out.labels

    def test_rename_to_duplicate_raises(self, catalog):
        with pytest.raises(AlgebraError, match="duplicate"):
            evaluate(Rename(Scan("people"), {"pname": "age"}), catalog)


class TestJoinsProducts:
    def test_natural_join_on_common_attributes(self, catalog):
        out = evaluate(Join(Scan("people"), Scan("visits")), catalog)
        assert len(out) == 3
        assert set(out.labels) == {"pname", "age", "city", "place"}

    def test_join_without_common_attributes_is_product(self, catalog):
        left = evaluate(Project(Scan("people"), "age"), catalog)
        right = evaluate(Project(Scan("visits"), "place"), catalog)
        scoped = Catalog({"l": left, "r": right})
        out = evaluate(Join(Scan("l"), Scan("r")), scoped)
        assert len(out) == len(left) * len(right)

    def test_product_requires_disjoint_attributes(self, catalog):
        with pytest.raises(AlgebraError, match="overlap"):
            evaluate(Product(Scan("people"), Scan("visits")), catalog)


class TestSetOperators:
    def test_union_difference_intersection(self, catalog):
        milan = Select(Scan("people"),
                       Comparison(Field("city"), "=", Constant_("milan")))
        young = Select(Scan("people"),
                       Comparison(Field("age"), "<", Constant_(35)))
        assert len(evaluate(Union(milan, young), catalog)) == 3
        assert len(evaluate(Difference(milan, young), catalog)) == 1
        assert len(evaluate(Intersection(milan, young), catalog)) == 1

    def test_schema_mismatch_rejected(self, catalog):
        with pytest.raises(AlgebraError, match="incompatible"):
            evaluate(Union(Scan("people"), Scan("visits")), catalog)

    def test_distinct_is_identity_on_sets(self, catalog):
        assert rows(evaluate(Distinct(Scan("people")), catalog)) == \
            rows(catalog.get("people"))


class TestExtendAggregate:
    def test_extend_computed_attribute(self, catalog):
        out = evaluate(
            Extend(Scan("people"), "is_ann",
                   Field("pname")), catalog,
        )
        assert {r["is_ann"] for r in out} == {"ann", "bob", "cyn"}

    def test_extend_existing_label_rejected(self, catalog):
        with pytest.raises(AlgebraError, match="already exists"):
            evaluate(Extend(Scan("people"), "age", Constant_(1)), catalog)

    def test_aggregate_count_and_sum(self, catalog):
        out = evaluate(
            Aggregate(Scan("people"), ["city"], "count", None, "n"),
            catalog,
        )
        assert {(r["city"], r["n"]) for r in out} == \
            {("milan", 2), ("rome", 1)}
        out2 = evaluate(
            Aggregate(Scan("people"), ["city"], "sum", "age", "total"),
            catalog,
        )
        assert {(r["city"], r["total"]) for r in out2} == \
            {("milan", 70), ("rome", 20)}

    def test_unknown_aggregate_rejected(self, catalog):
        with pytest.raises(AlgebraError, match="unknown aggregate"):
            evaluate(
                Aggregate(Scan("people"), ["city"], "median", "age", "m"),
                catalog,
            )


class TestNestUnnest:
    def test_nest_groups_into_set(self, catalog):
        out = evaluate(Nest(Scan("visits"), ["place"], "places"), catalog)
        by_name = {r["pname"]: r["places"] for r in out}
        assert by_name["ann"] == SetValue(["duomo", "navigli"])
        assert by_name["bob"] == SetValue(["forum"])

    def test_unnest_inverts_nest(self, catalog):
        nested = Nest(Scan("visits"), ["place"], "place2")
        flat = evaluate(Unnest(nested, "place2"), catalog)
        original = {(r["pname"], r["place"])
                    for r in catalog.get("visits")}
        assert {(r["pname"], r["place2"]) for r in flat} == original

    def test_nest_multiple_attributes_makes_tuple_sets(self, catalog):
        out = evaluate(
            Nest(Scan("people"), ["pname", "age"], "members"), catalog
        )
        milan_members = next(
            r["members"] for r in out if r["city"] == "milan"
        )
        assert TupleValue(pname="ann", age=30) in milan_members

    def test_unnest_non_set_attribute_rejected(self, catalog):
        with pytest.raises(AlgebraError, match="not set-valued"):
            evaluate(Unnest(Scan("people"), "age"), catalog)


class TestClosure:
    def tc_catalog(self):
        edges = Relation.build(
            "edge", [("x", STRING), ("y", STRING)],
            [dict(x="a", y="b"), dict(x="b", y="c"), dict(x="c", y="a")],
        )
        return Catalog({"edge": edges})

    def tc_expr(self, mode="inflationary", max_iterations=10_000):
        step = Project(
            Join(Rename(Scan("$iter"), {"y": "z"}),
                 Rename(Scan("edge"), {"x": "z"})),
            "x", "y",
        )
        return Closure(Scan("edge"), step, mode=mode,
                       max_iterations=max_iterations)

    def test_inflationary_closure_reaches_fixpoint(self):
        out = evaluate(self.tc_expr(), self.tc_catalog())
        assert len(out) == 9  # full 3-cycle closure

    def test_iterate_mode_detects_divergence(self):
        # replacing instead of accumulating on a cycle never stabilizes
        with pytest.raises((NonTerminationError, AlgebraError)):
            evaluate(self.tc_expr("iterate", max_iterations=16),
                     self.tc_catalog())

    def test_iterate_mode_converges_when_stable(self):
        # a step that immediately returns its input is a fixpoint
        expr = Closure(Scan("edge"), Scan("$iter"), mode="iterate")
        out = evaluate(expr, self.tc_catalog())
        assert len(out) == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(AlgebraError, match="unknown closure mode"):
            evaluate(self.tc_expr("hyperbolic"), self.tc_catalog())

    def test_iteration_budget(self):
        with pytest.raises(NonTerminationError):
            evaluate(self.tc_expr(max_iterations=1), self.tc_catalog())


class TestCatalog:
    def test_unknown_relation_raises(self):
        with pytest.raises(AlgebraError, match="unknown relation"):
            evaluate(Scan("ghost"), Catalog())

    def test_names_and_has(self, catalog):
        assert catalog.has("people")
        assert catalog.names() == ["people", "visits"]
