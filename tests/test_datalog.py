"""Tests for the flat Datalog baseline engine."""

import pytest

from repro.datalog import Atom, DVar, DatalogEngine, DatalogProgram, DatalogRule
from repro.errors import EvaluationError, StratificationError

X, Y, Z = DVar("X"), DVar("Y"), DVar("Z")


def tc_rules():
    return [
        DatalogRule(Atom("anc", X, Y), (Atom("parent", X, Y),)),
        DatalogRule(Atom("anc", X, Z),
                    (Atom("parent", X, Y), Atom("anc", Y, Z))),
    ]


def parent_facts(*pairs):
    return {("parent", pair) for pair in pairs}


class TestSafety:
    def test_unbound_head_variable_rejected(self):
        with pytest.raises(EvaluationError, match="unsafe"):
            DatalogRule(Atom("p", X), (Atom("q", Y),))

    def test_unbound_negated_variable_rejected(self):
        with pytest.raises(EvaluationError, match="unsafe"):
            DatalogRule(Atom("p", X), (Atom("q", X),),
                        (Atom("r", Y),))

    def test_ground_fact_rule_is_safe(self):
        DatalogRule(Atom("p", 1, "a"))


class TestPositiveEvaluation:
    def test_transitive_closure(self):
        facts = parent_facts(("a", "b"), ("b", "c"), ("c", "d"))
        out = DatalogEngine(tc_rules()).seminaive(facts)
        anc = {args for pred, args in out if pred == "anc"}
        assert len(anc) == 6
        assert ("a", "d") in anc

    def test_naive_equals_seminaive(self):
        facts = parent_facts(("a", "b"), ("b", "c"), ("b", "d"),
                             ("d", "e"))
        engine = DatalogEngine(tc_rules())
        assert engine.naive(facts) == engine.seminaive(facts)

    def test_constants_in_rules(self):
        rules = [DatalogRule(
            Atom("root_child", X), (Atom("parent", "root", X),)
        )]
        facts = parent_facts(("root", "a"), ("other", "b"))
        out = DatalogEngine(rules).seminaive(facts)
        assert ("root_child", ("a",)) in out
        assert ("root_child", ("b",)) not in out

    def test_repeated_variables_filter(self):
        rules = [DatalogRule(Atom("loop", X), (Atom("parent", X, X),))]
        facts = parent_facts(("a", "a"), ("a", "b"))
        out = DatalogEngine(rules).seminaive(facts)
        assert {args for p, args in out if p == "loop"} == {("a",)}

    def test_facts_preserved_in_output(self):
        out = DatalogEngine(tc_rules()).seminaive(
            parent_facts(("a", "b"))
        )
        assert ("parent", ("a", "b")) in out

    def test_iterations_counted(self):
        engine = DatalogEngine(tc_rules())
        engine.seminaive(parent_facts(("a", "b"), ("b", "c")))
        assert engine.iterations >= 2


class TestStratifiedNegation:
    def test_complement_program(self):
        rules = tc_rules() + [
            DatalogRule(Atom("node", X), (Atom("parent", X, Y),)),
            DatalogRule(Atom("node", Y), (Atom("parent", X, Y),)),
            DatalogRule(
                Atom("isolated", X),
                (Atom("node", X),),
                (Atom("anc", "a", X),),
            ),
        ]
        facts = parent_facts(("a", "b"), ("c", "d"))
        out = DatalogEngine(rules).stratified(facts)
        isolated = {args[0] for p, args in out if p == "isolated"}
        assert isolated == {"a", "c", "d"}

    def test_negation_routed_automatically(self):
        rules = [
            DatalogRule(Atom("p", X), (Atom("q", X),),
                        (Atom("r", X),)),
        ]
        facts = {("q", (1,)), ("q", (2,)), ("r", (2,))}
        out = DatalogEngine(rules).naive(facts)
        assert {a for p, a in out if p == "p"} == {(1,)}

    def test_unstratifiable_program_rejected(self):
        rules = [
            DatalogRule(Atom("p", X), (Atom("q", X),),
                        (Atom("p", X),)),
        ]
        with pytest.raises(StratificationError):
            DatalogEngine(rules).stratified({("q", (1,))})


class TestProgram:
    def test_idb_predicates(self):
        program = DatalogProgram(tuple(tc_rules()))
        assert program.idb_predicates() == {"anc"}

    def test_rule_reprs(self):
        rule = tc_rules()[1]
        assert ":-" in repr(rule)
        assert "?X" in repr(rule)
