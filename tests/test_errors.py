"""Tests for the exception hierarchy and error ergonomics."""

import pytest

import repro.errors as errors
from repro import Database, parse_source
from repro.errors import (
    AnalysisError,
    EvaluationError,
    LogresError,
    NonTerminationError,
    ParseError,
    SafetyError,
    SchemaError,
    StratificationError,
    TypingError,
)


class TestHierarchy:
    def test_every_error_derives_from_logres_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and \
                    obj is not LogresError:
                assert issubclass(obj, LogresError), name

    def test_analysis_errors_grouped(self):
        assert issubclass(SafetyError, AnalysisError)
        assert issubclass(TypingError, AnalysisError)
        assert issubclass(StratificationError, AnalysisError)

    def test_nontermination_is_evaluation_error(self):
        assert issubclass(NonTerminationError, EvaluationError)

    def test_one_except_clause_catches_everything(self):
        try:
            Database.from_source("classes\n broken = (x: ghost).")
        except LogresError as exc:
            assert isinstance(exc, SchemaError)
        else:  # pragma: no cover
            pytest.fail("expected a LogresError")


class TestParseErrorPositions:
    def test_line_and_column_in_message(self):
        with pytest.raises(ParseError) as err:
            parse_source("rules\n  p(x X) <- q(x X)\n  r(y Y).")
        assert err.value.line == 3
        assert "line 3" in str(err.value)

    def test_zero_position_omits_location(self):
        assert "line" not in str(ParseError("plain message"))


class TestNonTerminationCarriesIterations:
    def test_iterations_attribute(self):
        err = NonTerminationError("boom", iterations=42)
        assert err.iterations == 42


class TestErrorMessagesAreActionable:
    def test_unknown_predicate_names_the_predicate(self):
        db = Database.from_source("associations\n p = (x: integer).")
        with pytest.raises(SchemaError, match="'ghost'"):
            db.insert("ghost", x=1)

    def test_safety_error_names_the_variable(self):
        with pytest.raises(SafetyError, match="variable Y"):
            Database.from_source("""
            associations
              p = (x: integer).
            rules
              p(x Y) <- p(x X).
            """).instance()

    def test_typing_error_names_both_types(self):
        with pytest.raises(TypingError, match="INTEGER"):
            Database.from_source("""
            associations
              p = (x: integer, y: string).
            rules
              p(x X, y X) <- p(x X, y X).
            """).instance()
