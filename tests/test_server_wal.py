"""The per-database write-ahead log: durability unit tests.

Contract (docs/SERVE.md): every acknowledged write is in the WAL before
the ack; a torn *final* line (crash mid-append, never acknowledged) is
tolerated on replay; corruption anywhere earlier — an acknowledged
record — is a hard ``StorageError`` naming the log and record.
"""

import json

import pytest

from repro.errors import StorageError
from repro.server.wal import WAL_VERSION, WriteAheadLog, make_record
from repro.testing import FAULTS


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.clear()
    yield
    FAULTS.clear()


def _record(seq, **fields):
    fields.setdefault("module", "rules\n  p(n \"x\").")
    fields.setdefault("mode", "RIDV")
    return make_record(seq, "apply", **fields)


class TestAppendAndReplay:
    def test_records_round_trip_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal.jsonl")
        for seq in (1, 2, 3):
            wal.append(_record(seq, payload=seq * 10))
        wal.close()
        replayed = list(WriteAheadLog(tmp_path / "db.wal.jsonl").records())
        assert [r["seq"] for r in replayed] == [1, 2, 3]
        assert [r["payload"] for r in replayed] == [10, 20, 30]
        assert all(r["version"] == WAL_VERSION for r in replayed)

    def test_after_seq_skips_snapshotted_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal.jsonl")
        for seq in range(1, 6):
            wal.append(_record(seq))
        assert [r["seq"] for r in wal.records(after_seq=3)] == [4, 5]
        wal.close()

    def test_last_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal.jsonl")
        assert wal.last_seq() == 0
        wal.append(_record(1))
        wal.append(_record(2))
        assert wal.last_seq() == 2
        wal.close()

    def test_missing_file_is_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "never-written.wal.jsonl")
        assert list(wal.records()) == []
        assert wal.last_seq() == 0


class TestTornAndCorrupt:
    def _two_then_garbage(self, path, garbage):
        wal = WriteAheadLog(path)
        wal.append(_record(1))
        wal.append(_record(2))
        wal.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write(garbage)
        return path

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = self._two_then_garbage(
            tmp_path / "db.wal.jsonl", '{"version": 1, "seq": 3, "ki'
        )
        replayed = list(WriteAheadLog(path).records())
        assert [r["seq"] for r in replayed] == [1, 2]

    def test_torn_final_checksum_is_tolerated(self, tmp_path):
        # a complete JSON line whose checksum does not match: a crash
        # between write and fsync can leave this as the final line
        bad = dict(_record(3))
        bad["checksum"] = "0" * 64
        path = self._two_then_garbage(
            tmp_path / "db.wal.jsonl", json.dumps(bad) + "\n"
        )
        assert [r["seq"] for r in WriteAheadLog(path).records()] == [1, 2]

    def test_corruption_before_the_tail_is_fatal(self, tmp_path):
        path = tmp_path / "db.wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(_record(1))
        wal.append(_record(2))
        wal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-10] + '"tampered"'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StorageError, match="corrupt write-ahead log"):
            list(WriteAheadLog(path).records())

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "db.wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(_record(1, module="rules\n  p(n \"real\")."))
        wal.append(_record(2))
        wal.close()
        text = path.read_text().replace('\\"real\\"', '\\"fake\\"')
        path.write_text(text)
        with pytest.raises(StorageError, match="record 1"):
            list(WriteAheadLog(path).records())


class TestTruncate:
    def test_truncate_drops_snapshotted_prefix(self, tmp_path):
        path = tmp_path / "db.wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in range(1, 8):
            wal.append(_record(seq))
        wal.truncate(up_to_seq=5)
        assert [r["seq"] for r in wal.records()] == [6, 7]
        wal.close()
        # and it survives reopen
        assert [r["seq"] for r in WriteAheadLog(path).records()] == [6, 7]

    def test_truncate_everything_leaves_empty_log(self, tmp_path):
        path = tmp_path / "db.wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(_record(1))
        wal.truncate(up_to_seq=1)
        assert list(wal.records()) == []
        wal.close()


class TestFaultPoint:
    def test_append_fault_leaves_log_unchanged(self, tmp_path):
        path = tmp_path / "db.wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(_record(1))
        with FAULTS.inject("server.wal.append", action="io-error"):
            with pytest.raises(OSError):
                wal.append(_record(2))
        wal.append(_record(2))  # retry after the fault clears
        assert [r["seq"] for r in wal.records()] == [1, 2]
        wal.close()
