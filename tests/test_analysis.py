"""Unit tests for static analysis: resolution, safety, typing, strata."""

import pytest

from repro.errors import (
    IllegalOidRuleError,
    SafetyError,
    StratificationError,
    TypingError,
)
from repro.language.analysis import (
    analyze_program,
    check_safety,
    check_types,
    resolve_rule,
    schema_with_functions,
    stratify,
)
from repro.language.ast import Literal, Var
from repro.language.parser import parse_program, parse_source
from repro.types import SchemaBuilder, STRING, INTEGER


def first_rule(text):
    return parse_program(text).rules[0]


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .clazz("person", ("name", STRING), ("age", INTEGER))
        .clazz("student", ("person", "person"), ("school", STRING))
        .clazz("robot", ("serial", INTEGER))
        .association("advises", ("prof", "person"), ("stud", "person"))
        .association("q", ("x", INTEGER))
        .association("p", ("x", INTEGER))
        .isa("student", "person")
        .build()
    )


class TestPositionalResolution:
    def test_all_positional_maps_in_field_order(self, schema):
        rule = resolve_rule(
            first_rule("p(x X) <- advises(A, B), q(x X)."), schema
        )
        advises = rule.body[0]
        assert dict(advises.args.labeled) == {
            "prof": Var("A"), "stud": Var("B")
        }

    def test_single_bare_variable_becomes_tuple_var(self, schema):
        rule = resolve_rule(
            first_rule("p(x X) <- person(X1, name N), q(x X)."), schema
        )
        assert rule.body[0].args.tuple_var == Var("X1")

    def test_single_bare_var_on_multifield_pred_is_tuple_var(self, schema):
        rule = resolve_rule(
            first_rule("p(x X) <- person(W), q(x X)."), schema
        )
        assert rule.body[0].args.tuple_var == Var("W")

    def test_single_positional_on_single_field_pred_is_positional(
        self, schema
    ):
        rule = resolve_rule(
            first_rule("p(x X) <- q(X)."), schema
        )
        assert dict(rule.body[0].args.labeled) == {"x": Var("X")}

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(TypingError, match="cannot resolve"):
            resolve_rule(
                first_rule("p(x X) <- advises(A, B, C), q(x X)."), schema
            )

    def test_unknown_predicate_rejected(self, schema):
        with pytest.raises(TypingError, match="unknown predicate"):
            resolve_rule(first_rule("p(x X) <- ghost(A)."), schema)


class TestFunctionRewrite:
    def make_schema(self):
        return (
            SchemaBuilder()
            .association("parent", ("par", STRING), ("chil", STRING))
            .function("desc", [STRING], STRING)
            .build()
        )

    def test_member_body_literal_rewritten(self):
        schema = self.make_schema()
        rule = resolve_rule(
            first_rule(
                "parent(par X, chil Y) <- parent(par X, chil Y),"
                " member(Y, desc(X))."
            ),
            schema_with_functions(schema),
        )
        rewritten = rule.body[1]
        assert isinstance(rewritten, Literal)
        assert rewritten.pred == "__fn_desc"

    def test_member_head_rewritten(self):
        schema = self.make_schema()
        rule = resolve_rule(
            first_rule("member(X, desc(Y)) <- parent(par Y, chil X)."),
            schema_with_functions(schema),
        )
        assert rule.head.pred == "__fn_desc"

    def test_wrong_function_arity_rejected(self):
        schema = self.make_schema()
        with pytest.raises(TypingError, match="takes 1"):
            resolve_rule(
                first_rule(
                    "parent(par X, chil Y) <- parent(par X, chil Y),"
                    " member(Y, desc(X, X))."
                ),
                schema_with_functions(schema),
            )

    def test_unknown_function_in_term_rejected(self):
        schema = self.make_schema()
        with pytest.raises(TypingError, match="unknown data function"):
            resolve_rule(
                first_rule(
                    "parent(par X, chil Y) <- parent(par X, chil Y),"
                    " Y = ghost(X)."
                ),
                schema_with_functions(schema),
            )

    def test_backing_association_added_to_schema(self):
        extended = schema_with_functions(self.make_schema())
        assert extended.is_association("__fn_desc")
        eff = extended.effective_type("__fn_desc")
        assert eff.labels == ("arg0", "value")


class TestSafety:
    def test_unbound_head_variable_rejected(self, schema):
        with pytest.raises(SafetyError, match="not bound"):
            check_safety(first_rule("q(x X) <- p(x Y)."), schema)

    def test_builtin_only_variable_rejected(self, schema):
        with pytest.raises(SafetyError, match="ordinary literal"):
            check_safety(first_rule("q(x X) <- p(x X), Y < Z."), schema)

    def test_builtin_chain_binding_accepted(self, schema):
        report = check_safety(
            first_rule("q(x Z) <- p(x X), Y = X + 1, Z = Y * 2."), schema
        )
        assert not report.invents_oid

    def test_unbound_class_self_var_means_invention(self, schema):
        report = check_safety(
            first_rule("person(self S, name N) <- q(x X), N = \"n\"."),
            schema,
        )
        assert report.invents_oid

    def test_class_head_without_oid_term_invents(self, schema):
        report = check_safety(
            first_rule('person(name "sara") <- q(x X).'), schema
        )
        assert report.invents_oid

    def test_association_head_never_invents(self, schema):
        with pytest.raises(SafetyError):
            check_safety(first_rule("q(x X) <- p(x Y), Y = 1."), schema)

    def test_negated_only_variables_range_over_active_domain(self, schema):
        report = check_safety(
            first_rule("q(x X) <- p(x X), ~advises(prof P, stud S)."),
            schema,
        )
        assert set(report.active_domain_vars) == {Var("P"), Var("S")}

    def test_argumentless_literal_over_typed_pred_rejected(self, schema):
        with pytest.raises(SafetyError, match="no arguments"):
            check_safety(first_rule("q(x X) <- p, q(x X)."), schema)


class TestTyping:
    def test_variable_at_incompatible_types_rejected(self, schema):
        with pytest.raises(TypingError, match="incompatible"):
            check_types(
                first_rule(
                    "q(x X) <- person(name X, age X), q(x X)."
                ),
                schema,
            )

    def test_cross_hierarchy_oid_variable_rejected(self, schema):
        # Section 3.1: C1(X) <- C2(X) across hierarchies is incorrect
        with pytest.raises(IllegalOidRuleError, match="hierarchies"):
            check_types(
                first_rule("person(self S) <- robot(self S)."), schema
            )

    def test_same_hierarchy_oid_variable_accepted(self, schema):
        check_types(
            first_rule("person(self S) <- student(self S)."), schema
        )

    def test_unknown_label_rejected(self, schema):
        with pytest.raises(TypingError, match="no argument labeled"):
            check_types(first_rule("q(x X) <- person(ghost X)."), schema)

    def test_class_variable_mixed_with_value_rejected(self, schema):
        with pytest.raises(TypingError):
            check_types(
                first_rule(
                    "q(x X) <- person(self S), p(x S), q(x X)."
                ),
                schema,
            )

    def test_self_on_association_rejected(self, schema):
        with pytest.raises(TypingError, match="non-class"):
            check_types(first_rule("q(x X) <- advises(self S), q(x X)."),
                        schema)


class TestStratification:
    def test_negation_in_cycle_rejected(self, schema):
        program = parse_program(
            "p(x X) <- q(x X), ~p(x X)."
        )
        with pytest.raises(StratificationError):
            stratify(program, schema)

    def test_stratified_negation_splits_strata(self, schema):
        program = parse_program("""
          p(x X) <- q(x X).
          advises(prof P, stud P) <- person(self P), ~p(x 1).
        """)
        strata = stratify(program, schema)
        assert len(strata) == 2

    def test_positive_recursion_is_one_stratum(self, schema):
        program = parse_program("""
          p(x X) <- q(x X).
          p(x X) <- p(x X), q(x X).
        """)
        assert len(stratify(program, schema)) == 1

    def test_elementwise_function_recursion_allowed(self):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
        functions
          desc: string -> {string}.
          member(X, desc(Y)) <- parent(par Y, chil X).
          member(X, desc(Y)) <- parent(par Y, chil Z), member(X, T),
                                T = desc(Z).
        """)
        analysis = analyze_program(unit.program(), unit.schema())
        analysis.strata()  # must not raise

    def test_nesting_function_read_forces_stratum(self):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
          ancestor = (anc: string, des: {string}).
        functions
          desc: string -> {string}.
          member(X, desc(Y)) <- parent(par Y, chil X).
        rules
          ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
        """)
        analysis = analyze_program(unit.program(), unit.schema())
        strata = analysis.strata()
        assert len(strata) == 2

    def test_aggregate_function_read_is_nesting(self):
        unit = parse_source("""
        associations
          parent = (par: string, chil: string).
          fertility = (who: string, n: integer).
        functions
          kids: string -> {string}.
          member(X, kids(Y)) <- parent(par Y, chil X).
        rules
          fertility(who X, n N) <- parent(par X), S = kids(X),
                                   count(S, N).
        """)
        analysis = analyze_program(unit.program(), unit.schema())
        assert len(analysis.strata()) == 2


class TestAnalyzeProgram:
    def test_flags_summarize_program_features(self, schema):
        program = parse_program("""
          q(x X) <- p(x X), ~q(x 0).
          ~p(x X) <- q(x X), X > 100.
          person(name "new") <- q(x 1).
        """)
        analysis = analyze_program(program, schema)
        assert analysis.has_negation
        assert analysis.has_deletion
        assert analysis.has_invention

    def test_goal_resolved(self, schema):
        unit = parse_source("""
        rules
          q(x 1).
        goal
          ?- advises(A, B).
        """)
        analysis = analyze_program(unit.program(), schema)
        goal_literal = analysis.goal.literals[0]
        assert dict(goal_literal.args.labeled) == {
            "prof": Var("A"), "stud": Var("B")
        }


class TestConstantTypeChecking:
    """Section 3.1: constants are typed; checking happens at compile
    time."""

    def test_wrong_constant_type_rejected(self, schema):
        with pytest.raises(TypingError, match="does not belong"):
            check_types(
                first_rule('q(x X) <- person(name 42), q(x X).'), schema
            )

    def test_matching_constant_accepted(self, schema):
        check_types(
            first_rule('q(x X) <- person(name "sara", age 30), q(x X).'),
            schema,
        )

    def test_domain_typed_constant(self):
        from repro.language.parser import parse_source

        unit = parse_source("""
        domains
          score = (home: integer, guest: integer).
        associations
          game = (sc: score).
          out = (v: integer).
        rules
          out(v H) <- game(sc(home H)), H > 2.
        """)
        from repro.language.analysis import analyze_program

        analyze_program(unit.program(), unit.schema())  # must not raise

    def test_nil_constant_legal_at_class_positions(self):
        from repro.language.parser import parse_source
        from repro.language.analysis import analyze_program

        unit = parse_source("""
        classes
          person = (name: string).
          team = (tname: string, captain: person).
        associations
          headless = (tname: string).
        rules
          headless(tname T) <- team(tname T, captain nil).
        """)
        analyze_program(unit.program(), unit.schema())  # must not raise
