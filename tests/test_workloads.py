"""Tests for the workload generators."""

from repro import Mode, Semantics
from repro.workloads import (
    chain_edges,
    football_database,
    genealogy_facts,
    grid_edges,
    random_edges,
    tree_edges,
    university_database,
    update_stream,
)


class TestGenealogy:
    def test_deterministic_per_seed(self):
        assert genealogy_facts(40, seed=7) == genealogy_facts(40, seed=7)
        assert genealogy_facts(40, seed=7) != genealogy_facts(40, seed=8)

    def test_acyclic_parent_relation(self):
        facts = genealogy_facts(60, seed=1)
        for fact in facts.facts_of("parent"):
            par = int(fact.value["par"][1:])
            chil = int(fact.value["chil"][1:])
            assert par < chil


class TestGraphs:
    def test_chain(self):
        facts = chain_edges(5)
        assert facts.count("parent") == 5

    def test_tree_size(self):
        facts = tree_edges(3, fanout=2)
        assert facts.count("parent") == 2 + 4 + 8

    def test_grid_edge_count(self):
        # each cell has a right edge (except last column) and a down
        # edge (except last row)
        facts = grid_edges(3, 4)
        assert facts.count("parent") == 3 * 3 + 2 * 4

    def test_random_edges_respect_bounds(self):
        facts = random_edges(10, 15, seed=2)
        assert facts.count("parent") == 15
        for f in facts.facts_of("parent"):
            a = int(f.value["par"][1:])
            b = int(f.value["chil"][1:])
            assert a < b  # acyclic by construction

    def test_custom_predicate_and_labels(self):
        facts = chain_edges(2, pred="edge", a="src", b="dst")
        (fact, _) = sorted(facts.facts_of("edge"), key=repr)
        assert set(fact.value.labels) == {"src", "dst"}


class TestFootball:
    def test_database_is_consistent(self):
        db = football_database(teams=3, games=5, seed=3)
        assert db.check() == []

    def test_team_composition(self):
        db = football_database(teams=2, players_per_team=4,
                               substitutes_per_team=2, games=1)
        teams = db.objects("team")
        assert len(teams) == 2
        for value in teams.values():
            assert len(value["base_players"]) == 4
            assert len(value["substitutes"]) == 2

    def test_games_reference_existing_teams(self):
        db = football_database(teams=3, games=6, seed=0)
        team_oids = set(db.objects("team"))
        for game in db.tuples("game"):
            assert game["h_team"] in team_oids
            assert game["g_team"] in team_oids
            assert game["h_team"] != game["g_team"]


class TestUniversity:
    def test_database_is_consistent(self):
        db = university_database(students=8, professors=3, seed=5)
        assert db.check() == []

    def test_isa_propagation_at_insert(self):
        db = university_database(students=4, professors=2, seed=1)
        assert len(db.objects("person")) == 6

    def test_advises_links_real_objects(self):
        db = university_database(students=5, professors=2, seed=1)
        studs = set(db.objects("student"))
        profs = set(db.objects("professor"))
        for t in db.tuples("advises"):
            assert t["prof"] in profs
            assert t["stud"] in studs


class TestUpdateStream:
    def test_stream_applies_cleanly(self):
        from repro import Database
        from repro.workloads import GENEALOGY_SCHEMA

        db = Database.from_source(GENEALOGY_SCHEMA)
        for module in update_stream(6, people=20, seed=4):
            db.run_module(module, Mode.RIDV,
                          semantics=Semantics.INFLATIONARY)
        assert db.check() == []
        assert len(db.tuples("parent")) > 0

    def test_stream_deterministic(self):
        a = update_stream(5, seed=9)
        b = update_stream(5, seed=9)
        assert [m.rules for m in a] == [m.rules for m in b]
