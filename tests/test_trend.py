"""The perf-telemetry store: tolerant ingestion, dedupe, trend gate."""

import json

import pytest

from repro.observability.events import SCHEMA_VERSION
from repro.observability.trend import (
    TrendStore,
    append_bench_rows,
    find_regressions,
    read_bench_rows,
    render_trend_text,
    series_key,
    trend_prometheus,
    trend_report,
)


def _row(name="tc[100]", min_ms=10.0, session="s1", exp="e01",
         config=None, **extra):
    row = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench-row",
        "ts": 1_000.0,
        "session": session,
        "exp": exp,
        "group": f"bench-{exp}",
        "name": name,
        "min_ms": min_ms,
        "mean_ms": min_ms * 1.1,
        "stddev_ms": 0.2,
        "rounds": 3,
        "config": config,
    }
    row.update(extra)
    return row


def _write(path, rows):
    with open(path, "w", encoding="utf-8") as f:
        for row in rows:
            f.write((row if isinstance(row, str) else
                     json.dumps(row)) + "\n")


class TestTolerantIngestion:
    def test_malformed_lines_warn_instead_of_raising(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        _write(path, [_row(), "{not json", '["a", "list"]', _row("x")])
        rows, warnings = read_bench_rows(path)
        assert [r["name"] for r in rows] == ["tc[100]", "x"]
        assert len(warnings) == 2
        assert "unparseable" in warnings[0]
        assert "BENCH_e01.json:2" in warnings[0]

    def test_future_schema_version_skipped(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        _write(path, [_row(),
                      _row("y", schema_version=SCHEMA_VERSION + 1)])
        rows, warnings = read_bench_rows(path)
        assert [r["name"] for r in rows] == ["tc[100]"]
        assert "schema_version" in warnings[0]

    def test_wrong_kind_and_missing_min_skipped(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        bad = _row("z")
        del bad["min_ms"]
        _write(path, [_row(), _row("w", kind="run-report"), bad])
        rows, warnings = read_bench_rows(path)
        assert [r["name"] for r in rows] == ["tc[100]"]
        assert len(warnings) == 2

    def test_legacy_headerless_rows_ingest(self, tmp_path):
        # pre-PR-9 rows carry no schema_version/kind: still history
        path = tmp_path / "BENCH_e01.json"
        legacy = _row()
        del legacy["schema_version"], legacy["kind"]
        _write(path, [legacy])
        rows, warnings = read_bench_rows(path)
        assert len(rows) == 1 and not warnings

    def test_missing_file_is_empty(self, tmp_path):
        rows, warnings = read_bench_rows(tmp_path / "BENCH_none.json")
        assert rows == [] and warnings == []

    def test_store_surfaces_warnings(self, tmp_path):
        _write(tmp_path / "BENCH_e01.json", [_row(), "oops"])
        store = TrendStore.load(tmp_path)
        assert len(store.series) == 1
        assert len(store.warnings) == 1


class TestDedupingAppend:
    def test_same_session_rerun_supersedes(self, tmp_path):
        # re-appending under one session stamp is idempotent: the
        # earlier same-session rows are replaced, not stacked
        path = tmp_path / "BENCH_e01.json"
        append_bench_rows(path, [_row(session="s1", min_ms=10.0),
                                 _row("b", session="s1")])
        append_bench_rows(path, [_row(session="s1", min_ms=11.0)])
        rows, _ = read_bench_rows(path)
        assert len(rows) == 2
        assert [r["min_ms"] for r in rows if r["name"] == "tc[100]"] \
            == [11.0]

    def test_other_sessions_accumulate_as_history(self, tmp_path):
        # cross-session measurements are the time series the trend
        # store analyses — they must stack, never be superseded
        path = tmp_path / "BENCH_e01.json"
        append_bench_rows(path, [_row(session="s1", min_ms=9.0)])
        append_bench_rows(path, [_row(session="s2", min_ms=10.0)])
        append_bench_rows(path, [_row(session="s3", min_ms=11.0)])
        rows, _ = read_bench_rows(path)
        assert [r["session"] for r in rows] == ["s1", "s2", "s3"]

    def test_disjoint_names_stack(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        append_bench_rows(path, [_row(session="s1")])
        append_bench_rows(path, [_row("other", session="s1")])
        rows, _ = read_bench_rows(path)
        assert len(rows) == 2

    def test_unparseable_lines_survive_rewrite(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        _write(path, ["{garbage", _row(session="s1")])
        append_bench_rows(path, [_row(session="s2")])
        text = path.read_text()
        assert "{garbage" in text
        rows, warnings = read_bench_rows(path)
        assert len(rows) == 2 and len(warnings) == 1

    def test_duplicate_keys_within_session_collapse(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        append_bench_rows(path, [_row(min_ms=5.0), _row(min_ms=6.0)])
        rows, _ = read_bench_rows(path)
        assert len(rows) == 1 and rows[0]["min_ms"] == 6.0

    def test_config_distinguishes_rows(self, tmp_path):
        path = tmp_path / "BENCH_e01.json"
        append_bench_rows(path, [
            _row(config={"kernel": "planned"}),
            _row(config={"kernel": "compiled"}),
        ])
        rows, _ = read_bench_rows(path)
        assert len(rows) == 2


class TestTrendGate:
    def _store(self, mins, name="tc[100]"):
        store = TrendStore()
        for i, ms in enumerate(mins):
            store.add_row(_row(name, min_ms=ms, session=f"s{i}",
                               ts=float(i)))
        return store

    def test_steady_series_passes(self):
        assert find_regressions(
            self._store([10.0, 10.5, 9.8, 10.2])) == []

    def test_slowdown_flags(self):
        flags = find_regressions(self._store([10.0, 10.0, 10.0, 40.0]))
        assert len(flags) == 1
        assert flags[0].latest_ms == 40.0
        assert flags[0].baseline_ms == 10.0
        assert flags[0].ratio == pytest.approx(4.0)

    def test_min_time_floor_absorbs_tiny_series(self):
        # 4x ratio but only 0.3 ms absolute: microbenchmark jitter
        assert find_regressions(
            self._store([0.1, 0.1, 0.1, 0.4])) == []

    def test_short_series_never_flags(self):
        assert find_regressions(self._store([10.0, 40.0])) == []

    def test_window_bounds_the_baseline(self):
        # ancient fast history outside the window must not drag the
        # median down: recent points are all ~30 ms, latest 32 is fine
        mins = [5.0] * 10 + [30.0, 31.0, 29.0, 30.0, 31.0, 32.0]
        assert find_regressions(self._store(mins), window=5) == []

    def test_speedup_never_flags(self):
        assert find_regressions(
            self._store([40.0, 40.0, 40.0, 10.0])) == []

    def test_distinct_configs_are_distinct_series(self):
        store = TrendStore()
        for i in range(3):
            store.add_row(_row(min_ms=10.0, session=f"s{i}",
                               config={"kernel": "planned"}))
        # a slow point under a *different* config: fresh series, n=1
        store.add_row(_row(min_ms=100.0, session="s9",
                           config={"kernel": "compiled"}))
        assert find_regressions(store) == []
        assert len(store.series) == 2


class TestReportRendering:
    def _store(self):
        store = TrendStore()
        for i, ms in enumerate([10.0, 10.0, 10.0, 40.0]):
            store.add_row(_row(min_ms=ms, session=f"s{i}",
                               config={"kernel": "compiled",
                                       "semantics": "inflationary"}))
        return store

    def test_report_payload(self):
        payload = trend_report(self._store())
        assert payload["kind"] == "bench-trend"
        assert len(payload["regressions"]) == 1
        assert payload["series"][0]["points"] == 4
        assert payload["thresholds"]["window"] == 5

    def test_text_rendering(self):
        text = render_trend_text(trend_report(self._store()))
        assert "TREND REGRESSIONS" in text
        assert "4.00x" in text
        clean = render_trend_text(trend_report(
            TrendStore()))
        assert "no trend regressions" in clean

    def test_warnings_rendered(self, tmp_path):
        _write(tmp_path / "BENCH_e01.json", [_row(), "bad line"])
        text = render_trend_text(trend_report(TrendStore.load(tmp_path)))
        assert "warning:" in text

    def test_prometheus_exposition(self):
        text = trend_prometheus(self._store())
        assert 'repro_bench_latest_ms{exp="e01"' in text
        assert "repro_bench_min_time_seconds_bucket" in text
        assert 'kernel="compiled"' in text

    def test_series_key_includes_config(self):
        a = _row(config={"kernel": "planned"})
        b = _row(config={"kernel": "compiled"})
        assert series_key(a) != series_key(b)
        assert series_key(a) == series_key(dict(a))
