"""Tests for the observability subsystem.

Covers the metrics registry, JSONL round-tripping of every event type,
the phase timer, and — the load-bearing property — the null-sink fast
path: a run with disabled instrumentation produces identical results
and never allocates an event object.
"""

import io
import json

import pytest

from repro.engine import Engine, Semantics
from repro.language.ast import Program
from repro.language.parser import parse_source
from repro.observability import (
    EVENT_TYPES,
    CollectorSink,
    Instrumentation,
    JsonlSink,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    PhaseTimer,
    RuleFired,
    TextSink,
    event_from_dict,
    read_jsonl,
)
from repro.storage.factset import FactSet

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


def _load(source=TC_SOURCE):
    unit = parse_source(source)
    return unit.schema(), Program(tuple(unit.rules), unit.goal)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", amount=4)
        assert reg.counter("hits") == 5

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("fires", (("rule", "0"),))
        reg.inc("fires", (("rule", "1"),), 2)
        assert reg.counter("fires", (("rule", "0"),)) == 1
        assert reg.counter("fires", (("rule", "1"),)) == 2
        assert reg.counters_named("fires") == {
            (("rule", "0"),): 1,
            (("rule", "1"),): 2,
        }

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.set_gauge("facts", value=10)
        reg.set_gauge("facts", value=7)
        assert reg.gauge("facts") == 7
        assert reg.gauge("missing") is None

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("lat", value=v)
        hist = reg.histogram("lat")
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_snapshot_renders_series_keys(self):
        reg = MetricsRegistry()
        reg.inc("fires", (("rule", "2"),))
        reg.observe("lat", value=0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"fires{rule=2}": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must be JSON-clean


# ---------------------------------------------------------------------------
# events: JSONL round-trip
# ---------------------------------------------------------------------------
_SAMPLE_FIELDS = {
    "semantics": "inflationary",
    "rules": 3,
    "iterations": 4,
    "facts": 9,
    "inventions": 1,
    "elapsed": 0.25,
    "index": 2,
    "number": 5,
    "rule_index": 1,
    "rule": "p(x X) <- q(x X).",
    "pred": "p",
    "fact": "p(x: 1)",
    "iteration": 3,
    "file": "unit.lg",
    "line": 7,
    "column": 3,
    "oid": "#4",
    "violation_kind": "denial",
    "predicate": "p",
    "message": "denial violated",
}


class TestEventRoundTrip:
    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_every_event_type_round_trips(self, kind):
        import dataclasses

        cls = EVENT_TYPES[kind]
        kwargs = {
            f.name: _SAMPLE_FIELDS[f.name]
            for f in dataclasses.fields(cls)
            if f.name in _SAMPLE_FIELDS
        }
        event = cls(**kwargs)
        payload = event.to_dict()
        assert payload["event"] == kind
        line = json.dumps(payload)
        back = event_from_dict(json.loads(line))
        assert back == event
        assert back.to_dict() == payload

    def test_rich_fields_never_serialized(self):
        event = RuleFired(rule_index=0, fact="p(x: 1)",
                          fact_value=object(), rule_value=object(),
                          bindings_value={"X": 1})
        payload = event.to_dict()
        assert "fact_value" not in payload
        assert "rule_value" not in payload
        assert "bindings_value" not in payload
        json.dumps(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"event": "no-such-event"})

    def test_jsonl_sink_round_trip(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        events = [
            EVENT_TYPES["run-start"](semantics="inflationary", rules=2),
            EVENT_TYPES["iteration-start"](number=1),
            EVENT_TYPES["run-end"](iterations=1, facts=2, elapsed=0.1),
        ]
        for e in events:
            sink.emit(e)
        sink.close()
        buffer.seek(0)
        assert read_jsonl(buffer) == events

    def test_text_sink_renders_one_line_per_event(self):
        buffer = io.StringIO()
        sink = TextSink(buffer)
        sink.emit(EVENT_TYPES["iteration-start"](number=3))
        assert buffer.getvalue() == "[iteration-start] number=3\n"


# ---------------------------------------------------------------------------
# phase timer
# ---------------------------------------------------------------------------
class TestPhaseTimer:
    def test_nested_phases(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        tree = timer.to_dict()
        assert tree["count"] == 1
        assert "inner" in tree["children"]["outer"]["children"]

    def test_reentered_phase_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("round"):
                pass
        assert timer.root.children["round"].count == 3
        assert timer.render()  # non-empty


# ---------------------------------------------------------------------------
# null-sink fast path
# ---------------------------------------------------------------------------
class TestNullFastPath:
    def test_disabled_instrumentation_is_disabled(self):
        assert not NULL_INSTRUMENTATION.enabled
        assert Instrumentation().enabled is False
        assert Instrumentation(MetricsRegistry()).enabled is True

    def test_identical_results_with_and_without(self):
        schema, program = _load()
        plain = Engine(schema, program).run(
            FactSet(), Semantics.INFLATIONARY
        )
        obs = Instrumentation(MetricsRegistry(), CollectorSink())
        instrumented = Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        assert plain == instrumented

    def test_null_path_allocates_no_event_objects(self, monkeypatch):
        """A run without instrumentation must never construct events."""
        def _bomb(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("event allocated on the null path")

        for cls in EVENT_TYPES.values():
            monkeypatch.setattr(cls, "__init__", _bomb)
        schema, program = _load()
        result = Engine(schema, program).run(
            FactSet(), Semantics.INFLATIONARY
        )
        assert result.count() == 5

    def test_metrics_only_run_allocates_no_event_objects(self, monkeypatch):
        """Metrics without a sink must also skip event construction."""
        def _bomb(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("event allocated without a sink")

        for cls in EVENT_TYPES.values():
            monkeypatch.setattr(cls, "__init__", _bomb)
        schema, program = _load()
        obs = Instrumentation(MetricsRegistry())
        result = Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        assert result.count() == 5
        assert sum(
            obs.metrics.counters_named("rule_fires").values()
        ) == 5


# ---------------------------------------------------------------------------
# engine event stream / metrics integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_event_stream_shape(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(MetricsRegistry(), collector)
        Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        kinds = [e.kind for e in collector.events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        assert kinds.count("iteration-start") == \
            kinds.count("iteration-end")
        assert len(collector.of_kind("rule-fire")) == 5

    def test_rule_fire_events_carry_spans(self):
        schema, program = _load()
        collector = CollectorSink()
        obs = Instrumentation(
            MetricsRegistry(), collector, source_file="unit.lg"
        )
        Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        fire = collector.of_kind("rule-fire")[0]
        assert fire.file == "unit.lg"
        assert fire.line is not None
        assert fire.fact_value is not None  # rich reference attached

    def test_index_stats_folded_into_counters(self):
        schema, program = _load()
        obs = Instrumentation(MetricsRegistry())
        Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        snap = obs.metrics.snapshot()["counters"]
        assert "factset_index_hits" in snap
        assert snap.get("factset_index_builds", 0) >= 1

    def test_run_events_written_as_jsonl(self, tmp_path):
        schema, program = _load()
        out = tmp_path / "events.jsonl"
        sink = JsonlSink(out.open("w"), close_stream=True)
        obs = Instrumentation(sink=sink)
        Engine(schema, program, instrumentation=obs).run(
            FactSet(), Semantics.INFLATIONARY
        )
        obs.close()
        with out.open() as f:
            events = read_jsonl(f)
        assert events[0].kind == "run-start"
        assert any(e.kind == "rule-fire" for e in events)
