"""Tests for the CLI fact argument parser (``repro explain FACT``).

The parser reuses the real lexer, so the fact grammar tracks the source
language: escapes, negative numbers, keywords and the full complex-value
constructors all behave exactly as they do in a ``.lg`` file.
"""

import pytest

from repro.cli import _parse_fact, main
from repro.errors import ParseError
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
)
from repro.values.oids import NIL, Oid


class TestValues:
    def test_ints_and_strings(self):
        fact = _parse_fact('anc(a="x", d="y")')
        assert fact.pred == "anc"
        assert fact.value["a"] == "x" and fact.value["d"] == "y"
        assert not fact.is_class_fact

    def test_negative_numbers(self):
        fact = _parse_fact("p(v=-3, w=-2.5)")
        assert fact.value["v"] == -3
        assert fact.value["w"] == -2.5

    def test_escaped_quotes_and_backslashes(self):
        fact = _parse_fact(r'p(s="a\"b", t="c\\d", u="e\nf")')
        assert fact.value["s"] == 'a"b'
        assert fact.value["t"] == "c\\d"
        assert fact.value["u"] == "e\nf"

    def test_keyword_values(self):
        fact = _parse_fact("p(b=true, c=false, o=nil)")
        assert fact.value["b"] is True
        assert fact.value["c"] is False
        assert fact.value["o"] == NIL

    def test_bare_word_is_string(self):
        fact = _parse_fact("p(tag=widget)")
        assert fact.value["tag"] == "widget"

    def test_set_constructor(self):
        fact = _parse_fact("p(xs={1, 2, 2})")
        assert fact.value["xs"] == SetValue([1, 2])

    def test_multiset_constructor(self):
        fact = _parse_fact("p(xs=[1, 1, 2])")
        assert fact.value["xs"] == MultisetValue([1, 1, 2])

    def test_sequence_constructor(self):
        fact = _parse_fact("p(xs=<3, 1, 2>)")
        assert fact.value["xs"] == SequenceValue([3, 1, 2])

    def test_nested_tuple(self):
        fact = _parse_fact('p(t=(a=1, b="x"))')
        assert fact.value["t"] == TupleValue(a=1, b="x")

    def test_nested_collections(self):
        fact = _parse_fact("p(xs={(a=1), (a=2)})")
        inner = fact.value["xs"]
        assert isinstance(inner, SetValue)
        assert TupleValue(a=1) in inner

    def test_empty_collections(self):
        fact = _parse_fact("p(s={}, m=[], q=<>, t=())")
        assert fact.value["s"] == SetValue()
        assert fact.value["m"] == MultisetValue()
        assert fact.value["q"] == SequenceValue()
        assert fact.value["t"] == TupleValue()

    def test_colon_separator_accepted(self):
        # the facts' own repr form round-trips through the parser
        fact = _parse_fact("anc(a: 'x'".replace("'", '"') + ', d: "y")')
        assert fact.value["a"] == "x"

    def test_no_fields(self):
        fact = _parse_fact("marker()")
        assert fact.pred == "marker"
        assert fact.value == TupleValue()


class TestClassFacts:
    def test_self_makes_class_fact(self):
        fact = _parse_fact("person(self=3, age=40)")
        assert fact.is_class_fact
        assert fact.oid == Oid(3)
        assert fact.value["age"] == 40
        assert "self" not in fact.value

    def test_self_nil(self):
        fact = _parse_fact("p(self=nil)")
        assert fact.oid == NIL

    def test_self_must_be_number(self):
        with pytest.raises(ParseError):
            _parse_fact('p(self="x")')


class TestErrors:
    @pytest.mark.parametrize("text", [
        "anc",                 # no parens
        "anc(",                # unterminated
        "anc(a=)",             # missing value
        "anc(a=1",             # missing close paren
        "anc(a=1) extra",      # trailing tokens
        "anc(a 1)",            # missing separator
        "anc(a={1)",           # unterminated set
        'anc(a="x)',           # unterminated string
        "(a=1)",               # missing predicate
        "anc(a=-)",            # dangling minus
    ])
    def test_malformed_facts_raise_parse_error(self, text):
        with pytest.raises(ParseError):
            _parse_fact(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            _parse_fact("anc(a=, b=2)")
        assert info.value.line == 1
        assert info.value.column >= 6

    def test_cli_renders_fact_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "tc.lg"
        path.write_text("""
associations
  anc = (a: string, d: string).
rules
  anc(a "x", d "y").
""")
        assert main(["explain", str(path), "anc(a=}"]) == 2
        err = capsys.readouterr().err
        # routed through the diagnostics renderer against the pseudo
        # file <fact>, not attributed to the source file
        assert err.startswith("<fact>:1:")
        assert "error[LG101]" in err
        assert str(path) not in err
        assert "Traceback" not in err

    def test_cli_source_errors_still_name_the_file(self, tmp_path,
                                                   capsys):
        path = tmp_path / "bad.lg"
        path.write_text("rules\n p(x X <- q.")
        assert main(["explain", str(path), "p(x=1)"]) == 2
        err = capsys.readouterr().err
        assert f"{path}:2:" in err
        assert "error[LG101]" in err
