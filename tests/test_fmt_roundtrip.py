"""``repro fmt`` round-trip guarantees.

For every paper-style example program: the canonical rendering reparses
to a structurally identical unit (spans are ignored by AST equality),
and rendering is idempotent — formatting already-formatted source is a
fixed point.
"""

import pytest

from repro.cli import main
from repro.language.parser import parse_source
from repro.language.pretty import render_source

TRANSITIVE_CLOSURE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
goal
  ?- anc(a "a", d D).
"""

CLASSES_AND_ISA = """
domains
  kind = string.
classes
  person = (name: string, age: integer).
  student = (person, school: string).
  student isa person.
associations
  advises = (prof: person, stud: student).
rules
  person(self X, name "a", age 1).
"""

DATA_FUNCTIONS = """
domains
  bdate = string.
classes
  person = (name: string, age: integer).
associations
  parent = (father: person, child: person, bdate).
functions
  children: person -> {(person: person, bdate: bdate)}.
  member(T, children(X)) <- parent(father X, child Y, bdate Z),
                            T = (person Y, bdate Z).
  junior -> {person}.
  member(X, junior) <- person(self X, age A), A <= 18.
"""

NEGATION_AND_DELETION = """
associations
  p = (x: string).
  q = (x: string).
  keep = (x: string).
rules
  keep(x X) <- p(x X), ~q(x X).
  ~p(x X) <- q(x X).
  <- q(x "forbidden").
"""

BUILTINS_AND_COLLECTIONS = """
associations
  item = (name: string, price: integer).
  cheap = (name: string).
rules
  cheap(name N) <- item(name N, price P), P < 10.
  item(name "pen", price 2).
"""

SOURCES = {
    "transitive-closure": TRANSITIVE_CLOSURE,
    "classes-and-isa": CLASSES_AND_ISA,
    "data-functions": DATA_FUNCTIONS,
    "negation-and-deletion": NEGATION_AND_DELETION,
    "builtins-and-collections": BUILTINS_AND_COLLECTIONS,
}


def render_of(text: str) -> str:
    unit = parse_source(text)
    return render_source(unit.schema(), unit.program())


@pytest.mark.parametrize("name", SOURCES)
class TestRoundTrip:
    def test_rendered_source_reparses_equivalently(self, name):
        unit = parse_source(SOURCES[name])
        rendered = render_of(SOURCES[name])
        reparsed = parse_source(rendered)
        # AST equality ignores spans, so structural identity is exact
        assert tuple(reparsed.rules) == tuple(unit.rules)
        assert reparsed.goal == unit.goal
        assert reparsed.schema().equations == unit.schema().equations
        assert reparsed.schema().isa_declarations == \
            unit.schema().isa_declarations
        assert reparsed.schema().functions == unit.schema().functions

    def test_rendering_is_idempotent(self, name):
        once = render_of(SOURCES[name])
        twice = render_of(once)
        assert once == twice


class TestFmtCommand:
    def test_fmt_output_is_its_own_fixed_point(self, tmp_path, capsys):
        path = tmp_path / "tc.lg"
        path.write_text(TRANSITIVE_CLOSURE)
        assert main(["fmt", str(path)]) == 0
        first = capsys.readouterr().out
        path.write_text(first)
        assert main(["fmt", str(path)]) == 0
        assert capsys.readouterr().out == first
