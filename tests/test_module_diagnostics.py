"""Module-application error paths and their ``LG7xx`` diagnostics."""

import pytest

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    TupleValue,
    apply_module,
    parse_schema_source,
)
from repro.analysis import Severity, check_module_application
from repro.errors import ModuleApplicationError
from repro.language.parser import parse_source


@pytest.fixture
def schema():
    return parse_schema_source("""
    associations
      italian = (n: string).
      roman = (n: string).
    """)


@pytest.fixture
def state(schema):
    edb = FactSet()
    edb.add_association("italian", TupleValue(n="sara"))
    return DatabaseState(schema, edb)


class TestGoalUnderDataVariantMode:
    GOAL_MODULE = 'rules\n  roman(n "ugo").\ngoal\n  ?- italian(n N).\n'

    @pytest.mark.parametrize("mode", [Mode.RIDV, Mode.RADV, Mode.RDDV])
    def test_rejected_with_lg701(self, state, mode):
        module = Module.from_source(self.GOAL_MODULE, name="m")
        with pytest.raises(ModuleApplicationError,
                           match="data-variant") as excinfo:
            apply_module(state, module, mode)
        exc = excinfo.value
        assert exc.diagnostic is not None
        assert exc.diagnostic.code == "LG701"
        assert exc.diagnostic.severity is Severity.ERROR

    def test_diagnostic_carries_goal_span(self, state):
        module = Module.from_source(self.GOAL_MODULE, name="m")
        diags = check_module_application(state, module, Mode.RIDV)
        (diag,) = diags
        assert diag.code == "LG701"
        assert diag.span is not None and diag.span.line == 4

    def test_state_untouched_on_rejection(self, state):
        module = Module.from_source(self.GOAL_MODULE, name="m")
        before_edb = state.edb.copy()
        before_rules = state.rules
        with pytest.raises(ModuleApplicationError):
            apply_module(state, module, Mode.RADV)
        assert state.edb == before_edb
        assert state.rules == before_rules

    @pytest.mark.parametrize("mode", [Mode.RIDI, Mode.RADI, Mode.RDDI])
    def test_data_invariant_modes_unaffected(self, state, mode):
        module = Module.from_source(self.GOAL_MODULE, name="m")
        diags = check_module_application(state, module, mode)
        # RDDI may warn (LG702) but no mode-invariant error is raised
        assert [d for d in diags if d.severity is Severity.ERROR] == []


class TestDeletionOfAbsentRule:
    def test_lg702_warning(self, state):
        module = Module.from_source(
            'rules\n  roman(n X) <- italian(n X).', name="m"
        )
        diags = check_module_application(state, module, Mode.RDDI)
        (diag,) = diags
        assert diag.code == "LG702"
        assert diag.severity is Severity.WARNING

    def test_warning_does_not_block_application(self, state):
        module = Module.from_source(
            'rules\n  roman(n X) <- italian(n X).', name="m"
        )
        result = apply_module(state, module, Mode.RDDI)
        assert result.state.rules == state.rules  # deletion was a no-op

    def test_silent_when_rule_present(self, schema):
        rule_text = 'rules\n  roman(n X) <- italian(n X).'
        rules = tuple(parse_source(rule_text).rules)
        edb = FactSet()
        edb.add_association("italian", TupleValue(n="sara"))
        state = DatabaseState(schema, edb, rules)
        module = Module.from_source(rule_text, name="m")
        assert check_module_application(state, module, Mode.RDDI) == []


class TestConsistencyRollback:
    DENIAL = 'rules\n  <- roman(n "ugo").\n'

    def test_resulting_inconsistency_lg703(self, state):
        module = Module.from_source(
            self.DENIAL + 'rules\n  roman(n "ugo").\n', name="m"
        )
        with pytest.raises(ModuleApplicationError,
                           match="inconsistent") as excinfo:
            apply_module(state, module, Mode.RADI)
        assert excinfo.value.diagnostic.code == "LG703"

    def test_rollback_leaves_state_untouched(self, state):
        module = Module.from_source(
            self.DENIAL + 'rules\n  roman(n "ugo").\n', name="m"
        )
        before_edb = state.edb.copy()
        before_rules = state.rules
        with pytest.raises(ModuleApplicationError):
            apply_module(state, module, Mode.RADI)
        assert state.edb == before_edb
        assert state.rules == before_rules

    def test_initial_inconsistency_lg704(self, schema):
        denial_rules = tuple(
            parse_source('rules\n  <- italian(n "sara").').rules
        )
        edb = FactSet()
        edb.add_association("italian", TupleValue(n="sara"))
        bad_state = DatabaseState(schema, edb, denial_rules)
        module = Module.from_source('rules\n  roman(n "ugo").', name="m")
        with pytest.raises(ModuleApplicationError,
                           match="initial") as excinfo:
            apply_module(bad_state, module, Mode.RADI)
        assert excinfo.value.diagnostic.code == "LG704"
