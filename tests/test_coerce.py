"""Tests for Python <-> LOGRES value coercion."""

from collections import Counter

import pytest

from repro import from_value, to_value
from repro.errors import ValueError_
from repro.values import (
    MultisetValue,
    Oid,
    SequenceValue,
    SetValue,
    TupleValue,
)


class TestToValue:
    def test_scalars_pass_through(self):
        assert to_value(1) == 1
        assert to_value("x") == "x"
        assert to_value(True) is True
        assert to_value(2.5) == 2.5

    def test_oids_pass_through(self):
        assert to_value(Oid(3)) == Oid(3)

    def test_dict_becomes_tuple(self):
        assert to_value({"A": 1, "b": 2}) == TupleValue(a=1, b=2)

    def test_set_becomes_setvalue(self):
        assert to_value({1, 2}) == SetValue([1, 2])
        assert to_value(frozenset({1})) == SetValue([1])

    def test_list_and_tuple_become_sequences(self):
        assert to_value([1, 2]) == SequenceValue([1, 2])
        assert to_value((1, 2)) == SequenceValue([1, 2])

    def test_counter_becomes_multiset(self):
        m = to_value(Counter({"a": 2, "b": 1}))
        assert m == MultisetValue(["a", "a", "b"])

    def test_nested_structures(self):
        value = to_value({"kids": [{"n": 1}, {"n": 2}]})
        assert value["kids"][0] == TupleValue(n=1)

    def test_existing_values_pass_through(self):
        v = SetValue([1])
        assert to_value(v) is v

    def test_uncoercible_rejected(self):
        with pytest.raises(ValueError_, match="cannot coerce"):
            to_value(object())


class TestFromValue:
    def test_round_trip_structures(self):
        original = {"a": 1, "kids": [2, 3], "tags": {"x"}}
        assert from_value(to_value(original)) == original

    def test_multiset_round_trip(self):
        original = Counter({"a": 2})
        assert from_value(to_value(original)) == original

    def test_oids_preserved(self):
        assert from_value(Oid(7)) == Oid(7)
        assert from_value(TupleValue(ref=Oid(7))) == {"ref": Oid(7)}
