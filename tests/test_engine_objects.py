"""Engine tests: classes, isa oid sharing, tuple variables, patterns."""

from repro import Engine, FactSet, Oid, TupleValue
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


UNIVERSITY = """
classes
  person = (name: string, address: string).
  school = (school_name: string, dean: professor).
  student = (person, studschool: school).
  professor = (person, course: string).
  student isa person.
  professor isa person.
associations
  advises = (prof: professor, stud: student).
  pair = (p_name: string, s_name: string).
"""


def university_edb():
    edb = FactSet()
    edb.add_object("professor", Oid(1), TupleValue(
        name="smith", address="milan", course="db"))
    edb.add_object("person", Oid(1), TupleValue(
        name="smith", address="milan"))
    edb.add_object("student", Oid(2), TupleValue(
        name="smith", address="rome", studschool=Oid(4)))
    edb.add_object("person", Oid(2), TupleValue(
        name="smith", address="rome"))
    edb.add_object("student", Oid(3), TupleValue(
        name="jones", address="pisa", studschool=Oid(4)))
    edb.add_object("person", Oid(3), TupleValue(
        name="jones", address="pisa"))
    edb.add_object("school", Oid(4), TupleValue(
        school_name="polimi", dean=Oid(1)))
    edb.add_association("advises", TupleValue(prof=Oid(1), stud=Oid(2)))
    edb.add_association("advises", TupleValue(prof=Oid(1), stud=Oid(3)))
    return edb


class TestTupleVariables:
    def test_paper_pair_rule_with_tuple_variables(self):
        """Example 3.4's pair rule, tuple-variable form: professors and
        students sharing a name, joined through advises."""
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name X, s_name X) <- professor(X1, name X),
                                      student(Y1, name X),
                                      advises(prof X1, stud Y1).
        """)
        out = Engine(schema, program).run(university_edb())
        got = sorted((f.value["p_name"], f.value["s_name"])
                     for f in out.facts_of("pair"))
        assert got == [("smith", "smith")]

    def test_paper_pair_rule_with_oid_variables(self):
        """Same rule, oid-variable form — the two are equivalent
        (Section 3.1)."""
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name X, s_name X) <- professor(self X1, name X),
                                      student(self Y1, name X),
                                      advises(prof X1, stud Y1).
        """)
        out = Engine(schema, program).run(university_edb())
        got = sorted((f.value["p_name"], f.value["s_name"])
                     for f in out.facts_of("pair"))
        assert got == [("smith", "smith")]

    def test_tuple_variable_unifies_with_oid_position(self):
        """A class tuple variable carries the oid, so it can fill an
        oid-typed association field (Example 3.1's unifications)."""
        schema, program = build(UNIVERSITY + """
        rules
          advises(prof P, stud S) <- professor(P, name "smith"),
                                     student(S, name "jones").
        """)
        out = Engine(schema, program).run(university_edb())
        got = {(f.value["prof"], f.value["stud"])
               for f in out.facts_of("advises")}
        assert (Oid(1), Oid(3)) in got


class TestPatternsAndDereferencing:
    def test_pattern_binds_oid_of_component(self):
        # school(dean(self X)) — line 5 of Example 3.1
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name N, s_name N) <- school(dean(self X)),
                                      professor(self X, name N).
        """)
        out = Engine(schema, program).run(university_edb())
        assert [f.value["p_name"] for f in out.facts_of("pair")] == \
            ["smith"]

    def test_pattern_dereferences_attributes(self):
        # reach through the dean reference into the professor's name
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name N, s_name S) <- school(dean(name N),
                                             school_name S).
        """)
        out = Engine(schema, program).run(university_edb())
        got = [(f.value["p_name"], f.value["s_name"])
               for f in out.facts_of("pair")]
        assert got == [("smith", "polimi")]

    def test_nil_reference_does_not_dereference(self):
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name N, s_name "x") <- school(dean(name N)).
        """)
        edb = FactSet()
        edb.add_object("school", Oid(9), TupleValue(
            school_name="empty", dean=Oid(0)))
        out = Engine(schema, program).run(edb)
        assert out.count("pair") == 0


class TestIsaSemantics:
    def test_attributes_carried_across_hierarchy(self):
        """Deriving person(self S) from student(self S) copies the
        shared attributes (name, address) into the person view."""
        schema, program = build(UNIVERSITY + """
        rules
          person(self S) <- student(self S).
        """)
        edb = FactSet()
        edb.add_object("student", Oid(2), TupleValue(
            name="mira", address="rome", studschool=Oid(0)))
        out = Engine(schema, program).run(edb)
        assert out.value_of("person", Oid(2)) == TupleValue(
            name="mira", address="rome")

    def test_attribute_update_merges_with_stored_value(self):
        schema, program = build("""
        classes
          person = (name: string, age: integer).
        associations
          birthday = (name: string).
        rules
          person(self S, age 31) <- person(self S, name N, age 30),
                                    birthday(name N).
        """)
        edb = FactSet()
        edb.add_object("person", Oid(1), TupleValue(name="a", age=30))
        edb.add_association("birthday", TupleValue(name="a"))
        out = Engine(schema, program).run(edb)
        assert out.value_of("person", Oid(1)) == \
            TupleValue(name="a", age=31)

    def test_self_lookup_is_indexed(self):
        schema, program = build(UNIVERSITY + """
        rules
          pair(p_name N, s_name N) <- advises(prof P, stud S),
                                      professor(self P, name N).
        """)
        out = Engine(schema, program).run(university_edb())
        assert out.count("pair") == 1
