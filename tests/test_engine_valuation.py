"""Direct unit tests of the valuation machinery (Appendix B Def. 5-6)."""

import pytest

from repro.engine.valuation import (
    MatchContext,
    Unbound,
    as_oid,
    bind,
    match_fact,
    match_literal,
    resolve_term,
    values_unify,
)
from repro.errors import BuiltinError, EvaluationError
from repro.language.ast import (
    Args,
    ArithExpr,
    CollectionTerm,
    Constant,
    Literal,
    Pattern,
    Var,
)
from repro.storage import Fact, FactSet
from repro.types import SchemaBuilder, STRING, INTEGER
from repro.values import Oid, SequenceValue, SetValue, TupleValue

X, Y = Var("X"), Var("Y")


@pytest.fixture
def ctx():
    schema = (
        SchemaBuilder()
        .clazz("person", ("name", STRING), ("age", INTEGER))
        .association("likes", ("who", "person"), ("what", STRING))
        .function("desc", [STRING], STRING)
        .build()
    )
    from repro.language.analysis import schema_with_functions

    facts = FactSet()
    facts.add_object("person", Oid(1), TupleValue(name="ann", age=30))
    facts.add_object("person", Oid(2), TupleValue(name="bob", age=20))
    facts.add_association("likes", TupleValue(who=Oid(1), what="tea"))
    facts.add_association(
        "__fn_desc", TupleValue(arg0="a", value="b")
    )
    return MatchContext(facts, schema_with_functions(schema))


class TestCoercions:
    def test_as_oid(self):
        assert as_oid(Oid(3)) == Oid(3)
        assert as_oid(TupleValue(self=Oid(3), name="x")) == Oid(3)
        assert as_oid(TupleValue(name="x")) is None
        assert as_oid("plain") is None

    def test_values_unify_object_with_oid(self):
        obj = TupleValue(self=Oid(3), name="x")
        assert values_unify(obj, Oid(3))
        assert values_unify(Oid(3), obj)
        assert not values_unify(obj, Oid(4))
        assert values_unify(1, 1)
        assert not values_unify(1, 2)

    def test_bind_upgrades_oid_to_object(self):
        obj = TupleValue(self=Oid(3), name="x")
        bindings = bind({}, X, Oid(3))
        upgraded = bind(bindings, X, obj)
        assert upgraded[X] == obj

    def test_bind_conflict_fails(self):
        bindings = bind({}, X, 1)
        assert bind(bindings, X, 2) is None

    def test_bind_same_value_reuses_dict(self):
        bindings = bind({}, X, 1)
        assert bind(bindings, X, 1) is bindings


class TestResolveTerm:
    def test_unbound_variable_raises(self, ctx):
        with pytest.raises(Unbound) as err:
            resolve_term(X, {}, ctx)
        assert err.value.var == X

    def test_arithmetic(self, ctx):
        term = ArithExpr("+", ArithExpr("*", Constant(2), Constant(3)),
                         Constant(4))
        assert resolve_term(term, {}, ctx) == 10

    def test_integer_division_stays_integral(self, ctx):
        assert resolve_term(
            ArithExpr("/", Constant(6), Constant(3)), {}, ctx
        ) == 2
        assert resolve_term(
            ArithExpr("/", Constant(7), Constant(2)), {}, ctx
        ) == 3.5

    def test_division_by_zero(self, ctx):
        with pytest.raises(BuiltinError, match="zero"):
            resolve_term(ArithExpr("/", Constant(1), Constant(0)), {}, ctx)

    def test_arithmetic_on_strings_rejected(self, ctx):
        with pytest.raises(BuiltinError, match="non-numeric"):
            resolve_term(ArithExpr("+", Constant("a"), Constant(1)), {},
                         ctx)

    def test_collection_construction(self, ctx):
        term = CollectionTerm("set", (Constant(1), X))
        assert resolve_term(term, {X: 2}, ctx) == SetValue([1, 2])
        seq = CollectionTerm("sequence", (X, Constant(1)))
        assert resolve_term(seq, {X: 2}, ctx) == SequenceValue([2, 1])

    def test_pattern_constructs_tuple(self, ctx):
        term = Pattern(Args(labeled=(("a", Constant(1)), ("b", X))))
        assert resolve_term(term, {X: "v"}, ctx) == TupleValue(a=1, b="v")

    def test_pattern_with_self_not_constructible(self, ctx):
        term = Pattern(Args(self_term=X))
        with pytest.raises(EvaluationError, match="constructed"):
            resolve_term(term, {X: Oid(1)}, ctx)

    def test_function_read_returns_set(self, ctx):
        from repro.language.ast import FunctionApp

        term = FunctionApp("desc", (Constant("a"),))
        assert resolve_term(term, {}, ctx) == SetValue(["b"])
        empty = FunctionApp("desc", (Constant("zzz"),))
        assert resolve_term(empty, {}, ctx) == SetValue()


class TestMatchLiteral:
    def test_self_bound_uses_direct_lookup(self, ctx):
        literal = Literal("person", Args(self_term=X,
                                         labeled=(("name", Y),)))
        results = list(match_literal(literal, {X: Oid(1)}, ctx))
        assert len(results) == 1
        assert results[0][Y] == "ann"

    def test_indexed_label_lookup(self, ctx):
        literal = Literal("person", Args(labeled=(("name",
                                                   Constant("bob")),
                                                  ("age", Y))))
        results = list(match_literal(literal, {}, ctx))
        assert [b[Y] for b in results] == [20]

    def test_tuple_variable_includes_self(self, ctx):
        literal = Literal("person", Args(tuple_var=X))
        results = list(match_literal(literal, {}, ctx))
        assert len(results) == 2
        assert all("self" in b[X] for b in results)

    def test_object_binding_matches_reference_field(self, ctx):
        # X bound to the whole person object; likes.who holds the oid
        person = TupleValue(self=Oid(1), name="ann", age=30)
        literal = Literal("likes", Args(labeled=(("who", X),
                                                 ("what", Y))))
        results = list(match_literal(literal, {X: person}, ctx))
        assert [b[Y] for b in results] == ["tea"]

    def test_missing_label_in_fact_no_match(self, ctx):
        ctx.facts.add_object("person", Oid(9), TupleValue(name="partial"))
        literal = Literal("person", Args(labeled=(("age", Y),)))
        ages = {b[Y] for b in match_literal(literal, {}, ctx)}
        assert ages == {20, 30}  # the partial object contributes nothing

    def test_positional_args_rejected_at_runtime(self, ctx):
        literal = Literal("person", Args(positional=(X,)))
        fact = next(ctx.facts.facts_of("person"))
        with pytest.raises(EvaluationError, match="positional"):
            match_fact(literal.args, fact, {}, ctx)


class TestPatternMatching:
    def test_pattern_dereferences_oid(self, ctx):
        inner = Pattern(Args(labeled=(("name", Y),)))
        literal = Literal("likes", Args(labeled=(("who", inner),)))
        results = list(match_literal(literal, {}, ctx))
        assert [b[Y] for b in results] == ["ann"]

    def test_pattern_self_binds_oid(self, ctx):
        inner = Pattern(Args(self_term=X))
        literal = Literal("likes", Args(labeled=(("who", inner),)))
        results = list(match_literal(literal, {}, ctx))
        assert [b[X] for b in results] == [Oid(1)]

    def test_pattern_on_nested_tuple_value(self, ctx):
        schema = (
            SchemaBuilder()
            .domain("score", (("home", INTEGER), ("guest", INTEGER)))
            .association("game", ("sc", "score"))
            .build()
        )
        facts = FactSet()
        facts.add_association(
            "game", TupleValue(sc=TupleValue(home=3, guest=1))
        )
        nested_ctx = MatchContext(facts, schema)
        inner = Pattern(Args(labeled=(("home", X),)))
        literal = Literal("game", Args(labeled=(("sc", inner),)))
        results = list(match_literal(literal, {}, nested_ctx))
        assert [b[X] for b in results] == [3]
