"""Tests for run reports, ``repro diff`` and the Chrome-trace export."""

import copy
import json

import pytest

from repro.cli import main
from repro.language.parser import parse_source
from repro.observability.chrome import chrome_trace
from repro.observability.diff import diff_reports, flatten_phases
from repro.observability.report import (
    RunReport,
    load_report,
    report_program,
)
from repro.storage.factset import FactSet

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  parent(par "a", chil "b").
  parent(par "b", chil "c").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def tc_report():
    schema, program = build(TC_SOURCE)
    return report_program(schema, program, FactSet(),
                          source_file="tc.lg")


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.lg"
    path.write_text(TC_SOURCE)
    return str(path)


class TestRunReport:
    def test_report_shape(self):
        report = tc_report()
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["kind"] == "run-report"
        assert payload["semantics"] == "inflationary"
        assert payload["stats"]["facts"] == 5
        assert len(payload["rules"]) == 4
        assert payload["schema_hash"] and payload["program_hash"]
        assert payload["phases"]["elapsed"] > 0

    def test_round_trip(self, tmp_path):
        report = tc_report()
        path = tmp_path / "report.json"
        report.write(path)
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()

    def test_hashes_stable_across_runs(self):
        a, b = tc_report(), tc_report()
        assert a.schema_hash == b.schema_hash
        assert a.program_hash == b.program_hash

    def test_future_schema_version_rejected(self, tmp_path):
        report = tc_report()
        payload = report.to_dict()
        payload["schema_version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            load_report(path)

    def test_non_report_payload_rejected(self):
        with pytest.raises(ValueError, match="not a run report"):
            RunReport.from_dict({"schema_version": 1, "kind": "other"})


class TestDiff:
    def test_identical_reports_have_no_deltas(self):
        report = tc_report()
        diff = diff_reports(report, report, strict_counts=True)
        assert diff.deltas == []
        assert diff.regressions() == []

    def test_count_change_is_informational_by_default(self):
        a = tc_report()
        b = RunReport.from_dict(copy.deepcopy(a.to_dict()))
        b.rules[0]["fires"] += 3
        diff = diff_reports(a, b)
        (delta,) = [d for d in diff.deltas if d.kind == "count"]
        assert delta.metric == "fires" and delta.delta == 3
        assert not delta.regression

    def test_count_change_regresses_under_strict(self):
        a = tc_report()
        b = RunReport.from_dict(copy.deepcopy(a.to_dict()))
        b.stats["iterations"] += 1
        diff = diff_reports(a, b, strict_counts=True)
        assert len(diff.regressions()) == 1

    def test_injected_2x_slowdown_is_flagged(self):
        a = tc_report()
        b = RunReport.from_dict(copy.deepcopy(a.to_dict()))
        # inflate every time column 2x, keeping counts identical;
        # lift the baseline above the jitter floor first
        a.stats["time_total_ms"] = 100.0
        b.stats["time_total_ms"] = 200.0
        diff = diff_reports(a, b, threshold=0.25, min_time_ms=1.0)
        bad = diff.regressions()
        assert bad and bad[0].metric == "total_ms"
        assert bad[0].ratio == pytest.approx(2.0)

    def test_sub_jitter_slowdown_not_flagged(self):
        a = tc_report()
        b = RunReport.from_dict(copy.deepcopy(a.to_dict()))
        a.stats["time_total_ms"] = 0.2
        b.stats["time_total_ms"] = 0.6  # 3x but only +0.4 ms
        diff = diff_reports(a, b, threshold=0.25, min_time_ms=1.0)
        assert diff.regressions() == []

    def test_program_change_noted_and_not_strict(self):
        a = tc_report()
        b = RunReport.from_dict(copy.deepcopy(a.to_dict()))
        b.program_hash = "deadbeef"
        b.stats["facts"] = 99
        diff = diff_reports(a, b, strict_counts=True)
        assert not diff.comparable
        assert any("program hashes differ" in n for n in diff.notes)
        # count deltas reported but not promoted to regressions
        assert diff.regressions() == []

    def test_flatten_phases(self):
        tree = {
            "elapsed": 0.01, "count": 1,
            "children": {"fixpoint": {"elapsed": 0.008, "count": 1}},
        }
        flat = flatten_phases(tree)
        assert flat["total"] == pytest.approx(10.0)
        assert flat["total/fixpoint"] == pytest.approx(8.0)


class TestChromeTrace:
    def test_events_nest_and_sum(self):
        report = tc_report()
        doc = chrome_trace(report.phases)
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["name"] == "total"
        assert complete[0]["ts"] == 0.0
        for event in complete:
            assert event["dur"] >= 0
        # children start within the parent's span
        total = complete[0]
        for child in complete[1:]:
            assert child["ts"] >= total["ts"]
            assert child["ts"] + child["dur"] <= \
                total["ts"] + total["dur"] + 1e-6

    def test_empty_tree_is_loadable(self):
        doc = chrome_trace({})
        assert doc["traceEvents"][0]["ph"] == "M"  # metadata only


class TestCLI:
    def test_run_report_out(self, tc_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", tc_file, "--report-out", str(out)]) == 0
        report = load_report(out)
        assert report.stats["facts"] == 5
        assert report.source_file == tc_file
        assert report.kernel == "incremental"

    def test_run_chrome_out(self, tc_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["run", tc_file, "--chrome-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "total" in names and "fixpoint" in names

    def test_profile_chrome_out(self, tc_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["profile", tc_file, "--chrome-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_diff_identical_exits_zero(self, tc_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", tc_file, "--report-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["diff", str(out), str(out),
                     "--strict-counts"]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_flags_regression(self, tc_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", tc_file, "--report-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        payload["stats"]["time_total_ms"] = 100.0
        doctored = tmp_path / "slow.json"
        payload2 = copy.deepcopy(payload)
        payload2["stats"]["time_total_ms"] = 200.0
        base = tmp_path / "base.json"
        base.write_text(json.dumps(payload))
        doctored.write_text(json.dumps(payload2))
        capsys.readouterr()
        assert main(["diff", str(base), str(doctored)]) == 1
        assert "!!" in capsys.readouterr().out

    def test_diff_json_format(self, tc_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", tc_file, "--report-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["diff", str(out), str(out), "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "report-diff"
        assert payload["schema_version"] == 1
        assert payload["deltas"] == []

    def test_diff_bad_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["diff", str(missing), str(missing)]) == 2


class TestBenchTelemetry:
    def test_row_format_and_append(self, tmp_path, monkeypatch):
        import benchmarks.telemetry as telemetry

        class Stats:
            min = 0.001
            mean = 0.002
            stddev = 0.0001
            rounds = 7

        class Meta:
            name = "test_x[50]"
            group = "e01-transitive-closure"
            has_error = False
            stats = Stats()

        monkeypatch.setattr(telemetry, "ROOT", tmp_path)
        # identical back-to-back sessions replace the trailing block
        # instead of stacking a duplicate
        for _ in range(2):
            touched = telemetry.append_rows([Meta()])
        assert touched == [tmp_path / "BENCH_e01.json"]
        rows = telemetry.read_rows(tmp_path / "BENCH_e01.json")
        assert len(rows) == 1
        for row in rows:
            assert row["schema_version"] == 1
            assert row["kind"] == "bench-row"
            assert row["exp"] == "e01"
            assert row["min_ms"] == pytest.approx(1.0)
            assert row["config"] is None

    def test_append_stacks_when_config_differs(self, tmp_path,
                                               monkeypatch):
        import benchmarks.telemetry as telemetry

        class Stats:
            min = 0.001
            mean = 0.002
            stddev = 0.0001
            rounds = 7

        def meta(plan):
            class Meta:
                name = "test_x[50]"
                group = "e01-transitive-closure"
                has_error = False
                stats = Stats()
                extra_info = {"config": {"plan": plan}}
            return Meta()

        monkeypatch.setattr(telemetry, "ROOT", tmp_path)
        telemetry.append_rows([meta(True)])
        telemetry.append_rows([meta(False)])  # different row set: stacks
        rows = telemetry.read_rows(tmp_path / "BENCH_e01.json")
        assert len(rows) == 2
        assert [r["config"]["plan"] for r in rows] == [True, False]

    def test_reference_report_counts_deterministic(self):
        import benchmarks.telemetry as telemetry

        a = telemetry.reference_report()
        b = telemetry.reference_report()
        diff = diff_reports(a, b, strict_counts=True)
        assert [d for d in diff.deltas if d.kind == "count"] == []
