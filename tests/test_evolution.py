"""Tests for the Evolution (module-application sequence) API."""

import pytest

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    TupleValue,
    parse_schema_source,
)
from repro.errors import ModuleApplicationError
from repro.modules import Evolution


@pytest.fixture
def evolution():
    schema = parse_schema_source("""
    associations
      italian = (n: string).
      roman = (n: string).
    """)
    edb = FactSet()
    edb.add_association("italian", TupleValue(n="sara"))
    return Evolution(DatabaseState(schema, edb))


def module(text, name):
    return Module.from_source(text, name=name)


ADD_LUCA = 'rules\n  italian(n "luca").'
ADD_UGO = 'rules\n  roman(n "ugo").\n  italian(X) <- roman(X).'
BAD = 'rules\n  roman(n "sara").\n  <- italian(n X), roman(n X).'


class TestBasicEvolution:
    def test_apply_advances_and_logs(self, evolution):
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        evolution.apply(module(ADD_UGO, "m2"), Mode.RIDV)
        assert evolution.version == 2
        names = {f.value["n"]
                 for f in evolution.state.edb.facts_of("italian")}
        assert names == {"sara", "luca", "ugo"}
        assert [s.module_name for s in evolution.log] == ["m1", "m2"]
        assert evolution.log[0].facts_after == 2

    def test_rejected_application_does_not_commit(self, evolution):
        with pytest.raises(ModuleApplicationError):
            evolution.apply(module(BAD, "bad"), Mode.RADV)
        assert evolution.version == 0
        assert evolution.state.edb.count() == 1

    def test_state_at_returns_history(self, evolution):
        initial = evolution.state
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        assert evolution.state_at(0) is initial
        assert evolution.state_at(1) is evolution.state
        with pytest.raises(IndexError):
            evolution.state_at(5)


class TestAtomicSequences:
    def test_apply_all_commits_everything(self, evolution):
        results = evolution.apply_all([
            (module(ADD_LUCA, "m1"), Mode.RIDV),
            (module(ADD_UGO, "m2"), Mode.RIDV),
        ])
        assert len(results) == 2
        assert evolution.version == 2

    def test_apply_all_rolls_back_on_failure(self, evolution):
        evolution.apply(module(ADD_LUCA, "m0"), Mode.RIDV)
        with pytest.raises(ModuleApplicationError):
            evolution.apply_all([
                (module(ADD_UGO, "m1"), Mode.RIDV),
                (module(BAD, "m2"), Mode.RADV),
            ])
        # the partial first step was rolled back too
        assert evolution.version == 1
        names = {f.value["n"]
                 for f in evolution.state.edb.facts_of("italian")}
        assert names == {"sara", "luca"}


class TestRollback:
    def test_rollback_discards_later_history(self, evolution):
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        evolution.apply(module(ADD_UGO, "m2"), Mode.RIDV)
        evolution.rollback(1)
        assert evolution.version == 1
        names = {f.value["n"]
                 for f in evolution.state.edb.facts_of("italian")}
        assert names == {"sara", "luca"}

    def test_rollback_to_initial(self, evolution):
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        evolution.rollback(0)
        assert evolution.version == 0
        assert evolution.state.edb.count() == 1

    def test_evolution_continues_after_rollback(self, evolution):
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        evolution.rollback(0)
        evolution.apply(module(ADD_UGO, "m2"), Mode.RIDV)
        assert evolution.version == 1
        assert [s.module_name for s in evolution.log] == ["m2"]


class TestLogRendering:
    def test_step_repr_shows_deltas(self, evolution):
        evolution.apply(module(ADD_LUCA, "m1"), Mode.RIDV)
        text = repr(evolution.log[0])
        assert "RIDV" in text and "m1" in text and "+1" in text

    def test_evolution_repr(self, evolution):
        assert "version 0" in repr(evolution)
