"""Unit tests for schemas: validation, effective types, isa hierarchies."""

import pytest

from repro.errors import IsaError, SchemaError, TypeEquationError
from repro.types import (
    INTEGER,
    STRING,
    NamedType,
    SchemaBuilder,
    SetType,
)


def simple_builder():
    return (
        SchemaBuilder()
        .domain("name", STRING)
        .clazz("person", ("name", "name"), ("address", STRING))
    )


class TestSchemaBuilder:
    def test_duplicate_equation_rejected(self):
        b = simple_builder()
        with pytest.raises(TypeEquationError, match="duplicate"):
            b.domain("name", INTEGER)

    def test_unknown_reference_rejected(self):
        b = SchemaBuilder().clazz("person", ("name", "missing"))
        with pytest.raises(SchemaError, match="unknown type"):
            b.build()

    def test_elementary_shadowing_rejected(self):
        b = SchemaBuilder().domain("integer", STRING)
        with pytest.raises(TypeEquationError, match="shadows"):
            b.build()

    def test_names_are_case_insensitive(self):
        schema = (
            SchemaBuilder()
            .domain("NAME", STRING)
            .clazz("Person", ("Name", "NAME"))
            .build()
        )
        assert schema.is_class("PERSON")
        assert schema.is_domain("name")

    def test_set_shorthand(self):
        schema = (
            SchemaBuilder()
            .clazz("player", ("roles", {INTEGER}))
            .build()
        )
        assert schema.effective_type("player").field("roles").type == \
            SetType(INTEGER)

    def test_kind_predicates(self):
        schema = (
            simple_builder()
            .association("likes", ("who", "person"), ("what", STRING))
            .build()
        )
        assert schema.is_association("likes")
        assert not schema.is_association("person")
        assert schema.predicate_names == ["person", "likes"]

    def test_kind_of_unknown_raises(self):
        schema = simple_builder().build()
        with pytest.raises(SchemaError, match="unknown"):
            schema.kind_of("ghost")


class TestDomainRestrictions:
    def test_domain_may_not_reference_class(self):
        b = (
            simple_builder()
            .domain("bad", NamedType("person"))
        )
        with pytest.raises(TypeEquationError, match="domains may only"):
            b.build()

    def test_domain_chain_is_legal(self):
        schema = (
            SchemaBuilder()
            .domain("name", STRING)
            .domain("nickname", "name")
            .build()
        )
        assert schema.is_domain("nickname")


class TestAssociationRestrictions:
    def test_association_cannot_nest_association(self):
        b = (
            SchemaBuilder()
            .association("a", ("x", INTEGER))
            .association("b", ("inner", "a"))
        )
        with pytest.raises(TypeEquationError, match="cannot be nested"):
            b.build()

    def test_class_may_alias_association_at_top_level(self):
        # Example 3.4: "Classes section: IP = PAIR"
        schema = (
            SchemaBuilder()
            .association("pair", ("employee", STRING), ("manager", STRING))
            .clazz("ip", "pair")
            .build()
        )
        eff = schema.effective_type("ip")
        assert set(eff.labels) == {"employee", "manager"}

    def test_class_may_not_nest_association(self):
        b = (
            SchemaBuilder()
            .association("pair", ("e", STRING))
            .clazz("bad", ("p", "pair"), ("x", INTEGER))
        )
        with pytest.raises(TypeEquationError, match="cannot be nested"):
            b.build()


class TestIsaHierarchies:
    def build_university(self):
        return (
            SchemaBuilder()
            .domain("name", STRING)
            .clazz("person", ("name", "name"), ("address", STRING))
            .clazz("student", ("person", "person"), ("school", STRING))
            .clazz("professor", ("person", "person"), ("course", STRING))
            .isa("student", "person")
            .isa("professor", "person")
            .build()
        )

    def test_effective_type_flattens_inheritance(self):
        schema = self.build_university()
        assert set(schema.effective_type("student").labels) == {
            "name", "address", "school"
        }

    def test_superclasses_and_subclasses(self):
        schema = self.build_university()
        assert schema.superclasses("student") == ["person"]
        assert sorted(schema.subclasses("person")) == [
            "professor", "student"
        ]

    def test_is_subclass_is_reflexive_transitive(self):
        schema = self.build_university()
        assert schema.is_subclass("student", "student")
        assert schema.is_subclass("student", "person")
        assert not schema.is_subclass("person", "student")

    def test_hierarchy_root(self):
        schema = self.build_university()
        assert schema.hierarchy_root("student") == "person"
        assert schema.hierarchy_root("person") == "person"
        assert schema.same_hierarchy("student", "professor")

    def test_isa_cycle_rejected(self):
        b = (
            SchemaBuilder()
            .clazz("a", ("x", INTEGER))
            .clazz("b", ("a", "a"))
            .isa("a", "b")
            .isa("b", "a")
        )
        with pytest.raises(IsaError):
            b.build()

    def test_reflexive_isa_rejected(self):
        b = SchemaBuilder().clazz("a", ("x", INTEGER)).isa("a", "a")
        with pytest.raises(IsaError, match="reflexive"):
            b.build()

    def test_isa_between_non_classes_rejected(self):
        b = (
            SchemaBuilder()
            .domain("d", STRING)
            .clazz("c", ("x", INTEGER))
            .isa("c", "d")
        )
        with pytest.raises(IsaError, match="not a class"):
            b.build()

    def test_isa_requires_occurrence_in_rhs(self):
        b = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("student", ("school", STRING))
            .isa("student", "person")
        )
        with pytest.raises(IsaError, match="no occurrence"):
            b.build()

    def test_multiple_inheritance_needs_common_ancestor(self):
        # two disjoint roots cannot be combined (Section 2.1)
        b = (
            SchemaBuilder()
            .clazz("vehicle", ("wheels", INTEGER))
            .clazz("animal", ("legs", INTEGER))
            .clazz("chimera", ("vehicle", "vehicle"), ("animal", "animal"))
            .isa("chimera", "vehicle")
            .isa("chimera", "animal")
        )
        with pytest.raises(IsaError, match="multiple hierarchies"):
            b.build()

    def test_multiple_inheritance_with_common_ancestor(self):
        schema = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("student", ("person", "person"), ("school", STRING))
            .clazz("employee", ("person", "person"), ("firm", STRING))
            .clazz(
                "working_student",
                ("student", "student"), ("employee", "employee"),
            )
            .isa("student", "person")
            .isa("employee", "person")
            .isa("working_student", "student")
            .isa("working_student", "employee")
            .build()
        )
        eff = schema.effective_type("working_student")
        # 'name' inherited twice: the second occurrence is renamed
        assert "name" in eff.labels
        assert "school" in eff.labels
        assert "firm" in eff.labels
        assert schema.hierarchy_root("working_student") == "person"

    def test_labeled_isa_selects_occurrence(self):
        # the paper's EMPL emp ISA PERSON
        schema = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("empl", ("emp", "person"), ("manager", "person"))
            .isa("empl", "person", label="emp")
            .build()
        )
        eff = schema.effective_type("empl")
        assert "name" in eff.labels        # inherited through emp
        assert "manager" in eff.labels     # still an oid reference
        assert eff.field("manager").type == NamedType("person")

    def test_labeled_isa_with_wrong_label_rejected(self):
        b = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("empl", ("emp", "person"))
            .isa("empl", "person", label="boss")
        )
        with pytest.raises(IsaError, match="no component labeled"):
            b.build()


class TestReferenceFields:
    def test_reference_fields_lists_class_references(self):
        schema = (
            SchemaBuilder()
            .clazz("team", ("tname", STRING))
            .association(
                "game", ("home", "team"), ("guest", "team"),
                ("day", STRING),
            )
            .build()
        )
        refs = schema.reference_fields("game")
        assert sorted(f.label for f in refs) == ["guest", "home"]

    def test_field_type_resolves_labels(self):
        schema = simple_builder().build()
        assert schema.field_type("person", "address") == STRING
        with pytest.raises(SchemaError, match="no argument labeled"):
            schema.field_type("person", "ghost")


class TestSchemaComposition:
    def test_union_merges_and_rejects_conflicts(self):
        s1 = SchemaBuilder().clazz("a", ("x", INTEGER)).build()
        s2 = SchemaBuilder().clazz("b", ("y", STRING)).build()
        merged = s1.union(s2)
        assert merged.is_class("a") and merged.is_class("b")
        s3 = SchemaBuilder().clazz("a", ("x", STRING)).build()
        with pytest.raises(SchemaError, match="conflicting"):
            s1.union(s3)

    def test_difference_drops_equations_and_isa(self):
        full = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("student", ("person", "person"), ("school", STRING))
            .isa("student", "person")
            .build()
        )
        fragment = (
            SchemaBuilder()
            .clazz("person", ("name", STRING))
            .clazz("student", ("person", "person"), ("school", STRING))
            .isa("student", "person")
            .build()
        )
        left = full.difference(fragment)
        assert left.class_names == []

    def test_recursive_class_equation_through_inheritance_rejected(self):
        b = (
            SchemaBuilder()
            .clazz("a", ("a", "a"))
            .isa("a", "a")
        )
        with pytest.raises(IsaError):
            b.build()
