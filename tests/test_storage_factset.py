"""Unit tests for fact sets and the Appendix B set algebra."""

import pytest

from repro.errors import StorageError
from repro.storage import Fact, FactSet
from repro.storage.factset import require_factset
from repro.values import Oid, TupleValue


def assoc(pred, **kw):
    return Fact(pred, TupleValue(kw))


def obj(pred, oid, **kw):
    return Fact(pred, TupleValue(kw), Oid(oid))


class TestBasicMutation:
    def test_add_association_fact(self):
        fs = FactSet()
        assert fs.add(assoc("p", x=1))
        assert not fs.add(assoc("p", x=1))  # duplicate
        assert fs.count("p") == 1
        assert assoc("p", x=1) in fs

    def test_add_class_fact_overwrites_same_oid(self):
        fs = FactSet()
        fs.add(obj("c", 1, name="a"))
        assert fs.add(obj("c", 1, name="b"))  # changed
        assert fs.value_of("c", Oid(1)) == TupleValue(name="b")
        assert fs.count("c") == 1

    def test_discard_exact_match_only(self):
        fs = FactSet.from_facts([obj("c", 1, name="a")])
        assert not fs.discard(obj("c", 1, name="zzz"))
        assert fs.discard(obj("c", 1, name="a"))
        assert fs.count() == 0

    def test_discard_oid_ignores_value(self):
        fs = FactSet.from_facts([obj("c", 1, name="a")])
        assert fs.discard_oid("c", Oid(1))
        assert not fs.discard_oid("c", Oid(1))

    def test_add_helpers(self):
        fs = FactSet()
        fs.add_association("p", TupleValue(x=1))
        fs.add_object("C", Oid(1), TupleValue(name="a"))
        assert fs.count() == 2
        assert fs.has_oid("c", Oid(1))  # predicate names normalize


class TestQueries:
    def test_facts_of_mixes_nothing(self):
        fs = FactSet.from_facts([assoc("p", x=1), obj("c", 1, y=2)])
        assert {f.pred for f in fs.facts()} == {"p", "c"}
        assert len(list(fs.facts_of("p"))) == 1

    def test_predicates_sorted(self):
        fs = FactSet.from_facts([assoc("z", x=1), assoc("a", x=1)])
        assert fs.predicates() == ["a", "z"]

    def test_oids_of(self):
        fs = FactSet.from_facts([obj("c", 1), obj("c", 2)])
        assert fs.oids_of("c") == {Oid(1), Oid(2)}

    def test_lookup_by_label_uses_index(self):
        fs = FactSet.from_facts(
            [assoc("p", x=i, y=i % 2) for i in range(10)]
        )
        hits = fs.lookup("p", "y", 1)
        assert len(hits) == 5
        assert all(f.value["y"] == 1 for f in hits)

    def test_lookup_by_self_pseudo_label(self):
        fs = FactSet.from_facts([obj("c", 7, name="a")])
        hits = fs.lookup("c", "self", Oid(7))
        assert len(hits) == 1 and hits[0].oid == Oid(7)

    def test_index_invalidated_on_mutation(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        assert len(fs.lookup("p", "x", 1)) == 1
        fs.add(assoc("p", y=9, x=1))
        assert len(fs.lookup("p", "x", 1)) == 2


class TestIncrementalIndexes:
    """The (label → value → facts) indexes are maintained in place by
    ``add`` / ``discard`` / ``discard_oid`` and survive ``copy()``."""

    def test_copy_carries_indexes_without_rescan(self, monkeypatch):
        fs = FactSet.from_facts([assoc("p", x=i) for i in range(5)])
        assert len(fs.lookup("p", "x", 3)) == 1  # build the index
        clone = fs.copy()

        def explode(self, pred):
            raise AssertionError("copy() forced an index rebuild scan")

        monkeypatch.setattr(FactSet, "facts_of", explode)
        assert len(clone.lookup("p", "x", 3)) == 1

    def test_copied_index_is_independent(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        fs.lookup("p", "x", 1)
        clone = fs.copy()
        clone.add(assoc("p", x=2))
        assert len(clone.lookup("p", "x", 2)) == 1
        assert fs.lookup("p", "x", 2) == []

    def test_add_maintains_index_in_place(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        fs.lookup("p", "x", 1)
        index_before = fs._indexes["p"]
        fs.add(assoc("p", x=2))
        assert fs._indexes["p"] is index_before  # no wholesale pop
        assert len(fs.lookup("p", "x", 2)) == 1

    def test_discard_maintains_index(self):
        fs = FactSet.from_facts([assoc("p", x=1), assoc("p", x=2)])
        fs.lookup("p", "x", 1)
        fs.discard(assoc("p", x=1))
        assert fs.lookup("p", "x", 1) == []
        assert len(fs.lookup("p", "x", 2)) == 1

    def test_discard_oid_on_indexed_predicate(self):
        fs = FactSet.from_facts(
            [obj("c", 1, name="a"), obj("c", 2, name="b")]
        )
        assert len(fs.lookup("c", "name", "a")) == 1
        assert len(fs.lookup("c", "self", Oid(1))) == 1
        assert fs.discard_oid("c", Oid(1))
        assert fs.lookup("c", "name", "a") == []
        assert fs.lookup("c", "self", Oid(1)) == []
        assert len(fs.lookup("c", "name", "b")) == 1

    def test_ovalue_overwrite_replaces_index_entries(self):
        fs = FactSet.from_facts([obj("c", 1, name="old")])
        fs.lookup("c", "name", "old")
        fs.lookup("c", "self", Oid(1))
        fs.add(obj("c", 1, name="new"))
        assert fs.lookup("c", "name", "old") == []
        hits = fs.lookup("c", "name", "new")
        assert len(hits) == 1 and hits[0].oid == Oid(1)
        by_self = fs.lookup("c", "self", Oid(1))
        assert len(by_self) == 1
        assert by_self[0].value == TupleValue(name="new")

    def test_compose_and_minus_results_serve_correct_lookups(self):
        left = FactSet.from_facts(
            [assoc("p", x=1, y="a"), assoc("p", x=2, y="b")]
        )
        right = FactSet.from_facts([assoc("p", x=3, y="a")])
        left.lookup("p", "y", "a")  # live index carried through compose
        merged = left.compose(right)
        assert {f.value["x"] for f in merged.lookup("p", "y", "a")} == {1, 3}
        remainder = merged.minus(right)
        assert {f.value["x"] for f in remainder.lookup("p", "y", "a")} == {1}

    def test_label_built_after_mutations_is_correct(self):
        fs = FactSet.from_facts([assoc("p", x=1, y="a")])
        fs.lookup("p", "x", 1)  # builds only the x label
        fs.add(assoc("p", x=2, y="b"))
        fs.discard(assoc("p", x=1, y="a"))
        assert [f.value["x"] for f in fs.lookup("p", "y", "b")] == [2]
        assert fs.lookup("p", "y", "a") == []


class TestSetAlgebra:
    def test_compose_right_bias_on_oid_conflict(self):
        left = FactSet.from_facts([obj("c", 1, name="old")])
        right = FactSet.from_facts([obj("c", 1, name="new")])
        merged = left.compose(right)
        assert merged.value_of("c", Oid(1)) == TupleValue(name="new")

    def test_compose_is_noncommutative(self):
        left = FactSet.from_facts([obj("c", 1, name="a")])
        right = FactSet.from_facts([obj("c", 1, name="b")])
        assert left.compose(right) != right.compose(left)

    def test_union_inflationary_left_bias(self):
        left = FactSet.from_facts([obj("c", 1, name="keep")])
        right = FactSet.from_facts([obj("c", 1, name="drop")])
        merged = left.union_inflationary(right)
        assert merged.value_of("c", Oid(1)) == TupleValue(name="keep")

    def test_minus_exact_facts(self):
        base = FactSet.from_facts([assoc("p", x=1), assoc("p", x=2)])
        delta = FactSet.from_facts([assoc("p", x=1)])
        assert [f.value["x"] for f in base.minus(delta).facts_of("p")] == [2]

    def test_intersection(self):
        a = FactSet.from_facts([assoc("p", x=1), assoc("p", x=2)])
        b = FactSet.from_facts([assoc("p", x=2), assoc("p", x=3)])
        inter = a.intersection(b)
        assert [f.value["x"] for f in inter.facts_of("p")] == [2]

    def test_equality_ignores_empty_tables(self):
        a = FactSet()
        a.add(assoc("p", x=1))
        a.discard(assoc("p", x=1))
        assert a == FactSet()

    def test_factset_unhashable(self):
        with pytest.raises(TypeError):
            hash(FactSet())


class TestUndoJournal:
    def test_rollback_undoes_adds(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        mark = fs.begin_journal()
        fs.add(assoc("p", x=2))
        fs.add(obj("c", 1, name="a"))
        assert fs.rollback_to(mark) == 2
        assert fs == FactSet.from_facts([assoc("p", x=1)])
        assert fs.journaling  # still active for the enclosing scope

    def test_rollback_undoes_discards(self):
        fs = FactSet.from_facts([assoc("p", x=1), obj("c", 1, name="a")])
        mark = fs.begin_journal()
        fs.discard(assoc("p", x=1))
        fs.discard_oid("c", Oid(1))
        fs.rollback_to(mark)
        assert assoc("p", x=1) in fs
        assert fs.value_of("c", Oid(1)) == TupleValue(name="a")

    def test_rollback_restores_overwritten_ovalue(self):
        fs = FactSet.from_facts([obj("c", 1, name="old")])
        mark = fs.begin_journal()
        fs.add(obj("c", 1, name="new"))
        fs.rollback_to(mark)
        assert fs.value_of("c", Oid(1)) == TupleValue(name="old")

    def test_rollback_restores_max_oid_bound(self):
        fs = FactSet.from_facts([obj("c", 1)])
        mark = fs.begin_journal()
        fs.add(obj("c", 9))
        fs.rollback_to(mark)
        assert fs.max_oid_number() == 1

    def test_noop_mutations_journal_nothing(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        mark = fs.begin_journal()
        fs.add(assoc("p", x=1))  # duplicate
        fs.discard(assoc("p", x=99))  # absent
        assert fs.rollback_to(mark) == 0

    def test_nested_marks(self):
        fs = FactSet()
        outer = fs.begin_journal()
        fs.add(assoc("p", x=1))
        inner = fs.begin_journal()
        fs.add(assoc("p", x=2))
        fs.rollback_to(inner)
        assert fs.count("p") == 1
        fs.rollback_to(outer)
        assert fs.count("p") == 0

    def test_rollback_maintains_indexes(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        fs.lookup("p", "x", 1)  # build the label index
        mark = fs.begin_journal()
        fs.add(assoc("p", x=2))
        fs.rollback_to(mark)
        assert [f.value["x"] for f in fs.lookup("p", "x", 1)] == [1]
        assert fs.lookup("p", "x", 2) == []

    def test_end_journal_commits(self):
        fs = FactSet()
        fs.begin_journal()
        fs.add(assoc("p", x=1))
        fs.end_journal()
        assert not fs.journaling
        assert fs.count("p") == 1

    def test_rollback_without_journal_raises(self):
        with pytest.raises(StorageError, match="without an active"):
            FactSet().rollback_to((0, 0))

    def test_copy_drops_the_journal(self):
        fs = FactSet()
        fs.begin_journal()
        clone = fs.copy()
        assert not clone.journaling


class TestConversion:
    def test_to_instance_merges_hierarchy_values(self):
        fs = FactSet()
        fs.add(obj("person", 1, name="luca"))
        fs.add(obj("student", 1, name="luca", year=2))
        inst = fs.to_instance()
        assert inst.pi["person"] == {Oid(1)}
        assert inst.nu[Oid(1)] == TupleValue(name="luca", year=2)

    def test_max_oid_number_scans_nested_values(self):
        fs = FactSet()
        fs.add(assoc("likes", who=Oid(9), what="x"))
        fs.add(obj("c", 3))
        assert fs.max_oid_number() == 9

    def test_copy_is_independent(self):
        fs = FactSet.from_facts([assoc("p", x=1)])
        clone = fs.copy()
        clone.add(assoc("p", x=2))
        assert fs.count() == 1

    def test_require_factset(self):
        fs = FactSet()
        assert require_factset(fs) is fs
        with pytest.raises(StorageError):
            require_factset({"not": "a factset"})
