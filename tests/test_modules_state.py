"""Tests for DatabaseState payloads and evaluation-program assembly."""

from repro import (
    DatabaseState,
    FactSet,
    Module,
    TupleValue,
    materialize,
    parse_schema_source,
)
from repro.language.parser import parse_program


def make_state():
    schema = parse_schema_source("""
    classes
      person = (name: string).
      student = (person, school: string).
      student isa person.
    associations
      parent = (par: string, chil: string).
    """)
    edb = FactSet()
    edb.add_association("parent", TupleValue(par="a", chil="b"))
    rules = parse_program("""
      parent(par "b", chil "c").
      <- parent(par X, chil X).
    """).rules
    return DatabaseState(schema, edb, rules)


class TestPayloadRoundTrip:
    def test_to_from_payload(self):
        state = make_state()
        restored = DatabaseState.from_payload(state.to_payload())
        assert restored.edb == state.edb
        assert restored.rules == state.rules
        assert restored.schema.equations == state.schema.equations
        assert restored.schema.isa_declarations == \
            state.schema.isa_declarations


class TestRulePartitions:
    def test_denials_separated_from_persistent_rules(self):
        state = make_state()
        assert len(state.persistent_rules()) == 1
        assert len(state.denials()) == 1

    def test_evaluation_program_includes_isa_propagation(self):
        state = make_state()
        program = state.evaluation_program()
        names = [r.name for r in program.rules]
        assert "isa:student->person" in names
        # the denial is never part of the evaluation program
        assert not any(r.is_denial for r in program.rules)

    def test_extra_rules_joined_without_denials(self):
        state = make_state()
        extra = parse_program("""
          parent(par "c", chil "d").
          <- parent(par "zz").
        """).rules
        program = state.evaluation_program(extra_rules=extra)
        assert not any(r.is_denial for r in program.rules)
        assert len(program.rules) == 3  # 1 persistent + 1 extra + 1 isa


class TestCopySemantics:
    def test_copy_isolates_edb(self):
        state = make_state()
        clone = state.copy()
        clone.edb.add_association("parent",
                                  TupleValue(par="x", chil="y"))
        assert state.edb.count("parent") == 1

    def test_materialize_does_not_touch_state(self):
        state = make_state()
        before = state.edb.copy()
        materialize(state)
        assert state.edb == before

    def test_repr(self):
        assert "extensional facts" in repr(make_state())
