"""Unit tests for instances ``(π, ν, ρ)`` (Appendix A, Definition 4)."""

import pytest

from repro.errors import OidError, ValueError_
from repro.types import INTEGER, STRING, SchemaBuilder
from repro.values import NIL, Instance, Oid, TupleValue


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .clazz("person", ("name", STRING))
        .clazz("student", ("person", "person"), ("year", INTEGER))
        .clazz("team", ("captain", "person"))
        .association("likes", ("who", "person"), ("whom", "person"))
        .isa("student", "person")
        .build()
    )


def valid_instance():
    sara, luca = Oid(1), Oid(2)
    return Instance(
        pi={"person": {sara, luca}, "student": {luca}},
        nu={
            sara: TupleValue(name="sara"),
            luca: TupleValue(name="luca", year=3),
        },
        rho={"likes": {TupleValue(who=sara, whom=luca)}},
    )


class TestValidInstances:
    def test_valid_instance_passes(self, schema):
        valid_instance().validate(schema)

    def test_accessors(self, schema):
        inst = valid_instance()
        assert inst.objects("person") == {Oid(1), Oid(2)}
        assert inst.objects("ghost") == set()
        assert inst.value_of(Oid(1))["name"] == "sara"
        assert len(inst.tuples("likes")) == 1
        assert inst.all_oids() == {Oid(1), Oid(2)}
        assert inst.fact_count() == 4

    def test_value_of_unknown_oid_raises(self):
        with pytest.raises(OidError):
            valid_instance().value_of(Oid(99))

    def test_copy_is_deep_for_containers(self, schema):
        inst = valid_instance()
        clone = inst.copy()
        clone.pi["person"].add(Oid(9))
        assert Oid(9) not in inst.pi["person"]

    def test_nil_reference_in_class_is_legal(self, schema):
        inst = Instance(
            pi={"team": {Oid(5)}},
            nu={Oid(5): TupleValue(captain=NIL)},
        )
        inst.validate(schema)


class TestConditionA_IsaSubset:
    def test_student_missing_from_person_rejected(self, schema):
        inst = valid_instance()
        inst.pi["person"].discard(Oid(2))
        inst.pi["student"] = {Oid(2)}
        with pytest.raises(OidError, match="superclass"):
            inst.validate(schema)


class TestConditionB_HierarchyPartition:
    def test_oid_in_two_hierarchies_rejected(self):
        schema = (
            SchemaBuilder()
            .clazz("animal", ("legs", INTEGER))
            .clazz("robot", ("volts", INTEGER))
            .build()
        )
        inst = Instance(
            pi={"animal": {Oid(1)}, "robot": {Oid(1)}},
            nu={Oid(1): TupleValue(legs=4, volts=12)},
        )
        with pytest.raises(OidError, match="partition"):
            inst.validate(schema)

    def test_nil_in_pi_rejected(self, schema):
        inst = Instance(pi={"person": {NIL}}, nu={NIL: TupleValue()})
        with pytest.raises(OidError, match="nil"):
            inst.validate(schema)


class TestOValues:
    def test_object_without_ovalue_rejected(self, schema):
        inst = Instance(pi={"person": {Oid(1)}}, nu={})
        with pytest.raises(OidError, match="no o-value"):
            inst.validate(schema)

    def test_ovalue_for_unknown_oid_rejected(self, schema):
        inst = valid_instance()
        inst.nu[Oid(42)] = TupleValue(name="ghost")
        with pytest.raises(OidError, match="no class contains"):
            inst.validate(schema)

    def test_type_violation_rejected(self, schema):
        inst = valid_instance()
        inst.nu[Oid(1)] = TupleValue(name=123)
        with pytest.raises(ValueError_):
            inst.validate(schema)


class TestAssociations:
    def test_nil_in_association_rejected(self, schema):
        inst = valid_instance()
        inst.rho["likes"].add(TupleValue(who=NIL, whom=Oid(1)))
        with pytest.raises(ValueError_, match="nil"):
            inst.validate(schema)

    def test_dangling_association_reference_rejected(self, schema):
        inst = valid_instance()
        inst.rho["likes"].add(TupleValue(who=Oid(1), whom=Oid(77)))
        with pytest.raises(ValueError_):
            inst.validate(schema)

    def test_rho_over_non_association_rejected(self, schema):
        inst = valid_instance()
        inst.rho["person"] = {TupleValue(name="x")}
        with pytest.raises(ValueError_, match="non-association"):
            inst.validate(schema)

    def test_dangling_class_reference_rejected(self, schema):
        inst = Instance(
            pi={"team": {Oid(5)}},
            nu={Oid(5): TupleValue(captain=Oid(99))},
        )
        # rejected either by the typed-membership check ([person]π) or by
        # the explicit reference walk, depending on evaluation order
        with pytest.raises((OidError, ValueError_)):
            inst.validate(schema)


class TestIsomorphism:
    def test_renamed_oids_are_isomorphic(self, schema):
        a = valid_instance()
        sara, luca = Oid(10), Oid(20)
        b = Instance(
            pi={"person": {sara, luca}, "student": {luca}},
            nu={
                sara: TupleValue(name="sara"),
                luca: TupleValue(name="luca", year=3),
            },
            rho={"likes": {TupleValue(who=sara, whom=luca)}},
        )
        assert a.isomorphic_to(b)
        assert b.isomorphic_to(a)

    def test_different_structure_not_isomorphic(self, schema):
        a = valid_instance()
        b = valid_instance()
        b.rho["likes"] = {TupleValue(who=Oid(2), whom=Oid(1))}
        assert not a.isomorphic_to(b)

    def test_different_attribute_values_not_isomorphic(self, schema):
        a = valid_instance()
        b = valid_instance()
        b.nu[Oid(1)] = TupleValue(name="mara")
        assert not a.isomorphic_to(b)

    def test_cardinality_mismatch_not_isomorphic(self, schema):
        a = valid_instance()
        b = valid_instance()
        b.pi["person"].add(Oid(3))
        b.nu[Oid(3)] = TupleValue(name="zoe")
        assert not a.isomorphic_to(b)
