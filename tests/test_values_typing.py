"""Unit tests for ``[τ]π`` membership (value_matches_type)."""

import pytest

from repro.types import (
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    MultisetType,
    NamedType,
    SchemaBuilder,
    SequenceType,
    SetType,
)
from repro.values import (
    NIL,
    MultisetValue,
    Oid,
    SequenceValue,
    SetValue,
    TupleValue,
    value_matches_type,
)


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .domain("name", STRING)
        .domain("score", (("home", INTEGER), ("guest", INTEGER)))
        .clazz("person", ("name", "name"))
        .build()
    )


class TestElementary:
    def test_integer(self, schema):
        assert value_matches_type(3, INTEGER, schema)
        assert not value_matches_type("3", INTEGER, schema)

    def test_bool_is_not_integer(self, schema):
        # Python bool subclasses int; LOGRES keeps them distinct
        assert not value_matches_type(True, INTEGER, schema)
        assert value_matches_type(True, BOOLEAN, schema)

    def test_real_accepts_int_and_float(self, schema):
        assert value_matches_type(2.5, REAL, schema)
        assert value_matches_type(2, REAL, schema)
        assert not value_matches_type(True, REAL, schema)

    def test_string(self, schema):
        assert value_matches_type("x", STRING, schema)
        assert not value_matches_type(1, STRING, schema)


class TestNamedTypes:
    def test_domain_expands(self, schema):
        assert value_matches_type("sara", NamedType("name"), schema)
        assert not value_matches_type(5, NamedType("name"), schema)

    def test_complex_domain(self, schema):
        good = TupleValue(home=1, guest=0)
        assert value_matches_type(good, NamedType("score"), schema)
        bad = TupleValue(home="x", guest=0)
        assert not value_matches_type(bad, NamedType("score"), schema)

    def test_class_position_takes_oids(self, schema):
        assert value_matches_type(Oid(3), NamedType("person"), schema)
        assert not value_matches_type("sara", NamedType("person"), schema)

    def test_nil_controlled_by_allow_nil(self, schema):
        t = NamedType("person")
        assert value_matches_type(NIL, t, schema, allow_nil=True)
        assert not value_matches_type(NIL, t, schema, allow_nil=False)

    def test_pi_restricts_class_membership(self, schema):
        pi = {"person": {Oid(1)}}
        t = NamedType("person")
        assert value_matches_type(Oid(1), t, schema, pi)
        assert not value_matches_type(Oid(2), t, schema, pi)


class TestTuples:
    def test_extra_labels_tolerated_by_default(self, schema):
        t = NamedType("score")
        wide = TupleValue(home=1, guest=2, extra=9)
        assert value_matches_type(wide, t, schema)
        assert not value_matches_type(wide, t, schema, exact_labels=True)

    def test_missing_label_fails(self, schema):
        assert not value_matches_type(
            TupleValue(home=1), NamedType("score"), schema
        )


class TestCollections:
    def test_set(self, schema):
        t = SetType(INTEGER)
        assert value_matches_type(SetValue([1, 2]), t, schema)
        assert not value_matches_type(SetValue(["x"]), t, schema)
        assert not value_matches_type([1, 2], t, schema)

    def test_multiset(self, schema):
        t = MultisetType(STRING)
        assert value_matches_type(MultisetValue(["a", "a"]), t, schema)
        assert not value_matches_type(SetValue(["a"]), t, schema)

    def test_sequence(self, schema):
        t = SequenceType(INTEGER)
        assert value_matches_type(SequenceValue([1, 2]), t, schema)
        assert not value_matches_type(SequenceValue([1, "x"]), t, schema)

    def test_nested_collection_of_oids(self, schema):
        t = SetType(NamedType("person"))
        assert value_matches_type(SetValue([Oid(1), Oid(2)]), t, schema)
        assert not value_matches_type(SetValue([1]), t, schema)
