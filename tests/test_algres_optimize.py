"""Tests for the ALGRES plan optimizer: rewrites and equivalence."""

from hypothesis import given, settings, strategies as st

from repro.algres import (
    And,
    Catalog,
    Comparison,
    Constant_,
    Difference,
    Field,
    Intersection,
    Join,
    Project,
    Relation,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
    optimize,
)
from repro.algres.optimize import condition_fields, rename_condition
from repro.types.descriptors import INTEGER, STRING
from repro.values import TupleValue


def catalog():
    people = Relation.build(
        "people",
        [("pname", STRING), ("age", INTEGER), ("city", STRING)],
        [
            dict(pname="ann", age=30, city="milan"),
            dict(pname="bob", age=20, city="rome"),
            dict(pname="cyn", age=40, city="milan"),
            dict(pname="dan", age=25, city="rome"),
        ],
    )
    visits = Relation.build(
        "visits",
        [("pname", STRING), ("place", STRING)],
        [
            dict(pname="ann", place="duomo"),
            dict(pname="bob", place="forum"),
            dict(pname="cyn", place="navigli"),
        ],
    )
    return Catalog({"people": people, "visits": visits})


def rows(rel):
    return {tuple(sorted(r.items)) for r in rel}


def assert_equivalent(expr):
    cat = catalog()
    assert rows(evaluate(optimize(expr), cat)) == rows(evaluate(expr, cat))


class TestRewrites:
    def test_selection_fusion(self):
        expr = Select(
            Select(Scan("people"),
                   Comparison(Field("age"), ">", Constant_(21))),
            Comparison(Field("city"), "=", Constant_("milan")),
        )
        out = optimize(expr)
        assert isinstance(out, Select)
        assert not isinstance(out.child, Select)
        assert_equivalent(expr)

    def test_projection_cascade(self):
        expr = Project(Project(Scan("people"), "pname", "age"), "pname")
        out = optimize(expr)
        assert isinstance(out, Project)
        assert isinstance(out.child, Scan)
        assert_equivalent(expr)

    def test_identity_rename_removed(self):
        expr = Rename(Scan("people"), {"age": "age"})
        assert optimize(expr) == Scan("people")

    def test_rename_merge(self):
        expr = Rename(Rename(Scan("people"), {"pname": "n"}),
                      {"n": "name"})
        out = optimize(expr)
        assert isinstance(out, Rename)
        assert isinstance(out.child, Scan)
        assert dict(out.mapping) == {"pname": "name"}
        assert_equivalent(expr)

    def test_selection_pushed_below_union(self):
        expr = Select(
            Union(Scan("people"), Scan("people")),
            Comparison(Field("age"), ">", Constant_(21)),
        )
        out = optimize(expr)
        assert isinstance(out, Union)
        assert_equivalent(expr)

    def test_selection_pushed_through_rename(self):
        expr = Select(
            Rename(Scan("people"), {"age": "years"}),
            Comparison(Field("years"), ">", Constant_(21)),
        )
        out = optimize(expr)
        assert isinstance(out, Rename)
        assert isinstance(out.child, Select)
        assert_equivalent(expr)

    def test_selection_pushed_through_projection(self):
        expr = Select(
            Project(Scan("people"), "pname", "age"),
            Comparison(Field("age"), ">", Constant_(21)),
        )
        out = optimize(expr)
        assert isinstance(out, Project)
        assert_equivalent(expr)

    def test_selection_pushed_into_join_branch(self):
        left = Project(Scan("people"), "pname", "age")
        right = Project(Scan("visits"), "pname", "place")
        expr = Select(
            Join(left, right),
            Comparison(Field("age"), ">", Constant_(21)),
        )
        out = optimize(expr)
        assert isinstance(out, Join)  # the selection left the top
        assert_equivalent(expr)

    def test_join_covering_condition_stays_when_unknown(self):
        # a condition over both sides cannot be pushed
        left = Project(Scan("people"), "pname", "age")
        right = Project(Scan("visits"), "pname", "place")
        expr = Select(
            Join(left, right),
            Comparison(Field("age"), ">", Constant_(21)),
        )
        both_sides = Select(
            Join(left, right),
            Comparison(Field("age"), "!=", Constant_(0)),
        )
        assert_equivalent(expr)
        assert_equivalent(both_sides)


class TestConditionHelpers:
    def test_condition_fields(self):
        cond = And(
            Comparison(Field("a"), ">", Constant_(1)),
            Comparison(Field("b"), "=", Field("c")),
        )
        assert condition_fields(cond) == {"a", "b", "c"}

    def test_rename_condition(self):
        cond = Comparison(Field("old"), ">", Constant_(1))
        renamed = rename_condition(cond, {"old": "new"})
        assert condition_fields(renamed) == {"new"}


# ---------------------------------------------------------------------------
# property: optimize preserves semantics on random plans
# ---------------------------------------------------------------------------
conditions = st.sampled_from([
    Comparison(Field("age"), ">", Constant_(21)),
    Comparison(Field("age"), "<=", Constant_(30)),
    Comparison(Field("city"), "=", Constant_("milan")),
    Comparison(Field("pname"), "!=", Constant_("bob")),
])

people_plans = st.recursive(
    st.just(Scan("people")),
    lambda children: st.one_of(
        st.builds(Select, children, conditions),
        st.builds(lambda c: Project(c, "pname", "age", "city"), children),
        st.builds(Union, children, children),
        st.builds(Intersection, children, children),
        st.builds(Difference, children, children),
        st.builds(lambda c: Rename(Rename(c, {"age": "tmp"}),
                                   {"tmp": "age"}), children),
    ),
    max_leaves=6,
)


class TestOptimizerEquivalenceProperty:
    @given(people_plans)
    @settings(max_examples=80, deadline=None)
    def test_optimize_preserves_results(self, plan):
        assert_equivalent(plan)

    @given(people_plans)
    @settings(max_examples=40, deadline=None)
    def test_optimize_is_idempotent(self, plan):
        once = optimize(plan)
        assert optimize(once) == once
