"""Tests for generated constraints and the consistency checker."""

import pytest

from repro import (
    Engine,
    FactSet,
    Oid,
    TupleValue,
    parse_schema_source,
)
from repro.constraints import (
    ConsistencyChecker,
    check_consistency,
    isa_propagation_rules,
    referential_denials,
)
from repro.errors import ConsistencyError
from repro.language.ast import Program
from repro.language.parser import parse_program


@pytest.fixture
def schema():
    return parse_schema_source("""
    classes
      person = (name: string).
      student = (person, school: string).
      team = (tname: string, captain: person).
      student isa person.
    associations
      likes = (who: person, what: string).
    """)


class TestGeneratedRules:
    def test_isa_propagation_rules_one_per_edge(self, schema):
        rules = isa_propagation_rules(schema)
        assert len(rules) == 1
        (rule,) = rules
        assert rule.head.pred == "person"
        assert rule.body[0].pred == "student"
        assert rule.name == "isa:student->person"

    def test_propagation_rules_take_effect_in_engine(self, schema):
        engine = Engine(schema, Program(tuple(isa_propagation_rules(schema))))
        edb = FactSet()
        edb.add_object("student", Oid(1),
                       TupleValue(name="a", school="s"))
        out = engine.run(edb)
        assert out.has_oid("person", Oid(1))
        assert out.value_of("person", Oid(1)) == TupleValue(name="a")

    def test_referential_denials_cover_reference_fields(self, schema):
        denials = referential_denials(schema)
        names = sorted(d.name for d in denials)
        assert names == [
            "ref:likes.who->person",
            "ref:team.captain->person",
        ]
        assert all(d.is_denial for d in denials)


class TestStructuralChecks:
    def test_consistent_state_has_no_violations(self, schema):
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        facts.add_association("likes",
                              TupleValue(who=Oid(1), what="tea"))
        assert check_consistency(facts, schema) == []

    def test_unknown_predicate_flagged(self, schema):
        facts = FactSet()
        facts.add_association("ghost", TupleValue(x=1))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "type" for v in violations)

    def test_wrong_attribute_type_flagged(self, schema):
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name=42))
        violations = check_consistency(facts, schema)
        assert any("does not match" in v.message for v in violations)

    def test_unknown_attribute_flagged(self, schema):
        facts = FactSet()
        facts.add_object("person", Oid(1),
                         TupleValue(name="a", ghost=1))
        violations = check_consistency(facts, schema)
        assert any("unknown attribute" in v.message for v in violations)

    def test_partial_class_values_are_legal(self, schema):
        facts = FactSet()
        facts.add_object("student", Oid(1), TupleValue(name="a"))
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        assert check_consistency(facts, schema) == []

    def test_incomplete_association_tuple_flagged(self, schema):
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        facts.add_association("likes", TupleValue(who=Oid(1)))
        violations = check_consistency(facts, schema)
        assert any("misses attribute" in v.message for v in violations)


class TestIsaChecks:
    def test_subclass_without_superclass_membership_flagged(self, schema):
        facts = FactSet()
        facts.add_object("student", Oid(1),
                         TupleValue(name="a", school="s"))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "isa" for v in violations)

    def test_oid_in_two_hierarchies_flagged(self):
        schema = parse_schema_source("""
        classes
          animal = (legs: integer).
          robot = (volts: integer).
        """)
        facts = FactSet()
        facts.add_object("animal", Oid(1), TupleValue(legs=4))
        facts.add_object("robot", Oid(1), TupleValue(volts=9))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "hierarchy" for v in violations)


class TestReferentialChecks:
    def test_dangling_association_reference_flagged(self, schema):
        facts = FactSet()
        facts.add_association("likes",
                              TupleValue(who=Oid(9), what="tea"))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "reference" for v in violations)

    def test_nil_in_association_flagged(self, schema):
        facts = FactSet()
        facts.add_association("likes",
                              TupleValue(who=Oid(0), what="tea"))
        violations = check_consistency(facts, schema)
        assert any("nil" in v.message for v in violations)

    def test_nil_in_class_reference_is_legal(self, schema):
        facts = FactSet()
        facts.add_object("team", Oid(1),
                         TupleValue(tname="x", captain=Oid(0)))
        assert check_consistency(facts, schema) == []

    def test_dangling_class_reference_flagged(self, schema):
        facts = FactSet()
        facts.add_object("team", Oid(1),
                         TupleValue(tname="x", captain=Oid(9)))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "reference" for v in violations)

    def test_nested_references_inside_collections_checked(self):
        schema = parse_schema_source("""
        classes
          player = (pname: string).
        associations
          squad = (sname: string, members: {player}).
        """)
        facts = FactSet()
        facts.add_object("player", Oid(1), TupleValue(pname="a"))
        from repro.values import SetValue

        facts.add_association("squad", TupleValue(
            sname="x", members=SetValue([Oid(1), Oid(7)])))
        violations = check_consistency(facts, schema)
        assert any(v.kind == "reference" and "&7" in v.message
                   for v in violations)


class TestDenials:
    def test_denial_violation_detected(self, schema):
        denial = parse_program(
            '<- likes(who X, what "poison").'
        ).rules[0]
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        facts.add_association("likes",
                              TupleValue(who=Oid(1), what="poison"))
        violations = check_consistency(facts, schema, (denial,))
        assert any(v.kind == "denial" for v in violations)

    def test_satisfied_denial_is_silent(self, schema):
        denial = parse_program(
            '<- likes(who X, what "poison").'
        ).rules[0]
        facts = FactSet()
        facts.add_object("person", Oid(1), TupleValue(name="a"))
        facts.add_association("likes",
                              TupleValue(who=Oid(1), what="tea"))
        assert check_consistency(facts, schema, (denial,)) == []

    def test_paper_married_divorced_denial(self):
        # the paper's example: <- married(X), divorced(X)
        schema = parse_schema_source("""
        associations
          married = (n: string).
          divorced = (n: string).
        """)
        denial = parse_program(
            "<- married(n X), divorced(n X)."
        ).rules[0]
        facts = FactSet()
        facts.add_association("married", TupleValue(n="a"))
        facts.add_association("divorced", TupleValue(n="a"))
        violations = check_consistency(facts, schema, (denial,))
        assert len(violations) == 1


class TestRequireConsistent:
    def test_raises_with_summary(self, schema):
        checker = ConsistencyChecker(schema)
        facts = FactSet()
        facts.add_association("likes",
                              TupleValue(who=Oid(9), what="x"))
        with pytest.raises(ConsistencyError, match="violations"):
            checker.require_consistent(facts)

    def test_passes_on_consistent_state(self, schema):
        ConsistencyChecker(schema).require_consistent(FactSet())
