"""Differential property tests for the planner + compiled rule bodies.

``EvalConfig(plan=True)`` reorders rule bodies from live statistics and,
for rules in the compilable fragment, replaces the generic matcher with
specialized closures (:mod:`repro.engine.compile`);
``compile_threshold=0`` forces the compiled path from the first round.
These tests pin the planned/compiled engine to the unplanned reference:

* 100 randomized flat rule programs (joins, recursion, filters,
  arithmetic, negation, deletion heads — the same generator the
  incremental-kernel suite uses) must produce **bit-identical**
  fixpoints under the inflationary, stratified and non-inflationary
  semantics, with identical failure behaviour;
* stratified negation programs must agree stratum by stratum;
* oid invention feeding other rule *bodies* must be isomorphic
  (numbering may depend on enumeration order).
"""

import random

import pytest

from repro import Engine, EvalConfig, Semantics, parse_source
from repro.errors import LogresError
from tests.test_incremental_kernel import (
    MAX_ITERATIONS,
    random_edb,
    random_program,
)

SEEDS = range(100)

ALL_SEMANTICS = (
    Semantics.INFLATIONARY,
    Semantics.STRATIFIED,
    Semantics.NONINFLATIONARY,
)


def outcome(schema, program, edb, semantics, plan, threshold=0):
    config = EvalConfig(
        max_iterations=MAX_ITERATIONS,
        max_facts=50_000,
        plan=plan,
        compile_threshold=threshold,
    )
    engine = Engine(schema, program, config)
    try:
        return "ok", engine.run(edb.copy(), semantics)
    except LogresError as exc:
        return "error", type(exc).__name__


@pytest.mark.parametrize("seed", SEEDS)
def test_planned_matches_reference(seed):
    rng = random.Random(seed)
    source = random_program(rng)
    unit = parse_source(source)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    for semantics in ALL_SEMANTICS:
        planned = outcome(schema, program, edb, semantics, plan=True)
        reference = outcome(schema, program, edb, semantics, plan=False)
        assert planned[0] == reference[0], \
            (semantics, source, planned, reference)
        assert planned[1] == reference[1], (semantics, source)


@pytest.mark.parametrize("seed", range(0, 100, 7))
def test_default_threshold_matches_reference(seed):
    """The lazy arming path (generic rounds first, closures once the
    rule crosses the threshold) must agree too — it switches drivers
    mid-fixpoint."""
    rng = random.Random(seed)
    source = random_program(rng)
    unit = parse_source(source)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(rng)
    for semantics in ALL_SEMANTICS:
        lazy = outcome(schema, program, edb, semantics, plan=True,
                       threshold=8)
        reference = outcome(schema, program, edb, semantics, plan=False)
        assert lazy == reference, (semantics, source)


STRATIFIED_SOURCE = """
associations
  e = (a: string, b: string).
  reach = (a: string, b: string).
  unreach = (a: string, b: string).
rules
  reach(a X, b Y) <- e(a X, b Y).
  reach(a X, b Z) <- e(a X, b Y), reach(a Y, b Z).
  unreach(a X, b Y) <- e(a X, b X2), e(a Y, b Y2), ~reach(a X, b Y).
"""


@pytest.mark.parametrize("seed", range(20))
def test_stratified_negation_planned(seed):
    unit = parse_source(STRATIFIED_SOURCE)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(random.Random(3000 + seed))
    planned = outcome(schema, program, edb, Semantics.STRATIFIED, True)
    reference = outcome(schema, program, edb, Semantics.STRATIFIED, False)
    assert planned == reference


INVENTION_BODY_SOURCE = """
classes
  node = (name: string).
associations
  e = (a: string, b: string).
  named = (n: string, m: string).
rules
  node(name X) <- e(a X, b Y).
  named(n X, m Y) <- node(self S, name X), node(self T, name Y),
                     e(a X, b Y).
"""


@pytest.mark.parametrize("seed", range(20))
def test_invention_in_body_isomorphic(seed):
    """Invented class facts read back in another rule's body: the
    planner must schedule the class literals (self positions) exactly
    like the dynamic scheduler, and the instances must be isomorphic."""
    unit = parse_source(INVENTION_BODY_SOURCE)
    schema, program = unit.schema(), unit.program()
    edb = random_edb(random.Random(4000 + seed))
    planned = outcome(schema, program, edb, Semantics.INFLATIONARY, True)
    reference = outcome(schema, program, edb, Semantics.INFLATIONARY,
                        False)
    assert planned[0] == reference[0] == "ok"
    assert planned[1].to_instance().isomorphic_to(
        reference[1].to_instance()
    )
    named_planned = {
        f.value for f in planned[1].facts() if f.pred == "named"
    }
    named_reference = {
        f.value for f in reference[1].facts() if f.pred == "named"
    }
    assert named_planned == named_reference
