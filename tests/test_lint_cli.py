"""Tests for ``repro lint`` and ``repro check --static-only``."""

import json

import pytest

from repro.cli import main

CLEAN = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
goal
  ?- anc(a "a", d D).
"""

SEEDED = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parentt(par X, chil Y).
  anc(a X, d Y) <- parent(pax X, chil Y).
  anc(a X, d 3) <- parent(par X, chil X).
"""

WARN_ONLY = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d "k") <- parent(par X, chil Y).
"""


@pytest.fixture
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)
    return _write


class TestLint:
    def test_clean_file_exits_zero(self, write, capsys):
        assert main(["lint", write("clean.lg", CLEAN)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 error(s), 0 warning(s)" in captured.err

    def test_all_errors_reported_in_one_run(self, write, capsys):
        path = write("seeded.lg", SEEDED)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "error[LG201]" in out
        assert "error[LG301]" in out
        assert "error[LG303]" in out
        # every line carries a file:line:col prefix
        for line in out.strip().splitlines():
            assert line.startswith(f"{path}:"), line

    def test_json_format(self, write, capsys):
        path = write("seeded.lg", SEEDED)
        assert main(["lint", "--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert {"LG201", "LG301", "LG303"} <= set(codes)
        for entry in payload["diagnostics"]:
            assert entry["file"] == path
            assert isinstance(entry["line"], int)
            assert isinstance(entry["column"], int)

    def test_warnings_do_not_fail_by_default(self, write, capsys):
        assert main(["lint", write("warn.lg", WARN_ONLY)]) == 0
        assert "warning[LG601]" in capsys.readouterr().out

    def test_error_on_warning(self, write):
        path = write("warn.lg", WARN_ONLY)
        assert main(["lint", "--error-on-warning", path]) == 1

    def test_multiple_files(self, write, capsys):
        clean = write("clean.lg", CLEAN)
        seeded = write("seeded.lg", SEEDED)
        assert main(["lint", clean, seeded]) == 1
        captured = capsys.readouterr()
        assert seeded in captured.out
        assert "2 file(s)" in captured.err

    def test_parse_error_is_a_diagnostic(self, write, capsys):
        path = write("bad.lg", "rules\n p(x X <- q.")
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert f"{path}:2:" in out
        assert "error[LG101]" in out


class TestShippedExamples:
    def test_every_shipped_lg_source_lints_clean(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        files = sorted(str(p) for p in root.glob("examples/**/*.lg"))
        assert files, "no shipped .lg sources found"
        assert main(["lint", "--error-on-warning", *files]) == 0


class TestCheckStaticOnly:
    def test_clean(self, write, capsys):
        assert main(["check", "--static-only", write("c.lg", CLEAN)]) == 0
        assert "evaluation skipped" in capsys.readouterr().out

    def test_errors_reported(self, write, capsys):
        assert main(["check", "--static-only",
                     write("s.lg", SEEDED)]) == 1
        err = capsys.readouterr().err
        assert "error[LG201]" in err

    def test_skips_evaluation(self, write, capsys):
        # unstratified under the requested semantics, and even a denial
        # violation: neither matters, evaluation never runs
        source = CLEAN + '\nrules\n  <- anc(a "a", d D).\n'
        assert main(["check", "--static-only",
                     write("d.lg", source)]) == 0


class TestAnalysisErrorFormatting:
    def test_run_prints_diagnostics_not_tracebacks(self, write, capsys):
        path = write("s.lg", SEEDED)
        assert main(["run", path]) == 2
        err = capsys.readouterr().err
        assert "error[LG201]" in err
        assert f"{path}:" in err
        assert "Traceback" not in err

    def test_run_reports_every_error(self, write, capsys):
        assert main(["run", write("s.lg", SEEDED)]) == 2
        err = capsys.readouterr().err
        assert "error[LG201]" in err
        assert "error[LG301]" in err
        assert "error[LG303]" in err
