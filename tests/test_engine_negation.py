"""Engine tests: negation, active domains, negated builtins."""

import pytest

from repro import Engine, FactSet, Semantics, TupleValue
from repro.errors import EvaluationError
from repro.language.parser import parse_source


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


class TestBoundNegation:
    def test_negated_literal_with_bound_variables(self):
        schema, program = build("""
        associations
          edge = (a: string, b: string).
          sym = (a: string, b: string).
          oneway = (a: string, b: string).
        rules
          oneway(a X, b Y) <- edge(a X, b Y), ~edge(a Y, b X).
        """)
        edb = FactSet()
        for a, b in [("x", "y"), ("y", "x"), ("x", "z")]:
            edb.add_association("edge", TupleValue(a=a, b=b))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        got = sorted((f.value["a"], f.value["b"])
                     for f in out.facts_of("oneway"))
        assert got == [("x", "z")]

    def test_negated_builtin(self):
        schema, program = build("""
        associations
          n = (v: integer).
          small = (v: integer).
        rules
          small(v X) <- n(v X), ~member(X, {3, 4}).
        """)
        edb = FactSet()
        for i in range(5):
            edb.add_association("n", TupleValue(v=i))
        out = Engine(schema, program).run(edb)
        assert sorted(f.value["v"] for f in out.facts_of("small")) == \
            [0, 1, 2]


class TestActiveDomainNegation:
    def test_unbound_negated_variable_ranges_over_active_domain(self):
        # "who is missed by everyone": no likes(X, Y) fact for any Y
        schema, program = build("""
        associations
          person = (n: string).
          likes = (who: string, whom: string).
          lonely = (n: string).
        rules
          lonely(n X) <- person(n X), ~likes(who X, whom Y).
        """)
        edb = FactSet()
        for n in ["a", "b", "c"]:
            edb.add_association("person", TupleValue(n=n))
        edb.add_association("likes", TupleValue(who="a", whom="b"))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        # X is lonely if there EXISTS an active-domain Y with no
        # likes(X, Y): under active-domain semantics 'a' only likes 'b',
        # so a pair (a, c) witnesses too — every person qualifies except
        # one who likes everyone.
        lonely = sorted(f.value["n"] for f in out.facts_of("lonely"))
        assert lonely == ["a", "b", "c"]

    def test_fully_negative_complement(self):
        # classic complement: pairs not related by edge
        schema, program = build("""
        associations
          node = (n: string).
          edge = (a: string, b: string).
          unconnected = (a: string, b: string).
        rules
          unconnected(a X, b Y) <- node(n X), node(n Y),
                                   ~edge(a X, b Y).
        """)
        edb = FactSet()
        for n in ["x", "y"]:
            edb.add_association("node", TupleValue(n=n))
        edb.add_association("edge", TupleValue(a="x", b="y"))
        out = Engine(schema, program).run(edb, Semantics.STRATIFIED)
        got = sorted((f.value["a"], f.value["b"])
                     for f in out.facts_of("unconnected"))
        assert got == [("x", "x"), ("y", "x"), ("y", "y")]


class TestInflationaryNegation:
    def test_inflationary_semantics_on_unstratified_program(self):
        # p depends negatively on itself: inflationary still gives a
        # deterministic answer (Section 3.1 evaluates it "as a whole")
        schema, program = build("""
        associations
          seed = (v: integer).
          p = (v: integer).
        rules
          p(v X) <- seed(v X), ~p(v X).
        """)
        edb = FactSet()
        edb.add_association("seed", TupleValue(v=1))
        out = Engine(schema, program).run(edb, Semantics.INFLATIONARY)
        # step 1: p(1) derived (p empty); step 2: blocked; fixpoint.
        assert [f.value["v"] for f in out.facts_of("p")] == [1]

    def test_win_move_game_inflationary(self):
        # win(X) <- move(X, Y), ~win(Y): inflationary ≠ well-founded in
        # general, but on a 3-chain the result is the standard one
        schema, program = build("""
        associations
          move = (a: string, b: string).
          win = (p: string).
        rules
          win(p X) <- move(a X, b Y), ~win(p Y).
        """)
        edb = FactSet()
        for a, b in [("a", "b"), ("b", "c")]:
            edb.add_association("move", TupleValue(a=a, b=b))
        out = Engine(schema, program).run(edb, Semantics.INFLATIONARY)
        winners = sorted(f.value["p"] for f in out.facts_of("win"))
        # c has no moves and loses; b can move to c... the inflationary
        # pass derives both a and b in step one (win is empty), which is
        # exactly the documented divergence from the perfect model.
        assert winners == ["a", "b"]
