"""Property-based tests of the module-application algebra (Section 4)."""

from hypothesis import given, settings, strategies as st

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    TupleValue,
    apply_module,
    materialize,
    parse_schema_source,
)

SCHEMA = parse_schema_source("""
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
""")

people = st.sampled_from([f"p{i}" for i in range(6)])
edges = st.lists(st.tuples(people, people), max_size=8)


def state_of(pairs):
    edb = FactSet()
    for a, b in pairs:
        edb.add_association("parent", TupleValue(par=a, chil=b))
    return DatabaseState(SCHEMA, edb)


def insert_module(pairs):
    lines = ["rules"] + [
        f'  parent(par "{a}", chil "{b}").' for a, b in pairs
    ]
    if not pairs:
        lines.append('  parent(par "zz", chil "zz") <- parent(par "zz").')
    return Module.from_source("\n".join(lines), name="inserts")


class TestModuleAlgebraProperties:
    @given(edges, edges)
    @settings(max_examples=40, deadline=None)
    def test_input_state_never_mutated(self, base, extra):
        state = state_of(base)
        snapshot = state.edb.copy()
        for mode in (Mode.RIDI, Mode.RADI, Mode.RIDV, Mode.RADV):
            apply_module(state, insert_module(extra), mode)
            assert state.edb == snapshot

    @given(edges, edges)
    @settings(max_examples=40, deadline=None)
    def test_radi_then_rddi_restores_rules(self, base, extra):
        state = state_of(base)
        module = insert_module(extra)
        added = apply_module(state, module, Mode.RADI).state
        removed = apply_module(added, module, Mode.RDDI).state
        assert removed.rules == state.rules
        assert removed.edb == state.edb

    @given(edges)
    @settings(max_examples=30, deadline=None)
    def test_ridv_with_fact_module_unions_edb(self, base):
        state = state_of(base)
        extra = [("x1", "x2"), ("x2", "x3")]
        result = apply_module(state, insert_module(extra), Mode.RIDV)
        for a, b in extra:
            assert TupleValue(par=a, chil=b) in {
                f.value for f in result.state.edb.facts_of("parent")
            }
        # everything extensional before is still there (fact modules
        # only add)
        for fact in state.edb.facts():
            assert fact in result.state.edb

    @given(edges, edges)
    @settings(max_examples=30, deadline=None)
    def test_ridv_is_idempotent_for_fact_modules(self, base, extra):
        state = state_of(base)
        module = insert_module(extra)
        once = apply_module(state, module, Mode.RIDV).state
        twice = apply_module(once, module, Mode.RIDV).state
        assert once.edb == twice.edb

    @given(edges, edges)
    @settings(max_examples=30, deadline=None)
    def test_ridv_then_rddv_removes_module_facts(self, base, extra):
        state = state_of(base)
        module = insert_module(extra)
        grown = apply_module(state, module, Mode.RIDV).state
        shrunk = apply_module(grown, module, Mode.RDDV).state
        for a, b in extra:
            if (a, b) not in base:
                assert TupleValue(par=a, chil=b) not in {
                    f.value for f in shrunk.edb.facts_of("parent")
                }

    @given(edges)
    @settings(max_examples=30, deadline=None)
    def test_ridi_instance_equals_materialization(self, base):
        state = state_of(base)
        module = Module.from_source("""
        rules
          anc(a X, d Y) <- parent(par X, chil Y).
        goal
          ?- anc(a A, d D).
        """, name="query")
        result = apply_module(state, module, Mode.RIDI)
        replay = materialize(
            result.state, extra_rules=module.rules
        )
        assert result.instance == replay
