"""Tests for derivation tracing and explanation."""

from repro import Engine, FactSet, Oid, TupleValue
from repro.engine.trace import Tracer
from repro.language.parser import parse_source
from repro.storage import Fact


def build(text):
    unit = parse_source(text)
    return unit.schema(), unit.program()


def tc_setup():
    schema, program = build("""
    associations
      parent = (par: string, chil: string).
      anc = (a: string, d: string).
    rules
      anc(a X, d Y) <- parent(par X, chil Y).
      anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
    """)
    edb = FactSet()
    for p, c in [("a", "b"), ("b", "c"), ("c", "d")]:
        edb.add_association("parent", TupleValue(par=p, chil=c))
    return schema, program, edb


class TestRecording:
    def test_every_derived_fact_has_provenance(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        engine = Engine(schema, program)
        out = engine.run(edb, tracer=tracer)
        for fact in out.facts_of("anc"):
            entry = tracer.derivation_of(fact)
            assert entry is not None
            assert entry.rule.head.pred == "anc"
            assert entry.iteration >= 1

    def test_extensional_facts_have_no_provenance(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        Engine(schema, program).run(edb, tracer=tracer)
        edb_fact = next(edb.facts_of("parent"))
        assert tracer.derivation_of(edb_fact) is None

    def test_tracing_disables_seminaive(self):
        schema, program, edb = tc_setup()
        engine = Engine(schema, program)
        engine.run(edb, tracer=Tracer())
        assert not engine.stats.used_seminaive

    def test_iterations_recorded(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        Engine(schema, program).run(edb, tracer=tracer)
        iterations = {d.iteration for d in tracer.derivations}
        assert len(iterations) >= 2  # base facts, then deeper closure

    def test_deletions_recorded(self):
        schema, program = build("""
        associations
          p = (v: integer).
          kill = (v: integer).
        rules
          ~p(T) <- p(T), kill(T).
        """)
        edb = FactSet()
        edb.add_association("p", TupleValue(v=1))
        edb.add_association("kill", TupleValue(v=1))
        tracer = Tracer()
        Engine(schema, program).run(edb, tracer=tracer)
        deletions = tracer.deletions()
        assert len(deletions) == 1
        assert deletions[0].fact.value["v"] == 1


class TestExplanation:
    def test_tree_reaches_extensional_leaves(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        engine = Engine(schema, program)
        out = engine.run(edb, tracer=tracer)
        target = Fact("anc", TupleValue(a="a", d="d"))
        tree = tracer.explain(target, out, engine.schema)
        assert tree.rule is not None
        rendered = tree.render()
        assert "(extensional)" in rendered
        # the recursive derivation passes through anc(b, d) or similar
        assert rendered.count("anc(") >= 2

    def test_base_fact_explanation_is_one_level(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        engine = Engine(schema, program)
        out = engine.run(edb, tracer=tracer)
        target = Fact("anc", TupleValue(a="a", d="b"))
        tree = tracer.explain(target, out, engine.schema)
        assert len(tree.premises) == 1
        assert tree.premises[0].is_extensional

    def test_unknown_fact_is_extensional_node(self):
        schema, program, edb = tc_setup()
        tracer = Tracer()
        engine = Engine(schema, program)
        out = engine.run(edb, tracer=tracer)
        ghost = Fact("anc", TupleValue(a="zz", d="qq"))
        tree = tracer.explain(ghost, out, engine.schema)
        assert tree.is_extensional

    def test_class_fact_provenance_by_oid(self):
        schema, program = build("""
        classes
          c = (tag: string).
        associations
          seed = (tag: string).
        rules
          c(tag X) <- seed(tag X).
        """)
        edb = FactSet()
        edb.add_association("seed", TupleValue(tag="x"))
        tracer = Tracer()
        engine = Engine(schema, program)
        out = engine.run(edb, tracer=tracer)
        (oid,) = out.oids_of("c")
        fact = Fact("c", out.value_of("c", oid), oid)
        entry = tracer.derivation_of(fact)
        assert entry is not None
        assert entry.rule.head.pred == "c"
