"""E6 — The six module application modes (Section 4.1).

Paper anchor: "by selecting the option of application of a module, the
effect on the database can be changed" — the same module, applied under
each mode, costs differently because each mode materializes and checks
different things.

Series: per-mode application time on a fixed genealogy state with a
fixed module.  Expected shape: the data-invariant query modes (RIDI /
RADI / RDDI) pay one materialization of E under R∪R_M; the data-variant
modes (RIDV / RADV / RDDV) pay the update fixpoint *plus* the
post-state materialization and consistency check — so DV modes sit
above their DI counterparts.
"""

import pytest

from repro import (
    DatabaseState,
    FactSet,
    Mode,
    Module,
    apply_module,
    parse_schema_source,
)
from repro.workloads import genealogy_facts

SCHEMA = parse_schema_source("""
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
""")

MODULE = Module.from_source("""
rules
  parent(par "p0", chil "pnew").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
goal
  ?- anc(a "p0", d D).
""", name="tc-module")

MODULE_NO_GOAL = Module.from_source("""
rules
  parent(par "p0", chil "pnew").
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
""", name="tc-module-dv")

PEOPLE = 60


def fresh_state():
    return DatabaseState(SCHEMA, genealogy_facts(PEOPLE, seed=5))


@pytest.mark.parametrize("mode", [Mode.RIDI, Mode.RADI, Mode.RDDI])
@pytest.mark.benchmark(group="e06-module-modes")
def test_data_invariant_modes(benchmark, mode):
    state = fresh_state()
    result = benchmark(apply_module, state, MODULE, mode)
    assert result.state.edb == state.edb  # E never changes in DI modes


@pytest.mark.parametrize("mode", [Mode.RIDV, Mode.RADV, Mode.RDDV])
@pytest.mark.benchmark(group="e06-module-modes")
def test_data_variant_modes(benchmark, mode):
    state = fresh_state()
    result = benchmark(apply_module, state, MODULE_NO_GOAL, mode)
    assert result.answers is None


def test_mode_effects_summary():
    """One table row per mode: what changed (E? R? answered goal?)."""
    state = fresh_state()
    effects = {}
    for mode in Mode:
        module = MODULE if mode.allows_goal else MODULE_NO_GOAL
        result = apply_module(state, module, mode)
        effects[mode.value] = (
            result.state.edb != state.edb,
            len(result.state.rules) != len(state.rules),
            result.answers is not None,
        )
    assert effects == {
        "RIDI": (False, False, True),
        "RADI": (False, True, True),
        "RDDI": (False, False, True),   # module rules were not in R0
        "RIDV": (True, False, False),
        "RADV": (True, True, False),
        # RDDV removes E ∩ E_M, which is empty here (the module's fact
        # was never inserted extensionally), so E is unchanged too
        "RDDV": (False, False, False),
    }
