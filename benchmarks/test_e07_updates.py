"""E7 — Updates through rules with negative heads (Example 4.2, §4.2).

Paper anchor: "Insertion and deletion of tuples in E is straightforward.
A module with RIDV option will be used; addition of tuples requires
rules with positive heads, deletion of tuples rules with negative
heads."

Series: applying a stream of RIDV update modules vs stream length, against
the baseline of performing the same mutations directly on the fact store
(what a procedural system would do).  Expected shape: both linear in the
number of operations; the declarative route pays a constant factor for
fixpoint evaluation and consistency checking per module.
"""

import pytest

from repro import Database, Mode
from repro.workloads import GENEALOGY_SCHEMA, update_stream

SIZES = [5, 10, 20]


@pytest.mark.parametrize("operations", SIZES)
@pytest.mark.benchmark(group="e07-updates")
def test_ridv_update_modules(benchmark, operations):
    modules = update_stream(operations, people=40, seed=13)

    def run():
        db = Database.from_source(GENEALOGY_SCHEMA)
        for module in modules:
            db.run_module(module, Mode.RIDV)
        return db

    db = benchmark(run)
    assert db.check() == []


@pytest.mark.parametrize("operations", SIZES)
@pytest.mark.benchmark(group="e07-updates")
def test_direct_store_mutation_baseline(benchmark, operations):
    # the same logical operations applied imperatively
    import random

    def run():
        db = Database.from_source(GENEALOGY_SCHEMA)
        rng = random.Random(13)
        for _ in range(operations):
            for _ in range(rng.randrange(1, 4)):
                a, b = rng.sample(range(40), 2)
                if a > b:
                    a, b = b, a
                db.insert("parent", par=f"p{a}", chil=f"p{b}")
            if rng.random() < 0.25:
                a, b = rng.sample(range(40), 2)
                if a > b:
                    a, b = b, a
                db.delete("parent", par=f"p{a}", chil=f"p{b}")
        return db

    db = benchmark(run)
    assert db.check() == []


def test_update_example_matches_paper():
    """Example 4.2 run through a RIDV module yields the paper's E1."""
    db = Database.from_source("""
    associations
      p = (d1: integer, d2: integer).
      mod = (d1: integer, d2: integer).
    """)
    for i in range(1, 5):
        db.insert("p", d1=i, d2=i)
    from repro import Module

    db.run_module(Module.from_source("""
    rules
      p(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                       ~mod(d1 X, d2 Y).
      mod(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                         ~mod(d1 X, d2 Y).
      ~p(Y) <- p(Y, d1 X), even(X), ~mod(Y).
    """, name="ex42"), Mode.RIDV)
    assert sorted((t["d1"], t["d2"]) for t in db.tuples("p")) == \
        [(1, 1), (2, 3), (3, 3), (4, 5)]
