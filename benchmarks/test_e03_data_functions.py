"""E3 — Data functions for nesting (Examples 2.2 / 3.2).

Paper anchor: data functions were introduced "with two main purposes:
performing nesting and unnesting operations" (Section 2.2 comparison
with IQL).

Series: time to compute the nested ancestor/descendants association vs
the size of the genealogy forest, for
  * the LOGRES route — recursive data function + one nesting rule,
  * the ALGRES route — closure then an explicit Nest operator (what a
    value-oriented NF² system without data functions would run).

Expected shape: both scale with the size of the closure; the ALGRES
route is faster in this engine (set-at-a-time joins beat the
tuple-at-a-time member recursion), which matches the paper's plan of
implementing LOGRES *on top of* ALGRES restructuring operators.
"""

import pytest

from benchmarks.conftest import build_unit
from repro import Engine, EvalConfig, Semantics
from repro.algres import (
    Catalog,
    Closure,
    Join,
    Nest,
    Project,
    Relation,
    Rename,
    Scan,
    evaluate,
)
from repro.compiler import factset_to_catalog
from repro.workloads import genealogy_facts, genealogy_schema

DESCENDANTS_SOURCE = """
associations
  parent = (par: string, chil: string).
  ancestor = (anc: string, des: {string}).
functions
  desc: string -> {string}.
  member(X, desc(Y)) <- parent(par Y, chil X).
  member(X, desc(Y)) <- parent(par Y, chil Z), member(X, T),
                        T = desc(Z).
rules
  ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
"""

SIZES = [30, 60, 120]


@pytest.mark.parametrize("people", SIZES)
@pytest.mark.benchmark(group="e03-data-functions")
def test_logres_data_function_nesting(benchmark, people):
    schema, program = build_unit(DESCENDANTS_SOURCE)
    edb = genealogy_facts(people, seed=7)

    def run():
        engine = Engine(schema, program, EvalConfig(max_facts=500_000))
        return engine.run(edb, Semantics.STRATIFIED)

    out = benchmark(run)
    assert out.count("ancestor") > 0


def algres_nested_descendants(edb, schema):
    catalog = factset_to_catalog(edb, schema)
    base = Rename(Scan("parent"), {"par": "anc", "chil": "des"})
    step = Project(
        Join(Rename(Scan("$iter"), {"des": "mid"}),
             Rename(Scan("parent"), {"par": "mid", "chil": "des"})),
        "anc", "des",
    )
    return evaluate(Nest(Closure(base, step), ["des"], "descendants"),
                    catalog)


@pytest.mark.parametrize("people", SIZES)
@pytest.mark.benchmark(group="e03-data-functions")
def test_algres_closure_plus_nest(benchmark, people):
    schema = genealogy_schema()
    edb = genealogy_facts(people, seed=7)
    out = benchmark(algres_nested_descendants, edb, schema)
    assert len(out) > 0


def test_routes_agree():
    schema, program = build_unit(DESCENDANTS_SOURCE)
    edb = genealogy_facts(40, seed=7)
    engine = Engine(schema, program)
    logres = engine.run(edb, Semantics.STRATIFIED)
    logres_rows = {
        (f.value["anc"], frozenset(f.value["des"]))
        for f in logres.facts_of("ancestor")
    }
    algres = algres_nested_descendants(edb, genealogy_schema())
    algres_rows = {
        (r["anc"], frozenset(r["descendants"])) for r in algres
    }
    assert logres_rows == algres_rows
