"""E10 — LOGRES on ALGRES: the translation overhead (Section 5, [Ca90]).

Paper anchor: "We plan to prototype LOGRES upon ALGRES, though rather
inefficiently, by introducing the notion of oids above ALGRES."

Series: for a join-heavy non-recursive program and for recursive
closure, time of
  * the native LOGRES engine,
  * the compiled ALGRES plan (including fact-set <-> catalog conversion,
    which is part of the translation cost the paper accepts),
  * the bare ALGRES plan with conversion hoisted out (the steady-state
    cost of the algebra itself).

Expected shape: the compiled route tracks the native engine within a
small factor; conversion accounts for a visible share — consistent with
the paper's "rather inefficiently" for the bolted-on translation.
"""

import pytest

from benchmarks.conftest import build_unit, run_logres
from repro.algres import evaluate
from repro.compiler import compile_program, factset_to_catalog
from repro.workloads import grid_edges, random_edges

JOIN_SOURCE = """
associations
  parent = (par: string, chil: string).
  grandparent = (g: string, c: string).
  sibling_edge = (l: string, r: string).
rules
  grandparent(g X, c Z) <- parent(par X, chil Y), parent(par Y, chil Z).
  sibling_edge(l X, r Y) <- parent(par P, chil X), parent(par P, chil Y).
"""

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""

SIZES = [100, 200]


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e10-join-program")
def test_native_joins(benchmark, edges):
    schema, program = build_unit(JOIN_SOURCE)
    edb = random_edges(edges // 2, edges, seed=23)
    out = benchmark(run_logres, schema, program, edb)
    assert out.count("grandparent") >= 0


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e10-join-program")
def test_compiled_joins(benchmark, edges):
    schema, program = build_unit(JOIN_SOURCE)
    edb = random_edges(edges // 2, edges, seed=23)
    compiled = compile_program(program, schema)
    out = benchmark(compiled.run, edb)
    assert out.count("grandparent") >= 0


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e10-join-program")
def test_bare_algebra_joins(benchmark, edges):
    schema, program = build_unit(JOIN_SOURCE)
    edb = random_edges(edges // 2, edges, seed=23)
    compiled = compile_program(program, schema)
    catalog = factset_to_catalog(edb, schema)  # hoisted out of the loop

    def run():
        return [evaluate(plan, catalog) for _, plan in compiled.plans]

    results = benchmark(run)
    assert results


@pytest.mark.parametrize("side", [4, 6])
@pytest.mark.benchmark(group="e10-recursive-program")
def test_native_closure_on_grid(benchmark, side):
    schema, program = build_unit(TC_SOURCE)
    edb = grid_edges(side, side)
    out = benchmark(run_logres, schema, program, edb)
    assert out.count("anc") > 0


@pytest.mark.parametrize("side", [4, 6])
@pytest.mark.benchmark(group="e10-recursive-program")
def test_compiled_closure_on_grid(benchmark, side):
    schema, program = build_unit(TC_SOURCE)
    edb = grid_edges(side, side)
    compiled = compile_program(program, schema)
    out = benchmark(compiled.run, edb)
    assert out.count("anc") > 0


def test_translated_results_match_native():
    for source in (JOIN_SOURCE, TC_SOURCE):
        schema, program = build_unit(source)
        edb = random_edges(40, 80, seed=23)
        assert compile_program(program, schema).run(edb) == \
            run_logres(schema, program, edb)
