"""Guard the hot-path benchmarks against performance regressions.

Compares a benchmark run (pytest-benchmark JSON) against the committed
baseline ``benchmarks/baseline.json`` and fails when any guarded
benchmark is more than ``--threshold`` (default 25%) slower than its
baseline.  Guarded groups are the hot-path experiments E01 (transitive
closure) and A01 (indexing ablation); other experiments are reported but
never fail the check.

    python benchmarks/check_regression.py                # run E01+A01, compare
    python benchmarks/check_regression.py --json run.json  # compare a prior run
    python benchmarks/check_regression.py --update       # rewrite the baseline
    python benchmarks/check_regression.py --plan-gate    # planner speedup gate
    python benchmarks/check_regression.py --bench-gate   # BENCH_* trend gate
    python benchmarks/check_regression.py --serve-gate   # server p95 trend gate
    python benchmarks/check_regression.py --all          # every gate in one go

Comparison uses each benchmark's *min* time, which is far less noisy
than the mean on shared machines.  Transient load can still inflate a
whole run, so the suite is executed ``--runs`` times (default 2) and
each benchmark's best time across runs is what gets compared.

``--reports`` runs the *behavioural* gate instead: the reference
workload (benchmarks/telemetry.py) is evaluated under instrumentation
— once with plan=on and once with plan=off, whose count columns must
agree — and the plan=on run report is diffed against the committed
``benchmarks/report_baseline.json`` with ``repro diff`` strict-count
rules — count columns (fires, facts derived/deleted, iterations) are
deterministic and machine-portable, so any count delta on an unchanged
program fails; time columns only fail past a generous threshold that
absorbs machine-to-machine variance.  ``--update-reports`` rewrites
the baseline.

``--plan-gate`` runs the planner acceptance gate: E01 transitive
closure at 1000 edges, plan=on vs plan=off, identical instances
required and plan=on at least ``--speedup-target`` (default 5x) faster
on min time; the planner's JSON for the workload is written to
``benchmarks/results/plan_reference.json`` (the CI artifact).  The same
speedup check also fires in the benchmark comparison whenever a run
contains both ``test_logres_plan_on[1000]`` and
``test_logres_plan_off[1000]``.

``--telemetry-gate`` runs the live-telemetry acceptance gate on the
same E01 1000-edge workload: routing events through an
:class:`~repro.observability.bus.EventBus` (attached sink plus one
live subscriber, the ``repro tail`` shape) must cost at most
``--bus-overhead-target`` (default 5%) over emitting the same events
into a bare sink, and the *uninstrumented* run — the PR 3
zero-overhead-disabled fast path — must stay within
``--disabled-threshold`` of the committed
``test_logres_plan_on[1000]`` baseline (generous, since the committed
number may come from another machine).

``--bench-gate`` runs the perf-trend gate over the committed
``BENCH_*.json`` history (the ``repro bench`` matrix rows plus the
pytest experiment rows): each (experiment, benchmark, config) series
regresses when its latest min-time exceeds the rolling median of the
preceding window by the trend threshold *and* the absolute floor —
see :mod:`repro.observability.trend`.  ``--serve-gate`` applies the
same trend rule to just the ``exp == "serve"`` series — the committed
``BENCH_serve.json`` p95 request latencies from
``benchmarks/serve_load.py``.  ``--all`` chains every gate (timing
baseline, plan, telemetry, reports, bench trend, serve trend) and
fails if any of them fails — the single entry point CI invokes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline.json"
REPORT_BASELINE_PATH = HERE / "report_baseline.json"
#: committed report baselines come from other machines: only a massive
#: slowdown on a count-identical run is worth failing on
REPORT_TIME_THRESHOLD = 10.0
REPORT_TIME_FLOOR_MS = 250.0
GUARDED_GROUPS = ("e01-transitive-closure", "a01-indexing")
GUARDED_TARGETS = [
    str(HERE / "test_e01_transitive_closure.py"),
    str(HERE / "test_a01_indexing_ablation.py"),
]
DEFAULT_THRESHOLD = 0.25
#: ISSUE 6 acceptance: plan=on must be at least this much faster than
#: the plan=off semi-naive baseline on E01 at 1000 edges (min times)
PLAN_SPEEDUP_TARGET = 5.0
PLAN_ON_NAME = "test_logres_plan_on[1000]"
PLAN_OFF_NAME = "test_logres_plan_off[1000]"
#: telemetry gate: bus fan-out may cost at most this much over a bare
#: event sink on the instrumented E01 1000-edge run
BUS_OVERHEAD_TARGET = 0.05
#: telemetry gate: the uninstrumented run vs the committed baseline —
#: generous, the committed min may come from a different machine
DISABLED_OVERHEAD_THRESHOLD = 1.0


def extract(json_path: pathlib.Path) -> dict[str, dict]:
    """``{fullname: {group, min, mean}}`` for every guarded benchmark."""
    payload = json.loads(json_path.read_text())
    out: dict[str, dict] = {}
    for bench in payload.get("benchmarks", []):
        group = bench.get("group") or "ungrouped"
        if group not in GUARDED_GROUPS:
            continue
        out[bench["name"]] = {
            "group": group,
            "min": bench["stats"]["min"],
            "mean": bench["stats"]["mean"],
        }
    return out


def compare(
    baseline: dict[str, dict],
    current: dict[str, dict],
    threshold: float,
) -> tuple[list[str], list[str]]:
    """(report lines, failure lines) for current vs baseline."""
    lines: list[str] = []
    failures: list[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but not run")
            continue
        ratio = now["min"] / base["min"] if base["min"] else float("inf")
        verdict = "ok"
        if ratio > 1 + threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base['min'] * 1000:.2f} ms →"
                f" {now['min'] * 1000:.2f} ms ({ratio:.2f}x)"
            )
        lines.append(
            f"{verdict:>10}  {name}  {base['min'] * 1000:8.2f} ms →"
            f" {now['min'] * 1000:8.2f} ms  ({ratio:.2f}x)"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{'new':>10}  {name}  (no baseline entry)")
    return lines, failures


def plan_speedup_check(current: dict[str, dict],
                       target: float) -> tuple[list[str], list[str]]:
    """When a run measured both the planned and unplanned E01 gate
    benchmarks, require plan=on to be at least ``target``x faster."""
    on = current.get(PLAN_ON_NAME)
    off = current.get(PLAN_OFF_NAME)
    if on is None or off is None:
        return [], []
    speedup = off["min"] / on["min"] if on["min"] else float("inf")
    line = (f"{'plan-gate':>10}  plan=off {off['min'] * 1000:.2f} ms /"
            f" plan=on {on['min'] * 1000:.2f} ms = {speedup:.2f}x"
            f" (target {target:.1f}x)")
    if speedup < target:
        return [line], [
            f"planner speedup {speedup:.2f}x below the"
            f" {target:.1f}x target"
        ]
    return [line], []


def best_of(runs: list[dict[str, dict]]) -> dict[str, dict]:
    """Per-benchmark fastest entry across several extracted runs."""
    out: dict[str, dict] = {}
    for run in runs:
        for name, entry in run.items():
            best = out.get(name)
            if best is None or entry["min"] < best["min"]:
                out[name] = entry
    return out


def run_guarded_benchmarks(json_path: pathlib.Path) -> None:
    from benchmarks.report import run_benchmarks

    run_benchmarks(GUARDED_TARGETS, json_path)


def check_plan_gate(target: float, reps: int) -> int:
    """The planner acceptance gate: E01 at 1000 edges, plan=on vs
    plan=off, identical instances and >= ``target``x faster; writes the
    plan JSON artifact for CI upload."""
    from benchmarks.telemetry import plan_gate_times, write_plan_artifact

    try:
        on_s, off_s = plan_gate_times(reps=reps)
    except AssertionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    speedup = off_s / on_s if on_s else float("inf")
    artifact = write_plan_artifact()
    print(f"plan=off min {off_s * 1000:.1f} ms |"
          f" plan=on min {on_s * 1000:.1f} ms |"
          f" speedup {speedup:.2f}x (target {target:.1f}x)")
    print(f"plan artifact written to {artifact}")
    if speedup < target:
        print(f"\nplanner speedup {speedup:.2f}x below the"
              f" {target:.1f}x target", file=sys.stderr)
        return 1
    print("\nok: planner speedup meets the target")
    return 0


def check_telemetry_gate(baseline_path: pathlib.Path, reps: int,
                         bus_target: float,
                         disabled_threshold: float) -> int:
    """The live-telemetry acceptance gate: bus fan-out overhead vs a
    bare sink bounded by ``bus_target``, and the uninstrumented fast
    path still ≈ the committed baseline."""
    from benchmarks.telemetry import bus_throughput, telemetry_gate_times

    try:
        plain_ts, sink_ts, bus_ts = telemetry_gate_times(reps=reps)
    except AssertionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    plain_s = min(plain_ts)
    # pair each rep's back-to-back sink/bus runs; each rep times the
    # pair in both orders, so load drift lands symmetrically around
    # the true fan-out cost and the median ratio is a robust estimate
    ratios = sorted(b / s for s, b in zip(sink_ts, bus_ts) if s)
    overhead = (statistics.median(ratios) - 1
                if ratios else float("inf"))
    rate = bus_throughput()
    print(f"plain min {plain_s * 1000:.1f} ms |"
          f" sink min {min(sink_ts) * 1000:.1f} ms |"
          f" bus min {min(bus_ts) * 1000:.1f} ms")
    print("paired bus/sink ratios: "
          + " ".join(f"{r:.3f}" for r in ratios))
    print(f"bus fan-out overhead {overhead:+.2%} (median pair,"
          f" target <= {bus_target:.0%}) |"
          f" bus throughput {rate:,.0f} events/s")
    failures = []
    if overhead > bus_target:
        failures.append(
            f"bus overhead {overhead:+.2%} above the"
            f" {bus_target:.0%} target"
        )
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        entry = baseline.get(PLAN_ON_NAME)
        if entry:
            ratio = plain_s / entry["min"] if entry["min"] else \
                float("inf")
            print(f"disabled path {plain_s * 1000:.1f} ms vs baseline"
                  f" {entry['min'] * 1000:.1f} ms ({ratio:.2f}x,"
                  f" allowed {1 + disabled_threshold:.2f}x)")
            if ratio > 1 + disabled_threshold:
                failures.append(
                    f"uninstrumented run {ratio:.2f}x the committed"
                    f" baseline (allowed"
                    f" {1 + disabled_threshold:.2f}x) — the disabled"
                    " fast path regressed"
                )
    else:
        print(f"note: no baseline at {baseline_path};"
              " disabled-path check skipped")
    if failures:
        for failure in failures:
            print(f"\n{failure}", file=sys.stderr)
        return 1
    print("\nok: telemetry overhead within the gate")
    return 0


def check_reports(baseline_path: pathlib.Path, update: bool,
                  time_threshold: float) -> int:
    """The behavioural gate: fresh reference report vs committed one,
    plus a plan=on / plan=off count-agreement check."""
    from benchmarks.telemetry import reference_report
    from repro.engine import EvalConfig
    from repro.observability.diff import diff_reports
    from repro.observability.report import load_report

    current = reference_report()
    unplanned = reference_report(config=EvalConfig(plan=False))
    plan_diff = diff_reports(
        unplanned, current,
        threshold=time_threshold,
        min_time_ms=REPORT_TIME_FLOOR_MS,
        strict_counts=True,
        baseline_name="<reference run, plan=off>",
        candidate_name="<reference run, plan=on>",
    )
    if plan_diff.regressions():
        print(plan_diff.render_text())
        print(f"\nplan=on and plan=off disagree on"
              f" {len(plan_diff.regressions())} count column(s)",
              file=sys.stderr)
        return 1
    print("ok: plan=on and plan=off report identical counts")
    if update:
        current.write(baseline_path)
        print(f"wrote reference run report baseline to {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(f"error: no report baseline at {baseline_path};"
              " run with --update-reports first", file=sys.stderr)
        return 2
    try:
        baseline = load_report(baseline_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_reports(
        baseline, current,
        threshold=time_threshold,
        min_time_ms=REPORT_TIME_FLOOR_MS,
        strict_counts=True,
        baseline_name=str(baseline_path),
        candidate_name="<fresh reference run>",
    )
    print(diff.render_text())
    if diff.regressions():
        print(f"\n{len(diff.regressions())} report regression(s)",
              file=sys.stderr)
        return 1
    print("\nok: reference run report matches the baseline")
    return 0


def check_bench_gate(root: pathlib.Path, threshold: float,
                     min_time_ms: float, window: int,
                     min_points: int) -> int:
    """The trend gate: every ``BENCH_*.json`` series' latest point vs
    its own rolling-median history (the ``repro bench report`` rule)."""
    from repro.observability.trend import (
        TrendStore,
        render_trend_text,
        trend_report,
    )

    store = TrendStore.load(root)
    report = trend_report(store, threshold=threshold,
                          min_time_ms=min_time_ms, window=window,
                          min_points=min_points)
    print(render_trend_text(report), end="")
    if not store.series:
        print(f"note: no BENCH_*.json history under {root};"
              " trend gate vacuously passes")
        return 0
    if report["regressions"]:
        print(f"\n{len(report['regressions'])} trend regression(s)",
              file=sys.stderr)
        return 1
    return 0


def check_serve_gate(root: pathlib.Path, threshold: float,
                     min_time_ms: float, window: int,
                     min_points: int) -> int:
    """The server latency gate: the committed ``BENCH_serve.json``
    history (p95 request latency per workload family under the
    serve-load benchmark) run through the same rolling-median trend
    rule as every other series, restricted to ``exp == "serve"``."""
    from repro.observability.trend import (
        TrendStore,
        render_trend_text,
        trend_report,
    )

    store = TrendStore.load(root)
    store.series = {
        key: series for key, series in store.series.items()
        if series.exp == "serve"
    }
    report = trend_report(store, threshold=threshold,
                          min_time_ms=min_time_ms, window=window,
                          min_points=min_points)
    print(render_trend_text(report), end="")
    if not store.series:
        print(f"note: no serve rows in the BENCH_*.json history under"
              f" {root}; serve gate vacuously passes")
        return 0
    if report["regressions"]:
        print(f"\n{len(report['regressions'])} serve-latency trend"
              f" regression(s)", file=sys.stderr)
        return 1
    print("ok: serve p95 latencies within their trend windows")
    return 0


def check_benchmarks(args) -> int:
    """The timing gate: run (or load) the guarded benchmarks and
    compare min times against the committed baseline."""
    if args.json:
        current = extract(pathlib.Path(args.json))
    else:
        runs = []
        for _ in range(max(1, args.runs)):
            json_path = pathlib.Path(tempfile.mkstemp(suffix=".json")[1])
            run_guarded_benchmarks(json_path)
            runs.append(extract(json_path))
        current = best_of(runs)
    if not current:
        print("error: no guarded benchmarks in the run", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        baseline_path.write_text(json.dumps(current, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {len(current)} baseline entries to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"error: no baseline at {baseline_path};"
              " run with --update first", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    lines, failures = compare(baseline, current, args.threshold)
    gate_lines, gate_failures = plan_speedup_check(
        current, args.speedup_target
    )
    lines += gate_lines
    failures += gate_failures
    print("\n".join(lines))
    if failures:
        print(f"\n{len(failures)} regression(s) over"
              f" {args.threshold:.0%} threshold:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nok: no benchmark slower than baseline by more than"
          f" {args.threshold:.0%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="reuse an existing benchmark JSON"
                                       " instead of running the suite")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline JSON path")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed slowdown fraction (0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead"
                             " of comparing")
    parser.add_argument("--runs", type=int, default=2,
                        help="benchmark suite executions; each benchmark's"
                             " best time across runs is compared")
    parser.add_argument("--reports", action="store_true",
                        help="run the behavioural gate: diff the fresh"
                             " reference run report against the committed"
                             " baseline (strict counts)")
    parser.add_argument("--report-baseline",
                        default=str(REPORT_BASELINE_PATH),
                        help="committed run-report baseline path")
    parser.add_argument("--report-time-threshold", type=float,
                        default=REPORT_TIME_THRESHOLD,
                        help="allowed report slowdown factor minus one"
                             " (default: 10.0 = 11x)")
    parser.add_argument("--update-reports", action="store_true",
                        help="rewrite the run-report baseline from a"
                             " fresh reference run")
    parser.add_argument("--plan-gate", action="store_true",
                        help="run the planner acceptance gate: E01 at"
                             " 1000 edges, plan=on vs plan=off")
    parser.add_argument("--speedup-target", type=float,
                        default=PLAN_SPEEDUP_TARGET,
                        help="required plan=on speedup factor for the"
                             " plan gate (default: 5.0)")
    parser.add_argument("--gate-reps", type=int, default=3,
                        help="interleaved repetitions for the plan gate"
                             " (min time wins)")
    parser.add_argument("--telemetry-gate", action="store_true",
                        help="run the live-telemetry acceptance gate:"
                             " bus fan-out overhead and the disabled"
                             " fast path on E01 at 1000 edges")
    parser.add_argument("--bus-overhead-target", type=float,
                        default=BUS_OVERHEAD_TARGET,
                        help="allowed bus-vs-bare-sink overhead"
                             " fraction (default: 0.05 = 5%%)")
    parser.add_argument("--disabled-threshold", type=float,
                        default=DISABLED_OVERHEAD_THRESHOLD,
                        help="allowed uninstrumented slowdown fraction"
                             " vs the committed baseline (default: 1.0"
                             " = 2x, generous for cross-machine"
                             " baselines)")
    parser.add_argument("--serve-gate", action="store_true",
                        help="run the server latency gate: the"
                             " committed BENCH_serve.json p95 series"
                             " vs their rolling-median history")
    parser.add_argument("--bench-gate", action="store_true",
                        help="run the trend gate: each BENCH_*.json"
                             " series' latest point vs its rolling-"
                             "median history")
    parser.add_argument("--bench-root", default=str(HERE.parent),
                        help="directory holding the BENCH_*.json"
                             " history (default: the repo root)")
    parser.add_argument("--bench-threshold", type=float, default=None,
                        help="trend-gate relative slowdown (default:"
                             " 0.5 = +50%% over the rolling median)")
    parser.add_argument("--bench-min-time-ms", type=float, default=None,
                        help="trend-gate absolute jitter floor in ms"
                             " (default: 5.0)")
    parser.add_argument("--bench-window", type=int, default=None,
                        help="trend-gate rolling-median window"
                             " (default: 5)")
    parser.add_argument("--bench-min-points", type=int, default=None,
                        help="minimum series length before the trend"
                             " gate flags (default: 3)")
    parser.add_argument("--all", action="store_true",
                        help="run every gate in sequence — timing"
                             " baseline, plan, telemetry, reports and"
                             " bench trend — and fail if any fails")
    args = parser.parse_args(argv)

    def _trend_args() -> tuple:
        from repro.observability import trend

        return (
            pathlib.Path(args.bench_root),
            args.bench_threshold if args.bench_threshold is not None
            else trend.DEFAULT_THRESHOLD,
            args.bench_min_time_ms
            if args.bench_min_time_ms is not None
            else trend.DEFAULT_MIN_TIME_MS,
            args.bench_window if args.bench_window is not None
            else trend.DEFAULT_WINDOW,
            args.bench_min_points if args.bench_min_points is not None
            else trend.DEFAULT_MIN_POINTS,
        )

    def bench_gate() -> int:
        return check_bench_gate(*_trend_args())

    def serve_gate() -> int:
        return check_serve_gate(*_trend_args())

    if args.all:
        gates = (
            ("benchmarks", lambda: check_benchmarks(args)),
            ("plan-gate", lambda: check_plan_gate(
                args.speedup_target, args.gate_reps)),
            ("telemetry-gate", lambda: check_telemetry_gate(
                pathlib.Path(args.baseline), max(args.gate_reps, 5),
                args.bus_overhead_target, args.disabled_threshold)),
            ("reports", lambda: check_reports(
                pathlib.Path(args.report_baseline),
                update=args.update_reports,
                time_threshold=args.report_time_threshold)),
            ("bench-gate", bench_gate),
            ("serve-gate", serve_gate),
        )
        outcomes: list[tuple[str, int]] = []
        for name, gate in gates:
            print(f"==== {name} ====")
            outcomes.append((name, gate()))
            print()
        print("gate summary: " + "  ".join(
            f"{name}={'ok' if code == 0 else f'FAIL({code})'}"
            for name, code in outcomes
        ))
        return max((code for _, code in outcomes), default=0)

    if args.plan_gate:
        return check_plan_gate(args.speedup_target, args.gate_reps)

    if args.telemetry_gate:
        # resolving a 5% bound needs more samples than the 5x plan
        # bound: min-of-3 on the instrumented run still wobbles ~5%
        return check_telemetry_gate(
            pathlib.Path(args.baseline), max(args.gate_reps, 5),
            args.bus_overhead_target, args.disabled_threshold,
        )

    if args.reports or args.update_reports:
        return check_reports(
            pathlib.Path(args.report_baseline),
            update=args.update_reports,
            time_threshold=args.report_time_threshold,
        )

    if args.bench_gate:
        return bench_gate()

    if args.serve_gate:
        return serve_gate()

    return check_benchmarks(args)


if __name__ == "__main__":
    sys.path.insert(0, str(HERE.parent))
    sys.exit(main())
