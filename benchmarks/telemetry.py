"""Benchmark telemetry: ``BENCH_*.json`` rows and the session report.

Two persistent artifacts fall out of every benchmark session
(hooked in ``benchmarks/conftest.py``):

* **per-experiment timing rows** — one JSON line per benchmark appended
  to ``BENCH_<exp>.json`` at the repo root (``<exp>`` is the experiment
  prefix of the benchmark group, e.g. ``e01`` for
  ``e01-transitive-closure``).  Append-only: history accumulates across
  sessions, so the file is a time series of the experiment's numbers on
  this machine, one row per (session, benchmark);
* **the reference run report** — a
  :class:`repro.observability.report.RunReport` of the reference
  workload (transitive closure over the E01 generator), written to
  ``benchmarks/results/run_report.json``.  ``repro diff`` against the
  committed ``benchmarks/report_baseline.json`` is the behavioural
  regression gate (``benchmarks/check_regression.py --reports``):
  count columns are deterministic and machine-portable, so any count
  delta on an unchanged program is a real regression.

Row format (one JSON object per line)::

    {"schema_version": 1, "kind": "bench-row", "ts": <epoch seconds>,
     "session": "<iso date>", "exp": "e01", "group": "e01-transitive-closure",
     "name": "test_logres_seminaive[200]", "min_ms": 1.9, "mean_ms": 2.2,
     "stddev_ms": 0.1, "rounds": 5}
"""

from __future__ import annotations

import json
import pathlib
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = pathlib.Path(__file__).resolve().parent / "results"
REPORT_PATH = RESULTS / "run_report.json"

#: reference workload: the E01 transitive-closure program over the
#: deterministic edge generator — small enough to run on every session,
#: recursive enough to exercise every count column
REFERENCE_NODES = 100
REFERENCE_EDGES = 200
REFERENCE_SEED = 1


def experiment_id(group: str | None) -> str:
    """``e01-transitive-closure`` -> ``e01`` (rows file name key)."""
    return (group or "ungrouped").split("-", 1)[0]


def bench_path(exp: str) -> pathlib.Path:
    return ROOT / f"BENCH_{exp}.json"


def bench_row(meta, session_stamp: str) -> dict:
    """One appendable row for a pytest-benchmark ``Metadata``."""
    stats = meta.stats
    return {
        "schema_version": 1,
        "kind": "bench-row",
        "ts": time.time(),
        "session": session_stamp,
        "exp": experiment_id(meta.group),
        "group": meta.group or "ungrouped",
        "name": meta.name,
        "min_ms": stats.min * 1000,
        "mean_ms": stats.mean * 1000,
        "stddev_ms": stats.stddev * 1000,
        "rounds": stats.rounds,
    }


def append_rows(benchmarks) -> list[pathlib.Path]:
    """Append one row per benchmark to its experiment's ``BENCH_*.json``
    at the repo root; returns the touched paths."""
    session_stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    by_exp: dict[str, list[dict]] = {}
    for meta in benchmarks:
        if meta.has_error or meta.stats is None:
            continue
        row = bench_row(meta, session_stamp)
        by_exp.setdefault(row["exp"], []).append(row)
    touched = []
    for exp, rows in sorted(by_exp.items()):
        path = bench_path(exp)
        with open(path, "a", encoding="utf-8") as f:
            for row in rows:
                f.write(json.dumps(row, sort_keys=True) + "\n")
        touched.append(path)
    return touched


def read_rows(path: pathlib.Path) -> list[dict]:
    """All rows of one ``BENCH_*.json`` time series."""
    if not path.exists():
        return []
    with open(path, encoding="utf-8") as f:
        return [json.loads(line) for line in f if line.strip()]


def reference_report():
    """Run the reference workload under full instrumentation."""
    from benchmarks.conftest import TC_SOURCE, build_unit
    from repro.observability.report import report_program
    from repro.workloads import random_edges

    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(REFERENCE_NODES, REFERENCE_EDGES,
                       seed=REFERENCE_SEED)
    return report_program(
        schema, program, edb,
        source_file="benchmarks/reference:e01-transitive-closure",
    )


def write_reference_report(path=REPORT_PATH):
    report = reference_report()
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    report.write(path)
    return path
