"""Benchmark telemetry: ``BENCH_*.json`` rows and the session report.

Two persistent artifacts fall out of every benchmark session
(hooked in ``benchmarks/conftest.py``):

* **per-experiment timing rows** — one JSON line per benchmark appended
  to ``BENCH_<exp>.json`` at the repo root (``<exp>`` is the experiment
  prefix of the benchmark group, e.g. ``e01`` for
  ``e01-transitive-closure``).  Append-only: history accumulates across
  sessions, so the file is a time series of the experiment's numbers on
  this machine, one row per (session, benchmark);
* **the reference run report** — a
  :class:`repro.observability.report.RunReport` of the reference
  workload (transitive closure over the E01 generator), written to
  ``benchmarks/results/run_report.json``.  ``repro diff`` against the
  committed ``benchmarks/report_baseline.json`` is the behavioural
  regression gate (``benchmarks/check_regression.py --reports``):
  count columns are deterministic and machine-portable, so any count
  delta on an unchanged program is a real regression.

Row format (one JSON object per line)::

    {"schema_version": 1, "kind": "bench-row", "ts": <epoch seconds>,
     "session": "<iso date>", "exp": "e01", "group": "e01-transitive-closure",
     "name": "test_logres_seminaive[200]", "min_ms": 1.9, "mean_ms": 2.2,
     "stddev_ms": 0.1, "rounds": 5,
     "config": {"kernel": "incremental", "plan": true, ...}}

``config`` is the benchmark's ``extra_info["config"]`` (the active
:class:`~repro.engine.fixpoint.EvalConfig` switches), null for
benchmarks that measure no engine configuration.  Reading and appending
both go through :mod:`repro.observability.trend` — the perf-telemetry
store shared with ``repro bench`` — so ingestion is tolerant (malformed
or future-schema rows are skipped with a warning, never a traceback)
and appending de-duplicates: rows this session already appended for
the same (group, name, config) are superseded instead of stacked, for
*every* experiment — while rows from earlier sessions are history and
accumulate, which is what ``repro bench report`` trends over.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.observability.events import payload_header
from repro.observability.trend import append_bench_rows, read_bench_rows

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = pathlib.Path(__file__).resolve().parent / "results"
REPORT_PATH = RESULTS / "run_report.json"
PLAN_ARTIFACT_PATH = RESULTS / "plan_reference.json"

#: reference workload: the E01 transitive-closure program over the
#: deterministic edge generator — small enough to run on every session,
#: recursive enough to exercise every count column
REFERENCE_NODES = 100
REFERENCE_EDGES = 200
REFERENCE_SEED = 1

#: the planner gate workload: E01 at 1000 edges (the ISSUE 6 acceptance
#: size), same generator and seed as ``test_logres_plan_on/off[1000]``
PLAN_GATE_EDGES = 1000
PLAN_GATE_SEED = 1


def experiment_id(group: str | None) -> str:
    """``e01-transitive-closure`` -> ``e01`` (rows file name key)."""
    return (group or "ungrouped").split("-", 1)[0]


def bench_path(exp: str) -> pathlib.Path:
    return ROOT / f"BENCH_{exp}.json"


def bench_row(meta, session_stamp: str) -> dict:
    """One appendable row for a pytest-benchmark ``Metadata``."""
    stats = meta.stats
    extra = getattr(meta, "extra_info", None) or {}
    row = payload_header("bench-row")
    row.update({
        "ts": time.time(),
        "session": session_stamp,
        "exp": experiment_id(meta.group),
        "group": meta.group or "ungrouped",
        "name": meta.name,
        "min_ms": stats.min * 1000,
        "mean_ms": stats.mean * 1000,
        "stddev_ms": stats.stddev * 1000,
        "rounds": stats.rounds,
        "config": extra.get("config"),
    })
    return row


#: one session stamp per process: repeated suite runs within one pytest
#: session re-append under the same stamp, which the deduplicating
#: append supersedes instead of stacking
SESSION_STAMP = time.strftime("%Y-%m-%dT%H:%M:%S")


def append_rows(benchmarks) -> list[pathlib.Path]:
    """Append one row per benchmark to its experiment's ``BENCH_*.json``
    at the repo root; returns the touched paths.

    The deduplicating append of :mod:`repro.observability.trend`:
    same-session re-measurements supersede, other sessions' rows
    accumulate as trend history."""
    session_stamp = SESSION_STAMP
    by_exp: dict[str, list[dict]] = {}
    for meta in benchmarks:
        if meta.has_error or meta.stats is None:
            continue
        row = bench_row(meta, session_stamp)
        by_exp.setdefault(row["exp"], []).append(row)
    touched = []
    for exp, rows in sorted(by_exp.items()):
        touched.append(append_bench_rows(bench_path(exp), rows))
    return touched


def read_rows(path: pathlib.Path) -> list[dict]:
    """All ingestible rows of one ``BENCH_*.json`` time series; skipped
    lines are warned about on stderr instead of raising."""
    rows, warnings = read_bench_rows(path)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return rows


def reference_report(config=None):
    """Run the reference workload under full instrumentation."""
    from benchmarks.conftest import TC_SOURCE, build_unit
    from repro.observability.report import report_program
    from repro.workloads import random_edges

    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(REFERENCE_NODES, REFERENCE_EDGES,
                       seed=REFERENCE_SEED)
    return report_program(
        schema, program, edb, config=config,
        source_file="benchmarks/reference:e01-transitive-closure",
    )


def _plan_gate_workload():
    from benchmarks.conftest import TC_SOURCE, build_unit
    from repro.workloads import random_edges

    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(PLAN_GATE_EDGES // 2, PLAN_GATE_EDGES,
                       seed=PLAN_GATE_SEED)
    return schema, program, edb


def plan_gate_times(reps: int = 3) -> tuple[float, float]:
    """``(plan_on_min_s, plan_off_min_s)`` over ``reps`` interleaved
    runs of the gate workload, asserting identical instances — the
    measurement behind the >= 5x acceptance gate."""
    import time as _time

    from benchmarks.conftest import run_logres

    schema, program, edb = _plan_gate_workload()
    on_times, off_times = [], []
    for _ in range(max(1, reps)):
        t0 = _time.perf_counter()
        off = run_logres(schema, program, edb, True, plan=False)
        off_times.append(_time.perf_counter() - t0)
        t0 = _time.perf_counter()
        on = run_logres(schema, program, edb, True, plan=True)
        on_times.append(_time.perf_counter() - t0)
        if on != off:
            raise AssertionError(
                "plan=on and plan=off disagree on the gate workload"
            )
    return min(on_times), min(off_times)


class _CountingSink:
    """The cheapest possible event sink: counts emits, keeps nothing.

    Both telemetry-gate variants write their events *somewhere*; using
    the same trivial sink on both sides makes the measured delta pure
    bus fan-out (lock, ring, subscriber queues), not serialization.
    """

    def __init__(self):
        self.events = 0

    def emit(self, event) -> None:
        self.events += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def _instrumented_run(schema, program, edb, sink):
    from repro import Engine, EvalConfig, Semantics
    from repro.observability.instrument import Instrumentation

    obs = Instrumentation(sink=sink)
    engine = Engine(schema, program, EvalConfig(),
                    instrumentation=obs)
    instance = engine.run(edb, Semantics.INFLATIONARY)
    obs.close()
    return instance


def telemetry_gate_times(
    reps: int = 3,
) -> tuple[list[float], list[float], list[float]]:
    """``(plain_times, sink_times, bus_times)`` for the gate workload.

    Three interleaved variants of E01 at 1000 edges, ``reps`` runs
    each:

    * **plain** — NULL instrumentation, the production fast path
      (identical configuration to ``test_logres_plan_on[1000]``);
    * **sink** — full event emission into a do-nothing counting sink;
    * **bus** — the same events through an :class:`EventBus` carrying
      the counting sink as an attached sink *plus* one live subscriber
      (the shape a ``repro tail`` attachment produces).

    The gate compares sink and bus *within* each rep (back-to-back
    runs).  Each rep times the pair in **both orders** (sink-bus, then
    bus-sink): machine-load drift inflates one ordering and deflates
    its mirror, so across the 2 x ``reps`` pairs the drift lands
    symmetrically and the median ratio is a robust estimate of the
    true fan-out cost — a real bus regression still inflates every
    pair.  All three variants must compute the same instance.
    """
    import time as _time

    from benchmarks.conftest import run_logres
    from repro.observability.bus import EventBus

    def timed_sink():
        t0 = _time.perf_counter()
        out = _instrumented_run(schema, program, edb, _CountingSink())
        sink_times.append(_time.perf_counter() - t0)
        return out

    def timed_bus():
        bus = EventBus()
        bus.attach_sink(_CountingSink())
        sub = bus.subscribe(name="gate-tail")
        t0 = _time.perf_counter()
        out = _instrumented_run(schema, program, edb, bus)
        bus_times.append(_time.perf_counter() - t0)
        sub.close()
        return out

    schema, program, edb = _plan_gate_workload()
    # one untimed warmup: the first evaluation pays import, allocator
    # and index-build warmup that would otherwise land on the first
    # timed variant and skew the cheap uninstrumented measurement
    run_logres(schema, program, edb, True, plan=True)
    plain_times, sink_times, bus_times = [], [], []
    for _ in range(max(1, reps)):
        t0 = _time.perf_counter()
        plain = run_logres(schema, program, edb, True, plan=True)
        plain_times.append(_time.perf_counter() - t0)

        sink_out = timed_sink()
        bus_out = timed_bus()
        bus_out2 = timed_bus()
        sink_out2 = timed_sink()

        if not (plain == sink_out == bus_out
                == bus_out2 == sink_out2):
            raise AssertionError(
                "telemetry gate variants disagree on the workload"
            )
    return plain_times, sink_times, bus_times


def bus_throughput(events: int = 50_000) -> float:
    """Events per second through a bus with one attached sink and one
    live subscriber — the BENCH row for raw bus fan-out."""
    import time as _time

    from repro.observability.bus import EventBus
    from repro.observability.events import Heartbeat

    bus = EventBus()
    bus.attach_sink(_CountingSink())
    sub = bus.subscribe(name="throughput")
    payload = [
        Heartbeat(iteration=i, stratum=None, facts=i, inventions=0,
                  elapsed=0.0)
        for i in range(events)
    ]
    t0 = _time.perf_counter()
    for event in payload:
        bus.emit(event)
    elapsed = _time.perf_counter() - t0
    sub.close()
    bus.close()
    return events / elapsed if elapsed else float("inf")


def write_plan_artifact(path=PLAN_ARTIFACT_PATH) -> pathlib.Path:
    """The planner's chosen orders for the gate workload, as the JSON
    ``repro plan`` would print (uploaded as a CI artifact)."""
    from repro import Engine, EvalConfig

    schema, program, edb = _plan_gate_workload()
    engine = Engine(schema, program, EvalConfig())
    plans = engine.explain_plan(edb)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": 1,
        "kind": "plan-artifact",
        "workload": f"e01-transitive-closure[{PLAN_GATE_EDGES}]",
        "plans": [p.to_dict() for p in plans],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def write_reference_report(path=REPORT_PATH):
    report = reference_report()
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    report.write(path)
    return path
