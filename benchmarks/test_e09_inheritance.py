"""E9 — isa hierarchies: propagation cost vs depth and fanout.

Paper anchor: Section 2.1's generalization hierarchies; at the instance
level "the oids of sub-classes [are inserted] within the oids of the
super-class", realized by the automatically generated isa propagation
rules (active referential integrity).

Series: time to propagate N objects inserted at the *leaves* of a class
tower up to the root, vs tower depth (fanout 1) and vs fanout at depth
1.  Expected shape: linear in (objects × edges on the leaf-to-root
path); widening the hierarchy without deepening it costs nothing per
object.
"""

import pytest

from repro import Engine, FactSet, Oid, TupleValue
from repro.constraints import isa_propagation_rules
from repro.language.ast import Program
from repro.types import STRING, SchemaBuilder

DEPTHS = [2, 4, 8]
FANOUTS = [2, 4, 8]
OBJECTS = 60


def tower_schema(depth):
    """c0 isa c1 isa ... isa c<depth> (c<depth> is the root)."""
    builder = SchemaBuilder()
    builder.clazz(f"c{depth}", ("tag", STRING))
    for level in range(depth - 1, -1, -1):
        builder.clazz(
            f"c{level}",
            (f"c{level + 1}", f"c{level + 1}"),
            (f"extra{level}", STRING),
        )
        builder.isa(f"c{level}", f"c{level + 1}")
    return builder.build()


def star_schema(fanout):
    """fanout sibling subclasses under one root."""
    builder = SchemaBuilder()
    builder.clazz("root", ("tag", STRING))
    for i in range(fanout):
        builder.clazz(f"kid{i}", ("root", "root"), (f"extra{i}", STRING))
        builder.isa(f"kid{i}", "root")
    return builder.build()


def leaf_objects(schema, leaf, count):
    edb = FactSet()
    eff = schema.effective_type(leaf)
    for i in range(count):
        attrs = {label: f"v{i}" for label in eff.labels}
        edb.add_object(leaf, Oid(i + 1), TupleValue(attrs))
    return edb


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.benchmark(group="e09-inheritance-depth")
def test_propagation_vs_depth(benchmark, depth):
    schema = tower_schema(depth)
    program = Program(tuple(isa_propagation_rules(schema)))
    edb = leaf_objects(schema, "c0", OBJECTS)

    def run():
        return Engine(schema, program).run(edb)

    out = benchmark(run)
    assert len(out.oids_of(f"c{depth}")) == OBJECTS


@pytest.mark.parametrize("fanout", FANOUTS)
@pytest.mark.benchmark(group="e09-inheritance-fanout")
def test_propagation_vs_fanout(benchmark, fanout):
    schema = star_schema(fanout)
    program = Program(tuple(isa_propagation_rules(schema)))
    # objects spread evenly over the sibling leaves
    edb = FactSet()
    per_leaf = OBJECTS // fanout
    oid = 1
    for i in range(fanout):
        for j in range(per_leaf):
            edb.add_object(
                f"kid{i}", Oid(oid),
                TupleValue({"tag": f"t{j}", f"extra{i}": "x"}),
            )
            oid += 1

    def run():
        return Engine(schema, program).run(edb)

    out = benchmark(run)
    assert len(out.oids_of("root")) == per_leaf * fanout


def test_propagated_views_project_correctly():
    schema = tower_schema(3)
    program = Program(tuple(isa_propagation_rules(schema)))
    edb = leaf_objects(schema, "c0", 5)
    out = Engine(schema, program).run(edb)
    # the root view keeps only the root's attributes
    root_value = out.value_of("c3", Oid(1))
    assert set(root_value.labels) <= {"tag"}
