"""Shared benchmark helpers.

The paper (SIGMOD 1990) contains **no quantitative evaluation** — it is a
design overview.  This suite is the reconstructed experiment set E1-E10
documented in DESIGN.md §5: every benchmark regenerates one row/series of
the evaluation the paper *implies* (its worked examples and architecture
claims), with baselines where the paper names them (flat Datalog;
LOGRES-on-ALGRES translation).

Run with ``pytest benchmarks/ --benchmark-only``; grouping puts each
experiment's sweep in one table, which is the "row/series" shape recorded
in EXPERIMENTS.md.
"""

import pytest

from repro import Engine, EvalConfig, Semantics, parse_source


def build_unit(source):
    unit = parse_source(source)
    return unit.schema(), unit.program()


TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


@pytest.fixture(scope="session")
def tc_unit():
    return build_unit(TC_SOURCE)


def run_logres(schema, program, edb, seminaive=True,
               semantics=Semantics.INFLATIONARY, max_facts=2_000_000,
               plan=True, compile_threshold=64):
    engine = Engine(
        schema, program,
        EvalConfig(seminaive=seminaive, max_facts=max_facts,
                   plan=plan, compile_threshold=compile_threshold),
    )
    return engine.run(edb, semantics)


def eval_config_info(seminaive=True, plan=True, compile_threshold=64):
    """The ``benchmark.extra_info["config"]`` payload: which engine
    configuration a row measured (recorded into ``BENCH_*.json``)."""
    return {
        "kernel": "incremental",
        "seminaive": seminaive,
        "plan": plan,
        "compile_threshold": compile_threshold,
    }


def pytest_sessionfinish(session, exitstatus):
    """Persist session telemetry: BENCH_*.json rows at the repo root
    plus the reference run report (see benchmarks/telemetry.py).

    Disable with ``--benchmark-disable`` runs (no stats collected) or
    by setting ``REPRO_NO_TELEMETRY``.
    """
    import os

    if os.environ.get("REPRO_NO_TELEMETRY"):
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    from benchmarks import telemetry

    touched = telemetry.append_rows(bench_session.benchmarks)
    report_path = telemetry.write_reference_report()
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None:
        for path in touched:
            tr.write_line(f"telemetry: appended rows to {path}")
        tr.write_line(f"telemetry: reference run report at {report_path}")
