"""Shared benchmark helpers.

The paper (SIGMOD 1990) contains **no quantitative evaluation** — it is a
design overview.  This suite is the reconstructed experiment set E1-E10
documented in DESIGN.md §5: every benchmark regenerates one row/series of
the evaluation the paper *implies* (its worked examples and architecture
claims), with baselines where the paper names them (flat Datalog;
LOGRES-on-ALGRES translation).

Run with ``pytest benchmarks/ --benchmark-only``; grouping puts each
experiment's sweep in one table, which is the "row/series" shape recorded
in EXPERIMENTS.md.
"""

import pytest

from repro import Engine, EvalConfig, Semantics, parse_source


def build_unit(source):
    unit = parse_source(source)
    return unit.schema(), unit.program()


TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


@pytest.fixture(scope="session")
def tc_unit():
    return build_unit(TC_SOURCE)


def run_logres(schema, program, edb, seminaive=True,
               semantics=Semantics.INFLATIONARY, max_facts=2_000_000):
    engine = Engine(
        schema, program,
        EvalConfig(seminaive=seminaive, max_facts=max_facts),
    )
    return engine.run(edb, semantics)
