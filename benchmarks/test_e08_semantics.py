"""E8 — Inflationary vs stratified vs non-inflationary semantics.

Paper anchor: Section 3.1 — "Two different semantics can be assigned to
LOGRES programs"; stratification "yields the perfect model semantics";
modules make databases "parametric with respect to the semantics of the
rules they support".

Series: evaluation time of the same stratified program (closure plus a
negation stratum) under the three semantics, vs graph size.  Expected
shape: stratified ≈ inflationary (same work, partitioned); the
non-inflationary route recomputes the IDB from scratch each step and
lands an integer factor above both.  All three produce the same model
on this (stratified) program — asserted by the correctness gate.
"""

import pytest

from benchmarks.conftest import build_unit, run_logres
from repro import Semantics
from repro.workloads import random_edges

SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
  leaf = (n: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
  leaf(n Y) <- parent(par X, chil Y), ~parent(par Y, chil Z).
"""

SIZES = [40, 80]

ALL_SEMANTICS = [
    Semantics.INFLATIONARY,
    Semantics.STRATIFIED,
    Semantics.NONINFLATIONARY,
]


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.parametrize("semantics", ALL_SEMANTICS,
                         ids=lambda s: s.value)
@pytest.mark.benchmark(group="e08-semantics")
def test_semantics(benchmark, semantics, edges):
    schema, program = build_unit(SOURCE)
    edb = random_edges(edges // 2, edges, seed=17)
    out = benchmark(run_logres, schema, program, edb, True, semantics)
    assert out.count("anc") >= out.count("parent")


def test_all_semantics_agree_on_stratified_program():
    schema, program = build_unit(SOURCE)
    edb = random_edges(30, 60, seed=17)
    results = [
        run_logres(schema, program, edb, True, semantics)
        for semantics in ALL_SEMANTICS
    ]
    assert results[0] == results[1] == results[2]


def test_inflationary_is_uniform_on_unstratified_program():
    """The headline claim: inflationary semantics gives *every* program
    a deterministic meaning, including non-stratified ones that the
    perfect-model semantics rejects."""
    from repro.errors import StratificationError

    schema, program = build_unit("""
    associations
      move = (a: string, b: string).
      win = (p: string).
    rules
      win(p X) <- move(a X, b Y), ~win(p Y).
    """)
    edb = random_edges(12, 18, seed=3, pred="move", a="a", b="b")
    out = run_logres(schema, program, edb, True, Semantics.INFLATIONARY)
    assert out.count("win") > 0
    with pytest.raises(StratificationError):
        run_logres(schema, program, edb, True, Semantics.STRATIFIED)
