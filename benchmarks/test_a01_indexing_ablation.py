"""A1 (ablation) — per-predicate hash indexes in the fact store.

DESIGN.md calls out the indexed fact store (S8) as an engineering choice
of the main-memory substrate; this ablation quantifies it.  The engine is
run with index lookups enabled vs. disabled (full predicate scans) on
join-heavy transitive closure.

Expected shape: the gap widens super-linearly with database size, since
each scan is linear in the predicate extension and joins multiply scans.
"""

import pytest

from benchmarks.conftest import build_unit, TC_SOURCE
from repro import Engine, EvalConfig
from repro.workloads import random_edges

SIZES = [60, 120]


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.parametrize("indexed", [True, False],
                         ids=["indexed", "scan"])
@pytest.mark.benchmark(group="a01-indexing")
def test_indexing(benchmark, edges, indexed):
    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(edges // 2, edges, seed=31)
    config = EvalConfig(seminaive=False, use_indexes=indexed)

    def run():
        return Engine(schema, program, config).run(edb)

    out = benchmark(run)
    assert out.count("anc") > 0


def test_both_configurations_agree():
    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(40, 80, seed=31)
    fast = Engine(schema, program,
                  EvalConfig(seminaive=False, use_indexes=True)).run(edb)
    slow = Engine(schema, program,
                  EvalConfig(seminaive=False, use_indexes=False)).run(edb)
    assert fast == slow
