"""A2 (ablation) — the ALGRES algebraic optimizer.

The compiler emits deliberately naive plans (one
scan-select-rename-project block per literal).  This ablation measures
the classical rewrites (selection pushdown, projection cascading, rename
merging) on a filter-heavy join program where pushdown actually reduces
intermediate cardinalities.

Expected shape: the optimizer wins when selective conditions sit above
joins of wide inputs; on already-tight plans (transitive closure) the
two are within noise.
"""

import pytest

from benchmarks.conftest import build_unit
from repro import FactSet, TupleValue
from repro.compiler import compile_program
from repro.workloads import random_edges

FILTER_HEAVY = """
associations
  person = (pid: integer, age: integer, city: integer).
  knows = (a: integer, b: integer).
  peers = (a: integer, b: integer).
rules
  peers(a X, b Y) <- knows(a X, b Y), person(pid X, age AX, city C),
                     person(pid Y, age AY, city C),
                     AX > 40, AY > 40.
"""


def social(people=150, edges=400, seed=41):
    import random

    rng = random.Random(seed)
    edb = FactSet()
    for p in range(people):
        edb.add_association("person", TupleValue(
            pid=p, age=rng.randrange(18, 80), city=rng.randrange(5)))
    for _ in range(edges):
        a, b = rng.randrange(people), rng.randrange(people)
        if a != b:
            edb.add_association("knows", TupleValue(a=a, b=b))
    return edb


@pytest.mark.parametrize("optimized", [False, True],
                         ids=["naive-plan", "optimized-plan"])
@pytest.mark.benchmark(group="a02-optimizer")
def test_filter_heavy_join(benchmark, optimized):
    schema, program = build_unit(FILTER_HEAVY)
    edb = social()
    compiled = compile_program(program, schema, optimize_plans=optimized)
    out = benchmark(compiled.run, edb)
    assert out.count("peers") >= 0


@pytest.mark.parametrize("optimized", [False, True],
                         ids=["naive-plan", "optimized-plan"])
@pytest.mark.benchmark(group="a02-optimizer-tc")
def test_transitive_closure(benchmark, optimized):
    from benchmarks.conftest import TC_SOURCE

    schema, program = build_unit(TC_SOURCE)
    edb = random_edges(50, 100, seed=41)
    compiled = compile_program(program, schema, optimize_plans=optimized)
    out = benchmark(compiled.run, edb)
    assert out.count("anc") > 0


def test_optimizer_preserves_results():
    schema, program = build_unit(FILTER_HEAVY)
    edb = social(people=60, edges=150)
    plain = compile_program(program, schema, optimize_plans=False)
    opt = compile_program(program, schema, optimize_plans=True)
    assert plain.run(edb) == opt.run(edb)
