"""E1 — Recursive rules: ancestor/transitive closure.

Paper anchor: the recursive rules of Example 3.2 and the Section 3.2
positioning against flat Datalog systems (LDL / NAIL!).

Series: evaluation time vs |parent| for
  * the LOGRES engine, semi-naive pass,
  * the LOGRES engine, naive inflationary pass,
  * the flat Datalog baseline (semi-naive),
  * the LOGRES-on-ALGRES compiled plan.

Expected shape: semi-naive beats naive with a widening gap; the flat
baseline is fastest (no labels / complex values to interpret); the
ALGRES route is slowest ("rather inefficiently", Section 1) — typically a
small constant factor over the native engine.
"""

import pytest

from benchmarks.conftest import eval_config_info, run_logres
from repro.compiler import compile_program
from repro.datalog import Atom, DVar, DatalogEngine, DatalogRule
from repro.workloads import random_edges

SIZES = [50, 100, 200]
#: the planner gate size: the ISSUE 6 acceptance point — plan=on must
#: be >= 5x faster than the plan=off semi-naive baseline here
PLAN_SIZE = 1000


def edge_pairs(facts):
    return {
        (f.value["par"], f.value["chil"]) for f in facts.facts_of("parent")
    }


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_logres_seminaive(benchmark, tc_unit, edges):
    schema, program = tc_unit
    edb = random_edges(edges // 2, edges, seed=1)
    benchmark.extra_info["config"] = eval_config_info()
    out = benchmark(run_logres, schema, program, edb, True)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_logres_naive(benchmark, tc_unit, edges):
    schema, program = tc_unit
    edb = random_edges(edges // 2, edges, seed=1)
    benchmark.extra_info["config"] = eval_config_info(seminaive=False)
    out = benchmark(run_logres, schema, program, edb, False)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.parametrize("edges", [PLAN_SIZE])
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_logres_plan_on(benchmark, tc_unit, edges):
    """The planned + compiled semi-naive path at the gate size."""
    schema, program = tc_unit
    edb = random_edges(edges // 2, edges, seed=1)
    benchmark.extra_info["config"] = eval_config_info(plan=True)
    out = benchmark(run_logres, schema, program, edb, True)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.parametrize("edges", [PLAN_SIZE])
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_logres_plan_off(benchmark, tc_unit, edges):
    """The dynamic-scheduler semi-naive baseline at the gate size."""
    schema, program = tc_unit
    edb = random_edges(edges // 2, edges, seed=1)
    benchmark.extra_info["config"] = eval_config_info(plan=False)
    out = benchmark(run_logres, schema, program, edb, True, plan=False)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_flat_datalog_baseline(benchmark, edges):
    X, Y, Z = DVar("X"), DVar("Y"), DVar("Z")
    rules = [
        DatalogRule(Atom("anc", X, Y), (Atom("parent", X, Y),)),
        DatalogRule(Atom("anc", X, Z),
                    (Atom("parent", X, Y), Atom("anc", Y, Z))),
    ]
    facts = {
        ("parent", pair)
        for pair in edge_pairs(random_edges(edges // 2, edges, seed=1))
    }
    out = benchmark(DatalogEngine(rules).seminaive, facts)
    assert any(pred == "anc" for pred, _ in out)


@pytest.mark.parametrize("edges", SIZES)
@pytest.mark.benchmark(group="e01-transitive-closure")
def test_algres_compiled(benchmark, tc_unit, edges):
    schema, program = tc_unit
    edb = random_edges(edges // 2, edges, seed=1)
    compiled = compile_program(program, schema)
    out = benchmark(compiled.run, edb)
    assert out.count("anc") >= out.count("parent")


def test_all_routes_agree(tc_unit):
    """Correctness gate for the whole experiment: every measured system
    computes the same closure."""
    schema, program = tc_unit
    edb = random_edges(40, 80, seed=3)
    native = run_logres(schema, program, edb, True)
    naive = run_logres(schema, program, edb, False)
    unplanned = run_logres(schema, program, edb, True, plan=False)
    forced = run_logres(schema, program, edb, True, compile_threshold=0)
    compiled = compile_program(program, schema).run(edb)
    assert native == naive == unplanned == forced == compiled
