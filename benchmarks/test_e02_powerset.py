"""E2 — The powerset program (Example 3.3).

Paper anchor: Example 3.3 builds the powerset of a relation with the
Append and Union built-ins; Section 2.1 motivates associations by
duplicate elimination — "we need associations for those computations
where elimination of duplicates is needed (e.g. fixpoint computations)".

Series: evaluation time vs |R| (the result has 2^n tuples, so runtime is
expected to grow exponentially with a base near 4 — the quadratic
union-join over the accumulated powerset dominates).  A second series
checks the duplicate-elimination claim by counting how many *derivation
attempts* set semantics collapses.
"""

import pytest

from benchmarks.conftest import build_unit, run_logres
from repro import FactSet, TupleValue

POWERSET_SOURCE = """
associations
  r = (d: integer).
  power = (s: {integer}).
rules
  power(s X) <- X = {}.
  power(s X) <- r(d Y), append({}, Y, X).
  power(s X) <- power(s Y), power(s Z), union(Y, Z, X).
"""

SIZES = [3, 4, 5, 6]


def relation(n):
    edb = FactSet()
    for i in range(n):
        edb.add_association("r", TupleValue(d=i))
    return edb


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e02-powerset")
def test_powerset(benchmark, n):
    schema, program = build_unit(POWERSET_SOURCE)
    out = benchmark(run_logres, schema, program, relation(n))
    assert out.count("power") == 2 ** n


def test_duplicate_elimination_collapse():
    """|power| stays 2^n even though the union rule proposes
    |power|^2 candidate derivations per step — the association's set
    semantics absorbs them, which is why the fixpoint converges."""
    schema, program = build_unit(POWERSET_SOURCE)
    out = run_logres(schema, program, relation(6))
    assert out.count("power") == 64
