"""E11 — Live telemetry: bus fan-out cost and raw throughput.

Not a paper experiment: this series guards the observability promise
that carried over from the zero-overhead instrumentation work — wiring
the event stream through the :class:`~repro.observability.bus.EventBus`
(attached sink plus one live subscriber, the shape a ``repro tail``
attachment produces) must stay a small constant over emitting the same
events into a bare sink, and the uninstrumented fast path must not pay
at all.

Series (group ``e11-telemetry`` → ``BENCH_e11.json`` rows):

  * ``test_bus_publish_throughput`` — events/sec through a bus with one
    attached sink and one subscriber (``extra_info["events_per_sec"]``);
  * ``test_e01_instrumented_sink`` / ``test_e01_instrumented_bus`` —
    the instrumented E01 1k-edge run with a bare counting sink vs the
    same run published through the bus; their ratio is what
    ``check_regression.py --telemetry-gate`` bounds at 5%;
  * ``test_e01_disabled`` — the NULL-instrumentation run, the
    disabled-path ≈0 reference.
"""

import pytest

from benchmarks.conftest import eval_config_info, run_logres
from benchmarks.telemetry import (
    PLAN_GATE_EDGES,
    _CountingSink,
    _instrumented_run,
    _plan_gate_workload,
    bus_throughput,
)
from repro.observability.bus import EventBus

#: synthetic events pushed per throughput round
THROUGHPUT_EVENTS = 20_000


@pytest.mark.benchmark(group="e11-telemetry")
def test_bus_publish_throughput(benchmark):
    rate = benchmark(bus_throughput, THROUGHPUT_EVENTS)
    benchmark.extra_info["events_per_sec"] = round(rate)
    assert rate > 10_000  # anything slower would dominate small runs


@pytest.mark.benchmark(group="e11-telemetry")
def test_e01_disabled(benchmark):
    schema, program, edb = _plan_gate_workload()
    benchmark.extra_info["config"] = eval_config_info(plan=True)
    out = benchmark(run_logres, schema, program, edb, True, plan=True)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.benchmark(group="e11-telemetry")
def test_e01_instrumented_sink(benchmark):
    schema, program, edb = _plan_gate_workload()

    def run():
        return _instrumented_run(schema, program, edb, _CountingSink())

    out = benchmark(run)
    assert out.count("anc") >= out.count("parent")


@pytest.mark.benchmark(group="e11-telemetry")
def test_e01_instrumented_bus(benchmark):
    schema, program, edb = _plan_gate_workload()

    def run():
        bus = EventBus()
        bus.attach_sink(_CountingSink())
        sub = bus.subscribe(name="bench-tail")
        try:
            return _instrumented_run(schema, program, edb, bus)
        finally:
            sub.close()

    out = benchmark(run)
    assert out.count("anc") >= out.count("parent")
