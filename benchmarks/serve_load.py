"""The ``repro serve`` load benchmark: BENCH_serve.json trend rows.

Per workload family: seed a served database at the smoke scale, start a
real server (real sockets, real admission control), drive N client
threads x M mixed read/write requests through
:mod:`repro.server.loadgen`, and append one trend row through the
perf-telemetry store.  ``min_ms`` — the metric every trend tool gates
on — is the **p95 request latency** (the SLO number for a server;
documented in ``docs/SERVE.md``); p50/p99 and the read/write split ride
along in the row.

A second, deliberately under-provisioned server (max-concurrent 1,
queue-depth 1) then takes a burst of concurrent requests to demonstrate
the overload contract: at least one request is shed with
429 + ``Retry-After``, every admitted request completes, and nothing
hangs — the acceptance criterion of the serve PR, exercised on every
run, and enforced by ``check_regression.py --serve-gate`` over the
committed history.

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py \
        [--families reach kg] [--clients 4] [--requests 25] [--root .]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from telemetry import ROOT, SESSION_STAMP, bench_path  # noqa: E402

from repro.observability.events import payload_header  # noqa: E402
from repro.observability.trend import append_bench_rows  # noqa: E402
from repro.server import ReproServer, ServerConfig  # noqa: E402
from repro.server.loadgen import (  # noqa: E402
    LoadSpec,
    post_json,
    run_load,
    seed_database,
)

#: the benchmark scale: small enough for CI, recursive enough to load
#: the engine on every read
SMOKE_SCALE = 400


def start_server(data_dir: str, **overrides) -> tuple[ReproServer, str]:
    config = ServerConfig(port=0, data_dir=data_dir, **overrides)
    server = ReproServer(config)
    host, port = server.start()
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="serve-load"
    )
    thread.start()
    return server, f"http://{host}:{port}"


def bench_family(family: str, clients: int, requests: int,
                 write_ratio: float, seed: int) -> dict:
    """One measured load run; returns the appendable bench row."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as data_dir:
        seed_database(data_dir, "bench", family, SMOKE_SCALE, seed)
        server, base = start_server(data_dir, snapshot_interval=8)
        try:
            spec = LoadSpec(family=family, clients=clients,
                            requests=requests, write_ratio=write_ratio)
            report = run_load(base, "bench", spec)
        finally:
            server.close()
    stats = report.to_dict()
    failures = {
        code: n for code, n in report.statuses.items()
        if code not in (200, 201)
    }
    if failures or report.transport_errors:
        raise SystemExit(
            f"serve-load[{family}]: unexpected outcomes {failures},"
            f" {report.transport_errors} transport error(s)"
        )
    return {
        **payload_header("bench-row"),
        "ts": time.time(),
        "session": SESSION_STAMP,
        "exp": "serve",
        "group": "serve-load",
        "name": f"{family}[c{clients}x{requests}]",
        # the trend-gated metric: p95 request latency over the mix
        "min_ms": stats["p95_ms"],
        "mean_ms": (sum(report.latencies_ms) / len(report.latencies_ms)
                    if report.latencies_ms else 0.0),
        "stddev_ms": 0.0,
        "rounds": report.total,
        "config": {
            "family": family,
            "clients": clients,
            "requests": requests,
            "write_ratio": write_ratio,
            "scale": SMOKE_SCALE,
            "metric": "p95_request_latency",
        },
        "serve": stats,
    }


def overload_scenario(family: str, seed: int) -> dict:
    """The overload acceptance check on an under-provisioned server:
    sheds must be 429 + Retry-After, admitted work must complete."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as data_dir:
        seed_database(data_dir, "bench", family, SMOKE_SCALE, seed)
        server, base = start_server(
            data_dir, max_concurrent=1, queue_depth=1,
            queue_timeout=0.2, retry_after=2.0,
        )
        try:
            spec = LoadSpec(family=family, clients=8, requests=4,
                            write_ratio=0.0, timeout=60.0)
            report = run_load(base, "bench", spec)
        finally:
            server.close()
    shed = report.statuses.get(429, 0)
    ok = report.statuses.get(200, 0)
    other = {
        code: n for code, n in report.statuses.items()
        if code not in (200, 429)
    }
    problems = []
    if shed == 0:
        problems.append("overload never shed a request (expected 429s)")
    if ok == 0:
        problems.append("no admitted request completed under overload")
    if report.retry_after_seen < shed:
        problems.append(
            f"{shed} shed responses but only"
            f" {report.retry_after_seen} Retry-After headers"
        )
    if other:
        problems.append(f"unexpected statuses under overload: {other}")
    if report.transport_errors:
        problems.append(
            f"{report.transport_errors} hung/failed connection(s)"
            " (every request must get a response)"
        )
    if problems:
        raise SystemExit("serve-load overload: " + "; ".join(problems))
    return {"shed": shed, "completed": ok,
            "retry_after_seen": report.retry_after_seen}


def smoke_requests(base: str) -> None:
    """One of each read op against a live server (used by --probe)."""
    for op, body in (("run", {}), ("check", {}), ("plan", {})):
        status, payload, _ = post_json(base, f"/v1/db/bench/{op}", body)
        if status not in (200, 409):
            raise SystemExit(f"probe {op}: unexpected {status} {payload}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--families", nargs="+", default=["reach", "kg"])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25)
    parser.add_argument("--write-ratio", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--root", default=str(ROOT),
                        help="directory of BENCH_serve.json (default:"
                             " repo root)")
    parser.add_argument("--skip-overload", action="store_true")
    args = parser.parse_args(argv)

    rows = []
    for family in args.families:
        row = bench_family(family, args.clients, args.requests,
                           args.write_ratio, args.seed)
        rows.append(row)
        print(f"serve-load[{family}]: p50={row['serve']['p50_ms']}ms"
              f" p95={row['serve']['p95_ms']}ms"
              f" p99={row['serve']['p99_ms']}ms"
              f" throughput={row['serve']['throughput_rps']}rps",
              file=sys.stderr)
    if not args.skip_overload:
        outcome = overload_scenario(args.families[0], args.seed)
        print(f"serve-load overload: {outcome['shed']} shed (429 +"
              f" Retry-After), {outcome['completed']} completed",
              file=sys.stderr)
    root = pathlib.Path(args.root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / bench_path("serve").name
    append_bench_rows(path, rows)
    print(f"serve-load: appended {len(rows)} row(s) to {path}",
          file=sys.stderr)
    print(json.dumps([r["serve"] for r in rows], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
