"""End-to-end smoke of ``repro serve`` as a real process.

What CI's ``serve-smoke`` job runs (``.github/workflows/ci.yml``):

1. seed a served database, start ``repro serve`` as a subprocess, wait
   for the ready file;
2. drive concurrent mixed read/write clients, recording every
   acknowledged ``applied_seq``;
3. validate the ``/metrics`` Prometheus exposition mid-traffic;
4. SIGTERM the server mid-traffic and assert the graceful-drain
   contract: in-flight requests finish or get clean 503s (never a hung
   connection), and the process exits 0 within the drain deadline;
5. restart the server on the same data directory and assert clean WAL
   recovery: ``applied_seq`` >= every acknowledged write, database
   readable, fingerprints present.

Exit 0 = all holds.  Every failure prints the server's captured stderr
so the CI artifact tells the whole story.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.server.loadgen import post_json, seed_database  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parent.parent
DRAIN_DEADLINE = 10.0
FAMILY = "reach"
SCALE = 300


def start_server(data_dir: str, log_path: pathlib.Path,
                 extra: list[str] | None = None):
    ready = pathlib.Path(data_dir) / "ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    log = open(log_path, "a", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--data-dir", data_dir,
         "--ready-file", str(ready),
         "--snapshot-interval", "4",
         "--drain-deadline", str(DRAIN_DEADLINE),
         *(extra or [])],
        env=env, stdout=log, stderr=log, cwd=str(REPO),
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, port = ready.read_text().split()
            ready.unlink()
            return proc, f"http://{host}:{port}"
        if proc.poll() is not None:
            raise SystemExit(
                f"server died on startup (rc={proc.returncode});"
                f" log:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise SystemExit(f"server never became ready; log:\n{log_path.read_text()}")


def validate_metrics(base: str) -> None:
    with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
        content_type = resp.headers.get("Content-Type", "")
        text = resp.read().decode("utf-8")
    assert "version=0.0.4" in content_type, content_type
    required = ["server_request_seconds", "server_requests_total",
                "server_admission_active", "bus_published_events"]
    for series in required:
        assert f"repro_{series}" in text, f"{series} missing from /metrics"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name and value, f"malformed exposition line: {line!r}"
        float(value)  # every sample must be a number


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as d:
        log_path = pathlib.Path(d) / "server.log"
        seed_database(d, "smoke", FAMILY, SCALE, seed=0)
        proc, base = start_server(d, log_path)

        acked: list[int] = []
        outcomes: dict[str, int] = {}
        lock = threading.Lock()
        stop = threading.Event()

        def client(n: int) -> None:
            serial = 0
            while not stop.is_set():
                serial += 1
                try:
                    if serial % 3 == 0:
                        status, payload, _ = post_json(
                            base, "/v1/db/smoke/apply",
                            {"module": f'rules\n  edge(src "sm{n}x{serial}",'
                                       f' dst "sm{n}y{serial}").',
                             "mode": "RIDV"}, timeout=30)
                        if status == 200:
                            with lock:
                                acked.append(payload["applied_seq"])
                    else:
                        status, _, _ = post_json(
                            base, "/v1/db/smoke/run", {}, timeout=30)
                except OSError:
                    # connection refused/reset after shutdown completes
                    # is fine; a *timeout* would have raised above too,
                    # but only after the 30s budget — count it
                    status = -1
                with lock:
                    outcomes[str(status)] = outcomes.get(str(status), 0) + 1

        threads = [threading.Thread(target=client, args=(n,), daemon=True)
                   for n in range(4)]
        for t in threads:
            t.start()
        time.sleep(2.0)  # real traffic before the drain

        try:
            validate_metrics(base)
        except AssertionError as exc:
            failures.append(f"/metrics validation: {exc}")

        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=DRAIN_DEADLINE + 15)
            if rc != 0:
                failures.append(f"server exited {rc} after SIGTERM"
                                " (expected graceful 0)")
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server hung past the drain deadline")
        stop.set()
        for t in threads:
            t.join(timeout=35)
            if t.is_alive():
                failures.append("client thread hung (a request never"
                                " got a response)")

        max_acked = max(acked, default=0)
        print(f"serve-smoke: traffic outcomes {outcomes},"
              f" {len(acked)} acked writes (max seq {max_acked})",
              file=sys.stderr)
        if not acked:
            failures.append("no write was ever acknowledged before drain")

        # ---- restart: crash/drain recovery must lose nothing acked ----
        proc2, base2 = start_server(d, log_path)
        try:
            with urllib.request.urlopen(
                base2 + "/v1/db/smoke", timeout=10
            ) as resp:
                info = json.loads(resp.read())
            if info["applied_seq"] < max_acked:
                failures.append(
                    f"recovery lost acknowledged writes:"
                    f" applied_seq {info['applied_seq']} < acked {max_acked}"
                )
            status, payload, _ = post_json(base2, "/v1/db/smoke/run", {})
            if status != 200:
                failures.append(f"post-recovery read failed: {status}"
                                f" {payload}")
            validate_metrics(base2)
            print(f"serve-smoke: recovered applied_seq"
                  f" {info['applied_seq']}, instance facts"
                  f" {payload.get('facts')}", file=sys.stderr)
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                if proc2.wait(timeout=DRAIN_DEADLINE + 15) != 0:
                    failures.append("second server exited non-zero")
            except subprocess.TimeoutExpired:
                proc2.kill()
                failures.append("second server hung on SIGTERM")

        if failures:
            print("serve-smoke FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            print("---- server log ----", file=sys.stderr)
            print(log_path.read_text(), file=sys.stderr)
            return 1
    print("serve-smoke: drain, recovery and /metrics all clean",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
