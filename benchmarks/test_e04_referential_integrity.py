"""E4 — Generated referential-integrity constraints (Section 2.1).

Paper anchor: "the consistency of legal database states is dictated by a
collection of integrity constraints, which are automatically built from
type equations".

Series: consistency-check time vs database size for the football
database (Example 2.1) — deep NF² values with player references nested
in sequences and sets — plus the cost of *detecting* an injected
violation.  Expected shape: linear in the number of stored references;
violation detection costs the same as a clean pass (the checker is a
full scan either way).
"""

import pytest

from repro.constraints import ConsistencyChecker, referential_denials
from repro.values import Oid
from repro.workloads import football_database

SIZES = [4, 8, 16]


@pytest.mark.parametrize("teams", SIZES)
@pytest.mark.benchmark(group="e04-referential-integrity")
def test_clean_check(benchmark, teams):
    db = football_database(teams=teams, games=teams * 3, seed=11)
    checker = ConsistencyChecker(db.schema)
    instance = db.instance()
    violations = benchmark(checker.check, instance)
    assert violations == []


@pytest.mark.parametrize("teams", SIZES)
@pytest.mark.benchmark(group="e04-referential-integrity")
def test_violation_detection(benchmark, teams):
    db = football_database(teams=teams, games=teams * 3, seed=11)
    instance = db.instance()
    # inject one dangling player reference deep inside a team roster
    team_fact = next(instance.facts_of("team"))
    broken = team_fact.value.with_field(
        "substitutes",
        team_fact.value["substitutes"].with_element(Oid(999_999)),
    )
    instance.add_object("team", team_fact.oid, broken)
    checker = ConsistencyChecker(db.schema)
    violations = benchmark(checker.check, instance)
    assert any(v.kind == "reference" for v in violations)


def test_constraint_generation_shape():
    """The generator emits one denial per reference field — for the
    football schema: game.h_team, game.g_team (player references inside
    constructors are checked structurally, not by top-level denials)."""
    db = football_database(teams=2, games=1)
    denials = referential_denials(db.schema)
    names = sorted(d.name for d in denials)
    assert names == ["ref:game.g_team->team", "ref:game.h_team->team"]
