"""E5 — Oid invention and the interesting-pair example (Section 3.1).

Paper anchor: the IP example and its quantification problem; LOGRES's
fix routes the computation through an association (explicit duplicate
control) before promoting tuples to objects (Example 3.4).

Series: time vs employee count for
  * direct invention — ``ip(emp E, mgr M) <- ...`` invents per
    valuation;
  * association-then-promote — Example 3.4's two-stage form.

Expected shape: both linear in the number of matching pairs; the
two-stage form pays one extra scan but avoids the per-valuation
head-satisfaction probe, so the two curves stay within a small factor.
The invention count equals the number of *distinct* pairs in both.
"""

import pytest

from benchmarks.conftest import build_unit
from repro import Engine, EvalConfig, FactSet, TupleValue

DIRECT = """
classes
  ip = (employee: string, manager: string).
associations
  emp = (ename: string, pname: string, works: string).
  dept = (dname: string, depmgr: string).
rules
  ip(employee E, manager M) <- emp(ename E, pname N, works D),
                               dept(dname D, depmgr M),
                               emp(ename M, pname N).
"""

TWO_STAGE = """
classes
  ip = (employee: string, manager: string).
associations
  pair = (employee: string, manager: string).
  emp = (ename: string, pname: string, works: string).
  dept = (dname: string, depmgr: string).
rules
  pair(employee E, manager M) <- emp(ename E, pname N, works D),
                                 dept(dname D, depmgr M),
                                 emp(ename M, pname N).
  ip(X) <- pair(X).
"""

SIZES = [40, 80, 160]


def company(employees, seed=0):
    """Employees spread over departments; one in ~4 shares the name of
    their department's manager (an interesting pair)."""
    import random

    rng = random.Random(seed)
    edb = FactSet()
    departments = max(2, employees // 8)
    managers = [f"mgr{d}" for d in range(departments)]
    for d, m in enumerate(managers):
        edb.add_association("dept", TupleValue(
            dname=f"d{d}", depmgr=m))
        edb.add_association("emp", TupleValue(
            ename=m, pname=f"boss{d}", works=f"d{(d + 1) % departments}"))
    for e in range(employees):
        d = rng.randrange(departments)
        name = f"boss{d}" if rng.random() < 0.25 else f"worker{e}"
        edb.add_association("emp", TupleValue(
            ename=f"e{e}", pname=name, works=f"d{d}"))
    return edb


@pytest.mark.parametrize("employees", SIZES)
@pytest.mark.benchmark(group="e05-oid-invention")
def test_direct_invention(benchmark, employees):
    schema, program = build_unit(DIRECT)
    edb = company(employees)

    def run():
        return Engine(schema, program, EvalConfig()).run(edb)

    out = benchmark(run)
    assert out.count("ip") > 0


@pytest.mark.parametrize("employees", SIZES)
@pytest.mark.benchmark(group="e05-oid-invention")
def test_association_then_promote(benchmark, employees):
    schema, program = build_unit(TWO_STAGE)
    edb = company(employees)

    def run():
        return Engine(schema, program, EvalConfig()).run(edb)

    out = benchmark(run)
    assert out.count("ip") == out.count("pair")


def test_both_forms_create_one_object_per_distinct_pair():
    schema_d, program_d = build_unit(DIRECT)
    schema_t, program_t = build_unit(TWO_STAGE)
    edb = company(60, seed=2)
    direct = Engine(schema_d, program_d).run(edb)
    staged = Engine(schema_t, program_t).run(edb)
    pairs_direct = {
        (f.value["employee"], f.value["manager"])
        for f in direct.facts_of("ip")
    }
    pairs_staged = {
        (f.value["employee"], f.value["manager"])
        for f in staged.facts_of("ip")
    }
    assert pairs_direct == pairs_staged
    assert len(direct.oids_of("ip")) == len(pairs_direct)
    assert len(staged.oids_of("ip")) == len(pairs_staged)
