"""Static mode checks for module application (codes ``LG7xx``).

:func:`check_module_application` validates a ``(state, module, mode)``
triple *before* any fixpoint is computed:

* ``LG701`` (error) — the module has a goal but the mode is data-variant
  (Section 4.1: data-variant applications never answer a goal);
* ``LG702`` (warning) — a rule-deletion mode names a rule that does not
  occur in the database rules, so the deletion is a no-op (likely a
  stale or mistyped module).

Inconsistency of the initial/resulting state (``LG704``/``LG703``) is a
runtime property and is diagnosed by :func:`repro.modules.apply_module`,
which attaches the corresponding diagnostic to the
:class:`~repro.errors.ModuleApplicationError` it raises.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity


def check_module_application(state, module, mode) -> list[Diagnostic]:
    """Statically checkable legality conditions of one application."""
    diagnostics: list[Diagnostic] = []
    if module.goal is not None and not mode.allows_goal:
        diagnostics.append(Diagnostic(
            "LG701", Severity.ERROR,
            f"mode {mode.value} is data-variant and cannot answer the"
            f" goal of module {module.name!r}",
            getattr(module.goal, "span", None),
        ))
    if mode.rule_effect == "deletion":
        present = set(state.rules)
        for rule in module.rules:
            if rule not in present:
                diagnostics.append(Diagnostic(
                    "LG702", Severity.WARNING,
                    f"module {module.name!r} ({mode.value}): deleted rule"
                    f" {rule!r} does not occur in the database rules;"
                    " the deletion is a no-op",
                    getattr(rule, "span", None),
                ))
    return diagnostics
