"""Intra-stratum rule interference and independence certificates.

Within one stratum every rule of an iteration evaluates against the same
snapshot, but the *composition* of their deltas is not always order-free:

* a derive and a delete of the same predicate race (``LG1001``) — the
  paper's nondeterministic semantics would pick an order, the
  deterministic ones make the outcome depend on rule order;
* two non-inventing rules assigning attributes of the same class
  predicate race on the surviving o-value (also ``LG1001``: class facts
  overwrite per ``(pred, oid)``);
* a deletion racing a same-stratum reader (``LG1002``) can diverge
  between the deterministic semantics and any nondeterministic
  application order;
* oid invention racing a reader of the invented class, or another
  inventing rule (``LG1003``), makes oid numbering and downstream
  derivations order-sensitive.

:func:`interference_edges` materializes these as edges of an
interference graph over the stratum's rules; the complement yields
**independence certificates** (:func:`independent_groups`): a greedy,
deterministic partition into groups of rules that pairwise do not
interfere — provably order-insensitive, safe to permute or evaluate in
parallel.  One program-level guard applies: when **two or more rules of
the program invent oids**, any reordering can reshuffle strata numbering
and interleave fresh-oid draws, so every certificate degrades to a
singleton (see ``docs/ANALYSIS.md`` for the soundness argument).

The same computation backs ``repro analyze``, the ``independent_groups``
field of every :class:`repro.engine.planner.Plan` (the engine reorders
rules only inside a certified group), and the ``analysis`` section of
``repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Collector, Related
from repro.analysis.effects import RuleEffects, program_effects
from repro.language.analysis import AnalyzedProgram, stratify
from repro.language.ast import Program

#: diagnostic codes emitted by the confluence pass, by edge kind.
HAZARD_CODES = {
    "derive-delete": "LG1001",
    "class-overwrite": "LG1001",
    "delete-read": "LG1002",
    "invention-invention": "LG1003",
    "invention-read": "LG1003",
}

#: default ceiling on interference pairs examined per run; ``repro
#: analyze --max-pairs`` overrides it (exceeding the budget degrades
#: certificates to singletons and exits 3).
DEFAULT_MAX_PAIRS = 250_000


@dataclass(frozen=True)
class Interference:
    """One interference edge between two rules of a stratum.

    ``a < b`` by rule index; ``pred`` is the contested predicate when
    the conflict is predicate-level (None for inventor/inventor races).
    """

    a: int
    b: int
    kind: str
    pred: str | None
    reason: str

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "kind": self.kind,
            "pred": self.pred,
            "reason": self.reason,
        }


def _roots_overlap(pred_a: str, pred_b: str, schema) -> bool:
    if pred_a == pred_b:
        return True
    if (
        schema.has(pred_a) and schema.is_class(pred_a)
        and schema.has(pred_b) and schema.is_class(pred_b)
    ):
        return schema.hierarchy_root(pred_a) == schema.hierarchy_root(pred_b)
    return False


def _reads_pred(effects: RuleEffects, pred: str, schema) -> bool:
    """Does the rule read ``pred`` — directly, or (for a class) any
    class of the same generalization hierarchy?"""
    if pred in effects.all_reads:
        return True
    if schema.has(pred) and schema.is_class(pred):
        root = schema.hierarchy_root(pred)
        for read in effects.reads | effects.negative_reads:
            if schema.has(read) and schema.is_class(read) and \
                    schema.hierarchy_root(read) == root:
                return True
    return False


def _pair_edges(a: RuleEffects, b: RuleEffects, schema) -> list[Interference]:
    """Every interference edge between two rules of one stratum."""
    edges: list[Interference] = []

    def add(kind: str, pred: str | None, reason: str) -> None:
        edges.append(Interference(a.index, b.index, kind, pred, reason))

    for lo, hi in ((a, b), (b, a)):
        if lo.derives and hi.deletes and \
                _roots_overlap(lo.derives, hi.deletes, schema):
            add(
                "derive-delete", hi.deletes,
                f"rule {lo.index} derives {lo.derives!r} while rule"
                f" {hi.index} deletes {hi.deletes!r}",
            )
            break
    if (
        a.derives is not None and a.derives == b.derives
        and a.head_is_class and b.head_is_class
        and not a.invents_oid and not b.invents_oid
    ):
        add(
            "class-overwrite", a.derives,
            f"rules {a.index} and {b.index} both assign attributes of"
            f" class {a.derives!r}; the surviving o-value depends on"
            " rule order",
        )
    for deleter, reader in ((a, b), (b, a)):
        if deleter.deletes and reader.index != deleter.index and \
                _reads_pred(reader, deleter.deletes, schema):
            add(
                "delete-read", deleter.deletes,
                f"rule {deleter.index} deletes {deleter.deletes!r} while"
                f" rule {reader.index} reads it",
            )
    if a.invents_oid and b.invents_oid:
        add(
            "invention-invention", None,
            f"rules {a.index} and {b.index} both invent oids; numbering"
            " depends on evaluation order",
        )
    else:
        for inventor, reader in ((a, b), (b, a)):
            if inventor.invents_oid and inventor.derives and \
                    _reads_pred(reader, inventor.derives, schema):
                add(
                    "invention-read", inventor.derives,
                    f"rule {inventor.index} invents {inventor.derives!r}"
                    f" objects that rule {reader.index} reads",
                )
    return edges


def interference_edges(
    effects: list[RuleEffects], schema
) -> list[Interference]:
    """The interference graph of one scope (stratum), deduplicated,
    ordered by (a, b, kind)."""
    seen: set[tuple] = set()
    out: list[Interference] = []
    ordered = sorted(effects, key=lambda e: e.index)
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            for edge in _pair_edges(ordered[i], ordered[j], schema):
                key = (edge.a, edge.b, edge.kind, edge.pred)
                if key not in seen:
                    seen.add(key)
                    out.append(edge)
    return out


def independent_groups(
    indexes, edges: list[Interference], *, multi_inventor: bool = False
) -> list[list[int]]:
    """Partition ``indexes`` into certified-independent groups.

    Greedy and deterministic: rules are placed in ascending index order
    into the first group containing no interfering member.  With two or
    more inventing rules anywhere in the program (``multi_inventor``)
    every group is a singleton — reordering could reshuffle strata and
    interleave fresh-oid numbering across inventors.
    """
    ordered = sorted(indexes)
    if multi_inventor:
        return [[i] for i in ordered]
    adjacent: dict[int, set[int]] = {i: set() for i in ordered}
    for edge in edges:
        if edge.a in adjacent and edge.b in adjacent:
            adjacent[edge.a].add(edge.b)
            adjacent[edge.b].add(edge.a)
    groups: list[list[int]] = []
    for i in ordered:
        for group in groups:
            if not adjacent[i].intersection(group):
                group.append(i)
                break
        else:
            groups.append([i])
    return groups


# ---------------------------------------------------------------------------
# whole-program analysis
# ---------------------------------------------------------------------------
@dataclass
class StratumInterference:
    """Interference graph and certificates of one stratum."""

    index: int
    rules: list[int]
    edges: list[Interference] = field(default_factory=list)
    groups: list[list[int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "rules": list(self.rules),
            "interference": [e.to_dict() for e in self.edges],
            "independent_groups": [list(g) for g in self.groups],
        }


@dataclass
class InterferenceAnalysis:
    """The whole-program interference analysis behind ``repro analyze``."""

    effects: dict[int, RuleEffects]
    strata: list[StratumInterference]
    inventors: int
    pair_budget_exceeded: bool = False

    def all_edges(self) -> list[Interference]:
        return [e for s in self.strata for e in s.edges]


def stratum_indexes(analyzed: AnalyzedProgram) -> list[list[int]]:
    """Clean, headed rule indexes per stratum — the same grouping as
    :func:`repro.engine.fixpoint.stratify_runtimes` uses at run time,
    so ``repro plan`` and ``repro analyze`` agree on scope contents."""
    local = Collector()
    strata = stratify(
        Program(analyzed.rules, analyzed.goal), analyzed.schema, local,
    )
    headed = [
        (idx, rule) for idx, rule, _ in analyzed.clean_rules()
        if rule.head is not None
    ]
    by_rule: dict[int, int] = {}
    for level, stratum in enumerate(strata):
        for rule in stratum:
            for idx, candidate in headed:
                if candidate == rule and idx not in by_rule:
                    by_rule[idx] = level
                    break
    grouped: dict[int, list[int]] = {}
    for idx, _ in headed:
        grouped.setdefault(by_rule.get(idx, 0), []).append(idx)
    return [sorted(grouped[k]) for k in sorted(grouped)]


def analyze_interference(
    analyzed: AnalyzedProgram, *, max_pairs: int | None = None,
) -> InterferenceAnalysis:
    """Effects, interference graphs and certificates for every stratum.

    ``max_pairs`` bounds the total number of rule pairs examined; past
    the budget the remaining strata get no edges and singleton groups
    (flagged by ``pair_budget_exceeded`` — ``repro analyze`` exits 3).
    """
    effects = program_effects(analyzed)
    inventors = sum(
        1 for e in effects.values()
        if e.invents_oid and e.writes is not None
    )
    multi = inventors >= 2
    strata: list[StratumInterference] = []
    examined = 0
    exceeded = False
    for level, indexes in enumerate(stratum_indexes(analyzed)):
        scope = [effects[i] for i in indexes if i in effects]
        pairs = len(scope) * (len(scope) - 1) // 2
        if exceeded or (
            max_pairs is not None and examined + pairs > max_pairs
        ):
            exceeded = True
            strata.append(StratumInterference(
                index=level,
                rules=list(indexes),
                edges=[],
                groups=[[i] for i in indexes],
            ))
            continue
        examined += pairs
        edges = interference_edges(scope, analyzed.schema)
        strata.append(StratumInterference(
            index=level,
            rules=list(indexes),
            edges=edges,
            groups=independent_groups(indexes, edges, multi_inventor=multi),
        ))
    return InterferenceAnalysis(
        effects=effects,
        strata=strata,
        inventors=inventors,
        pair_budget_exceeded=exceeded,
    )


# ---------------------------------------------------------------------------
# confluence pass (LG10xx)
# ---------------------------------------------------------------------------
def check_interference(
    analyzed: AnalyzedProgram,
    sink: Collector,
    analysis: InterferenceAnalysis | None = None,
) -> None:
    """Emit one ``LG10xx`` warning per interference edge.

    ``LG1001`` — order-dependent derive/delete or write-write pair;
    ``LG1002`` — deletion racing a same-stratum reader (result
    divergence hazard under the nondeterministic semantics);
    ``LG1003`` — oid invention racing a reader or another inventor.
    """
    if analysis is None:
        analysis = analyze_interference(analyzed)
    if analysis.pair_budget_exceeded:
        sink.warning(
            "LG1004",
            "interference analysis pair budget exceeded; certificates"
            " degraded to singletons and hazards may be missed"
            " (raise --max-pairs)",
        )
    for stratum in analysis.strata:
        for edge in stratum.edges:
            code = HAZARD_CODES[edge.kind]
            first = analysis.effects.get(edge.a)
            second = analysis.effects.get(edge.b)
            span = second.span if second is not None else None
            related = ()
            if first is not None:
                related = (Related("conflicting rule here", first.span),)
            sink.warning(
                code,
                f"{edge.reason} in stratum {stratum.index}; the outcome"
                " depends on rule application order",
                span,
                related=related,
            )
