"""Diagnostics: stable codes, severities, spans, and collection.

The static analyzer reports problems as :class:`Diagnostic` values instead
of raising on the first failure.  Each diagnostic carries

* a **stable code** (``LG101`` ... ``LG704``, catalogued in
  :data:`CODES` and ``docs/DIAGNOSTICS.md``),
* a **severity** (:class:`Severity`),
* a human-readable **message**,
* an optional **span** (:class:`repro.span.Span`) and **file**, and
* optional **related** locations (e.g. the first definition of a
  duplicated rule).

A :class:`Collector` accumulates every diagnostic of an analysis run; the
legacy exception API (``TypingError`` and friends raised on the first
error) is preserved by calling the analysis entry points without a
collector, in which case :func:`raise_for` converts the first
error-severity diagnostic into the matching exception.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.errors import (
    IllegalOidRuleError,
    ModuleApplicationError,
    ParseError,
    SafetyError,
    SchemaError,
    StratificationError,
    TypingError,
)
from repro.span import Span


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` prevents evaluation; ``WARNING`` flags probable mistakes
    (lint may be asked to treat them as errors); ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: every stable diagnostic code, with a one-line title.  ``repro lint``
#: and ``docs/DIAGNOSTICS.md`` are kept in sync with this table (tested).
CODES: dict[str, str] = {
    # syntax and schema
    "LG101": "syntax error",
    "LG102": "invalid schema",
    "LG103": "unknown type name in equation",
    # resolution
    "LG201": "unknown predicate",
    "LG202": "unresolvable positional arguments",
    "LG203": "data-function arity mismatch",
    "LG204": "unknown data function",
    # typing
    "LG301": "unknown attribute label",
    "LG302": "illegal self argument",
    "LG303": "constant does not belong to its type",
    "LG304": "variable used at incompatible types",
    "LG305": "variable used both as object and as value",
    "LG306": "oid variable ranges over distinct hierarchies",
    "LG307": "head object variable bound to a plain value",
    # safety
    "LG401": "argument-less literal over a predicate with arguments",
    "LG402": "builtin variable cannot be bound",
    "LG403": "head variable not bound by the body",
    # stratification
    "LG501": "program is not stratified",
    # lint warnings
    "LG601": "singleton variable",
    "LG602": "duplicate rule",
    "LG603": "subsumed rule",
    "LG604": "rule unreachable from the goal or any class",
    "LG605": "oid invention inside a recursive cycle",
    "LG606": "predicate both derived and deleted in one stratum",
    # module application
    "LG701": "goal not allowed under a data-variant mode",
    "LG702": "deleted rule does not occur in the database rules",
    "LG703": "module application yields an inconsistent state",
    "LG704": "initial state is inconsistent",
    # runtime budgets (execution guards; docs/ROBUSTNESS.md)
    "LG801": "wall-clock timeout exceeded",
    "LG802": "derived-fact budget exceeded",
    "LG803": "oid invention budget exceeded",
    "LG804": "derived fact exceeds the size budget",
    "LG805": "evaluation cancelled",
    "LG806": "iteration budget exceeded",
    # server admission & lifecycle (docs/SERVE.md)
    "LG807": "server overloaded, request shed",
    "LG808": "server draining, not accepting work",
    # storage
    "LG901": "persisted database state is corrupt or unreadable",
    # interference / confluence analysis (docs/ANALYSIS.md)
    "LG1001": "order-dependent derive/delete or write-write rule pair",
    "LG1002": "deletion races a reader in the same stratum",
    "LG1003": "oid invention races a concurrent rule",
    "LG1004": "interference analysis pair budget exceeded",
}

#: which legacy exception class a code maps onto when no collector is
#: supplied (fail-fast API compatibility).
_EXCEPTIONS = {
    "LG1": ParseError,
    "LG102": SchemaError,
    "LG103": SchemaError,
    "LG2": TypingError,
    "LG3": TypingError,
    "LG306": IllegalOidRuleError,
    "LG4": SafetyError,
    "LG5": StratificationError,
    "LG7": ModuleApplicationError,
}


@dataclass(frozen=True)
class Related:
    """A secondary source location attached to a diagnostic."""

    message: str
    span: Span | None = None
    file: str | None = None

    def to_dict(self) -> dict:
        return {
            "message": self.message,
            "file": self.file,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    file: str | None = None
    related: tuple[Related, ...] = ()

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def with_file(self, file: str) -> "Diagnostic":
        """A copy of this diagnostic attributed to ``file`` (set on every
        related location that has none)."""
        return Diagnostic(
            self.code, self.severity, self.message, self.span, file,
            tuple(
                r if r.file else Related(r.message, r.span, file)
                for r in self.related
            ),
        )

    def render(self) -> str:
        """``file:line:col: severity[CODE]: message`` (parts optional)."""
        line = self.span.line if self.span else 0
        column = self.span.column if self.span else 0
        location = f"{self.file or '<input>'}:{line}:{column}"
        out = f"{location}: {self.severity.value}[{self.code}]: {self.message}"
        for rel in self.related:
            rline = rel.span.line if rel.span else 0
            rcol = rel.span.column if rel.span else 0
            out += (
                f"\n  note: {rel.file or self.file or '<input>'}"
                f":{rline}:{rcol}: {rel.message}"
            )
        return out

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "related": [r.to_dict() for r in self.related],
        }


def diagnostics_to_json(diagnostics: list[Diagnostic]) -> str:
    """Machine-readable output of ``repro lint --format json``.

    Versioned like every other JSON surface (reports, events, profiles):
    the payload leads with the shared ``SCHEMA_VERSION`` stream header.
    """
    from repro.observability.events import payload_header

    payload = payload_header("diagnostics")
    payload["diagnostics"] = [d.to_dict() for d in diagnostics]
    return json.dumps(payload, indent=2)


def exception_for(diag: Diagnostic):
    """The legacy exception class a diagnostic code maps onto."""
    cls = _EXCEPTIONS.get(diag.code) or _EXCEPTIONS.get(diag.code[:3])
    return cls or TypingError


def raise_for(diag: Diagnostic) -> None:
    """Raise the legacy exception matching ``diag`` (fail-fast mode).

    The raised exception carries the diagnostic as ``exc.diagnostic`` so
    callers migrating to the new API can recover code and span.
    """
    cls = exception_for(diag)
    message = diag.message
    if diag.span is not None and cls is not ParseError:
        message = f"{message} (line {diag.span.line}," \
                  f" column {diag.span.column})"
    if cls is ParseError:
        exc = cls(
            diag.message,
            diag.span.line if diag.span else 0,
            diag.span.column if diag.span else 0,
        )
    else:
        exc = cls(message)
    exc.diagnostic = diag
    exc.diagnostics = (diag,)
    raise exc


class Collector:
    """Accumulates diagnostics; the collect-all counterpart of raising.

    Passing a collector into the analysis entry points switches them from
    fail-fast (raise on first error) to collect-all: every diagnostic is
    recorded and analysis continues wherever recovery is possible.
    """

    def __init__(self):
        self.diagnostics: list[Diagnostic] = []

    def emit(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        for d in diags:
            self.emit(d)

    # convenience constructors -----------------------------------------
    def error(self, code: str, message: str, span: Span | None = None,
              related: tuple[Related, ...] = ()) -> None:
        self.emit(Diagnostic(code, Severity.ERROR, message, span,
                             related=related))

    def warning(self, code: str, message: str, span: Span | None = None,
                related: tuple[Related, ...] = ()) -> None:
        self.emit(Diagnostic(code, Severity.WARNING, message, span,
                             related=related))

    def info(self, code: str, message: str, span: Span | None = None,
             related: tuple[Related, ...] = ()) -> None:
        self.emit(Diagnostic(code, Severity.INFO, message, span,
                             related=related))

    # queries ----------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


def emit_or_raise(
    sink: Collector | None,
    code: str,
    message: str,
    span: Span | None = None,
    related: tuple[Related, ...] = (),
    severity: Severity = Severity.ERROR,
) -> None:
    """Report one diagnostic: collect when a sink is given, raise the
    legacy exception otherwise (only error severity ever raises)."""
    diag = Diagnostic(code, severity, message, span, related=related)
    if sink is not None:
        sink.emit(diag)
    elif severity is Severity.ERROR:
        raise_for(diag)
