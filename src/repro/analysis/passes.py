"""Warning-level lint passes (codes ``LG6xx``).

These run only over rules that analyzed without errors (the driver's
``clean_rules``): each pass flags a construct that is *legal* but almost
certainly not what the author meant — a probable typo (singleton
variable), dead weight (duplicate / subsumed / unreachable rules), or a
semantic trap of the LOGRES evaluation model (oid invention inside a
recursive cycle, deriving and deleting one predicate in the same
stratum).
"""

from __future__ import annotations

from repro._util import strongly_connected_components
from repro.analysis.diagnostics import Collector, Related
from repro.language.analysis import AnalyzedProgram, stratify
from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    Constant,
    FunctionApp,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Var,
)
from repro.span import Span


def run_warning_passes(
    analyzed: AnalyzedProgram, sink: Collector,
) -> None:
    """Run every ``LG6xx`` pass over the clean rules of ``analyzed``."""
    clean = analyzed.clean_rules()
    check_singleton_variables(clean, analyzed, sink)
    check_duplicate_and_subsumed(clean, sink)
    check_unreachable(clean, analyzed.goal, analyzed, sink)
    check_invention_in_recursion(clean, sink)
    check_derive_and_delete(analyzed, sink)


def _span_of(node) -> Span | None:
    return getattr(node, "span", None)


def _head_pred(rule: Rule) -> str | None:
    if isinstance(rule.head, Literal):
        return rule.head.pred
    return None


# ---------------------------------------------------------------------------
# LG601 — singleton variables
# ---------------------------------------------------------------------------
def check_singleton_variables(clean, analyzed, sink: Collector) -> None:
    """A variable occurring exactly once in a rule is usually a typo.

    Exempt: names starting with ``_`` (the conventional don't-care
    prefix) and the head object variable of an oid-inventing rule, which
    by design occurs only in the head.
    """
    for idx, rule, report in clean:
        counts: dict[Var, int] = {}
        literals = list(rule.body) + (
            [rule.head] if rule.head is not None else []
        )
        for lit in literals:
            for var in lit.variables():
                counts[var] = counts.get(var, 0) + 1
        invented: set[Var] = set()
        if report.invents_oid and isinstance(rule.head, Literal):
            if isinstance(rule.head.args.self_term, Var):
                invented.add(rule.head.args.self_term)
            if rule.head.args.tuple_var is not None:
                invented.add(rule.head.args.tuple_var)
        for var, n in counts.items():
            if n > 1 or var.name.startswith("_") or var in invented:
                continue
            sink.warning(
                "LG601",
                f"variable {var!r} occurs only once in rule {rule!r};"
                " prefix it with '_' if that is intentional",
                _span_of(rule),
            )


# ---------------------------------------------------------------------------
# LG602 / LG603 — duplicate and subsumed rules (alpha-equivalence)
# ---------------------------------------------------------------------------
#: backtracking-search size caps for alpha-subsumption; larger bodies
#: fall back to exact (rename-sensitive) subset matching.
_SUBSUME_BODY_A_CAP = 6
_SUBSUME_BODY_B_CAP = 8


def _rename_term(term, mapping: dict[Var, Var]):
    """``term`` with every variable canonically renamed by first
    occurrence (``__v0``, ``__v1``, ...)."""
    if isinstance(term, Var):
        fresh = mapping.get(term)
        if fresh is None:
            fresh = Var(f"__v{len(mapping)}")
            mapping[term] = fresh
        return fresh
    if isinstance(term, FunctionApp):
        return FunctionApp(
            term.name,
            tuple(_rename_term(a, mapping) for a in term.args),
        )
    if isinstance(term, ArithExpr):
        return ArithExpr(
            term.op,
            _rename_term(term.left, mapping),
            _rename_term(term.right, mapping),
        )
    if isinstance(term, CollectionTerm):
        return CollectionTerm(
            term.kind,
            tuple(_rename_term(e, mapping) for e in term.elements),
        )
    if isinstance(term, Pattern):
        return Pattern(_rename_args(term.args, mapping))
    return term


def _rename_args(args: Args, mapping: dict[Var, Var]) -> Args:
    return Args(
        labeled=tuple(
            (label, _rename_term(t, mapping)) for label, t in args.labeled
        ),
        self_term=_rename_term(args.self_term, mapping)
        if args.self_term is not None else None,
        tuple_var=_rename_term(args.tuple_var, mapping)
        if args.tuple_var is not None else None,
        positional=tuple(
            _rename_term(t, mapping) for t in args.positional
        ),
    )


def _rename_literal(lit, mapping: dict[Var, Var]):
    if isinstance(lit, Literal):
        return Literal(lit.pred, _rename_args(lit.args, mapping),
                       lit.negated)
    return BuiltinLiteral(
        lit.name,
        tuple(_rename_term(t, mapping) for t in lit.args),
        lit.negated,
    )


class _BlindMapping(dict):
    """Maps every variable to ``_`` — erases names without recording."""

    def get(self, key, default=None):
        return Var("_")


def _shape(lit) -> str:
    """A variable-blind rendering used to order body literals before
    canonical renaming, so permuted bodies canonicalize alike."""
    return repr(_rename_literal(lit, _BlindMapping()))


def _canonical_rule(rule: Rule) -> tuple:
    """An alpha-invariant key: variables renamed by first occurrence
    over the head, then the body in shape-sorted order."""
    mapping: dict[Var, Var] = {}
    head = (
        _rename_literal(rule.head, mapping)
        if isinstance(rule.head, Literal) else rule.head
    )
    ordered = sorted(rule.body, key=lambda lit: (_shape(lit), repr(lit)))
    body = frozenset(_rename_literal(lit, mapping) for lit in ordered)
    return (head, body, len(rule.body))


def _match_term(a, b, sigma: dict, inverse: dict) -> bool:
    """Extend the injective variable renaming ``sigma`` so that
    ``sigma(a) == b``; False when impossible."""
    if isinstance(a, Var):
        if not isinstance(b, Var):
            return False
        bound = sigma.get(a)
        if bound is not None:
            return bound == b
        if b in inverse:
            return False
        sigma[a] = b
        inverse[b] = a
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, Constant):
        return a == b
    if isinstance(a, FunctionApp):
        return (
            a.name == b.name and len(a.args) == len(b.args)
            and all(_match_term(x, y, sigma, inverse)
                    for x, y in zip(a.args, b.args))
        )
    if isinstance(a, ArithExpr):
        return (
            a.op == b.op
            and _match_term(a.left, b.left, sigma, inverse)
            and _match_term(a.right, b.right, sigma, inverse)
        )
    if isinstance(a, CollectionTerm):
        return (
            a.kind == b.kind and len(a.elements) == len(b.elements)
            and all(_match_term(x, y, sigma, inverse)
                    for x, y in zip(a.elements, b.elements))
        )
    if isinstance(a, Pattern):
        return _match_args(a.args, b.args, sigma, inverse)
    return a == b


def _match_args(a: Args, b: Args, sigma: dict, inverse: dict) -> bool:
    pairs_a = sorted(a.labeled, key=lambda p: p[0])
    pairs_b = sorted(b.labeled, key=lambda p: p[0])
    if [p[0] for p in pairs_a] != [p[0] for p in pairs_b]:
        return False
    for (_, ta), (_, tb) in zip(pairs_a, pairs_b):
        if not _match_term(ta, tb, sigma, inverse):
            return False
    for ta, tb in ((a.self_term, b.self_term), (a.tuple_var, b.tuple_var)):
        if (ta is None) != (tb is None):
            return False
        if ta is not None and not _match_term(ta, tb, sigma, inverse):
            return False
    if len(a.positional) != len(b.positional):
        return False
    return all(
        _match_term(x, y, sigma, inverse)
        for x, y in zip(a.positional, b.positional)
    )


def _match_literal(a, b, sigma: dict, inverse: dict) -> bool:
    if isinstance(a, Literal):
        return (
            isinstance(b, Literal)
            and a.pred == b.pred and a.negated == b.negated
            and _match_args(a.args, b.args, sigma, inverse)
        )
    return (
        isinstance(b, BuiltinLiteral)
        and a.name == b.name and a.negated == b.negated
        and len(a.args) == len(b.args)
        and all(_match_term(x, y, sigma, inverse)
                for x, y in zip(a.args, b.args))
    )


def _alpha_embeds(rule_a: Rule, rule_b: Rule) -> bool:
    """Is there an injective variable renaming sigma with
    ``sigma(head_a) == head_b`` and ``sigma(body_a)`` a subset of
    ``body_b``?  Backtracks over candidate body literals (small bodies
    only — the caller caps sizes)."""
    sigma: dict = {}
    inverse: dict = {}
    if not _match_literal(rule_a.head, rule_b.head, sigma, inverse):
        return False
    body_b = list(rule_b.body)

    def place(k: int, sigma: dict, inverse: dict) -> bool:
        if k == len(rule_a.body):
            return True
        lit = rule_a.body[k]
        for cand in body_b:
            trial_s = dict(sigma)
            trial_i = dict(inverse)
            if _match_literal(lit, cand, trial_s, trial_i) and \
                    place(k + 1, trial_s, trial_i):
                return True
        return False

    return place(0, sigma, inverse)


def check_duplicate_and_subsumed(clean, sink: Collector) -> None:
    """Flag alpha-equivalent rules (LG602: equal up to variable renaming
    and body order) and alpha-subsumed rules (LG603: an injective
    renaming maps one rule's head onto another's and its body into a
    strictly larger body — the smaller rule already derives everything
    the larger one does).  Oid-inventing rules are exempt from
    subsumption — each derivation creates a distinct object."""
    seen: dict[tuple, tuple[int, Rule]] = {}
    for idx, rule, report in clean:
        key = _canonical_rule(rule)
        prior = seen.get(key)
        if prior is not None:
            sink.warning(
                "LG602",
                f"rule {rule!r} duplicates an earlier rule (up to"
                " variable renaming)",
                _span_of(rule),
                related=(Related("first occurrence here",
                                 _span_of(prior[1])),),
            )
            continue
        seen[key] = (idx, rule)

    for i, rule_a, rep_a in clean:
        if rule_a.head is None or rep_a.invents_oid:
            continue
        for j, rule_b, rep_b in clean:
            if i == j or rule_b.head is None or rep_b.invents_oid:
                continue
            if len(rule_a.body) >= len(rule_b.body):
                continue
            if (
                len(rule_a.body) <= _SUBSUME_BODY_A_CAP
                and len(rule_b.body) <= _SUBSUME_BODY_B_CAP
            ):
                subsumed = _alpha_embeds(rule_a, rule_b)
            else:
                subsumed = (
                    rule_a.head == rule_b.head
                    and set(rule_a.body) < set(rule_b.body)
                )
            if subsumed:
                sink.warning(
                    "LG603",
                    f"rule {rule_b!r} is subsumed by a rule with the same"
                    " head and fewer body literals",
                    _span_of(rule_b),
                    related=(Related("subsuming rule here",
                                     _span_of(rule_a)),),
                )


# ---------------------------------------------------------------------------
# LG604 — unreachable rules
# ---------------------------------------------------------------------------
def check_unreachable(clean, goal: Goal | None, analyzed,
                      sink: Collector) -> None:
    """With a goal present, a rule whose head feeds neither the goal, nor
    a class extension, nor a denial, nor a deletion is dead code.

    Reachability closes over body dependencies starting from the goal's
    predicates and the bodies of headless rules (denials).  Class heads
    are always live — they populate the object base itself — and so are
    deletion heads (they mutate the state) and the hidden data-function
    associations read through ``=``/``member``.
    """
    if goal is None:
        return
    schema = analyzed.schema
    defines: dict[str, list[tuple[int, Rule]]] = {}
    for idx, rule, _ in clean:
        head = _head_pred(rule)
        if head is not None:
            defines.setdefault(head, []).append((idx, rule))

    roots: set[str] = set()
    for lit in goal.literals:
        if isinstance(lit, Literal):
            roots.add(lit.pred)
    for idx, rule, _ in clean:
        live_head = (
            rule.head is None
            or (isinstance(rule.head, Literal)
                and (rule.head.negated or schema.is_class(rule.head.pred)))
        )
        if live_head:
            for lit in rule.body:
                if isinstance(lit, Literal):
                    roots.add(lit.pred)

    reached: set[str] = set()
    frontier = list(roots)
    while frontier:
        pred = frontier.pop()
        if pred in reached:
            continue
        reached.add(pred)
        for _, rule in defines.get(pred, ()):
            for lit in rule.body:
                if isinstance(lit, Literal) and lit.pred not in reached:
                    frontier.append(lit.pred)

    for idx, rule, _ in clean:
        head = rule.head
        if not isinstance(head, Literal) or head.negated:
            continue
        if schema.is_class(head.pred) or head.pred.startswith("__fn_"):
            continue
        if head.pred not in reached:
            sink.warning(
                "LG604",
                f"rule for {head.pred!r} is unreachable from the goal or"
                " any class; it never contributes to an answer",
                _span_of(rule),
            )


# ---------------------------------------------------------------------------
# LG605 — oid invention inside a recursive cycle
# ---------------------------------------------------------------------------
def check_invention_in_recursion(clean, sink: Collector) -> None:
    """An inventing rule whose body depends (transitively) on its own head
    creates fresh objects from facts about fresh objects — the classic
    non-terminating pattern of Appendix B.  The engine's iteration budget
    catches it at runtime; this pass catches it at compile time."""
    graph: dict[str, set[str]] = {}
    for idx, rule, _ in clean:
        head = _head_pred(rule)
        if head is None:
            continue
        graph.setdefault(head, set())
        for lit in rule.body:
            if isinstance(lit, Literal):
                graph[head].add(lit.pred)
                graph.setdefault(lit.pred, set())
    comp_of: dict[str, int] = {}
    for n, comp in enumerate(strongly_connected_components(graph)):
        for pred in comp:
            comp_of[pred] = n
    for idx, rule, report in clean:
        if not report.invents_oid:
            continue
        head = _head_pred(rule)
        if head is None:
            continue
        in_cycle = any(
            isinstance(lit, Literal)
            and comp_of.get(lit.pred) == comp_of.get(head)
            for lit in rule.body
        ) or any(
            isinstance(lit, Literal) and lit.pred == head
            for lit in rule.body
        )
        if in_cycle:
            sink.warning(
                "LG605",
                f"rule {rule!r} invents an oid inside a recursive cycle"
                f" through {head!r}; the fixpoint may not terminate",
                _span_of(rule),
            )


# ---------------------------------------------------------------------------
# LG606 — derived and deleted in one stratum
# ---------------------------------------------------------------------------
def check_derive_and_delete(analyzed: AnalyzedProgram,
                            sink: Collector) -> None:
    """Deriving ``p`` and ``~p`` in the same stratum makes the outcome
    depend on rule application order under inflationary semantics; the
    deletion may fire before the derivation it was meant to retract.
    Legitimate update idioms do this on purpose — hence a warning."""
    local = Collector()
    try:
        strata = stratify(
            Program(analyzed.rules, analyzed.goal), analyzed.schema, local,
        )
    except Exception:  # pragma: no cover - stratify collects, not raises
        return
    for stratum in strata:
        derived: dict[str, Rule] = {}
        deleted: dict[str, Rule] = {}
        for rule in stratum:
            head = rule.head
            if not isinstance(head, Literal):
                continue
            (deleted if head.negated else derived).setdefault(
                head.pred, rule
            )
        for pred in sorted(set(derived) & set(deleted)):
            sink.warning(
                "LG606",
                f"predicate {pred!r} is both derived and deleted in the"
                " same stratum; the result depends on application order",
                _span_of(deleted[pred]),
                related=(Related("derived here",
                                 _span_of(derived[pred])),),
            )
