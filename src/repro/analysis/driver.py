"""The collect-all analysis driver behind ``repro lint``.

:func:`lint_source` takes raw LOGRES text and produces an
:class:`AnalysisReport` holding **every** diagnostic found — syntax,
schema, resolution, typing, safety, stratification, and the ``LG6xx``
warning passes — instead of stopping at the first problem.
:func:`analyze_or_raise` is the fail-fast facade built on the same
machinery: it raises the legacy exception for the first error but
attaches the complete list as ``exc.diagnostics`` (used by
``Engine.__init__``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import (
    Collector,
    Diagnostic,
    Severity,
    diagnostics_to_json,
    raise_for,
)
from repro.analysis.passes import run_warning_passes
from repro.errors import LogresError, ParseError, SchemaError
from repro.language.analysis import (
    AnalyzedProgram,
    analyze_program,
    stratify,
)
from repro.language.ast import Program
from repro.language.parser import ParsedUnit, parse_source
from repro.span import Span
from repro.types.descriptors import NamedType
from repro.types.schema import Schema


@dataclass
class AnalysisReport:
    """Everything one lint run found about one source unit."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    file: str | None = None
    unit: ParsedUnit | None = None       # None if parsing failed
    analyzed: AnalyzedProgram | None = None  # None before rule analysis

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)

    def to_json(self) -> str:
        return diagnostics_to_json(self.diagnostics)


def lint_source(text: str, file: str | None = None) -> AnalysisReport:
    """Parse and fully analyze LOGRES source, collecting all diagnostics."""
    try:
        unit = parse_source(text)
    except ParseError as exc:
        diag = Diagnostic(
            "LG101", Severity.ERROR, exc.raw_message,
            Span(exc.line, exc.column) if exc.line else None, file,
        )
        return AnalysisReport([diag], file)
    return lint_unit(unit, file)


def lint_unit(unit: ParsedUnit, file: str | None = None) -> AnalysisReport:
    """Analyze an already-parsed unit, collecting all diagnostics."""
    collector = Collector()
    analyzed = None
    schema = _check_schema(unit, collector)
    if schema is not None:
        program = unit.program()
        analyzed = analyze_program(program, schema, collector)
        stratify(
            Program(analyzed.rules, analyzed.goal),
            analyzed.schema,
            collector,
        )
        run_warning_passes(analyzed, collector)
    diagnostics = [
        d.with_file(file) if file else d for d in collector
    ]
    return AnalysisReport(diagnostics, file, unit, analyzed)


def _check_schema(unit: ParsedUnit, sink: Collector) -> Schema | None:
    """Validate the unit's schema fragment.

    Unknown type names are reported per-equation with their spans
    (``LG103``); any other construction failure is one ``LG102``.
    Returns ``None`` when the schema cannot be built — rule analysis is
    pointless without one.
    """
    declared = {eq.name.lower() for eq in unit.equations}
    declared |= {f.name.lower() for f in unit.functions}
    resolved = True
    for eq in unit.equations:
        for t in eq.rhs.walk():
            if isinstance(t, NamedType) and t.name.lower() not in declared:
                sink.error(
                    "LG103",
                    f"equation {eq.name!r} references unknown type"
                    f" name {t.name!r}",
                    getattr(eq, "span", None),
                )
                resolved = False
    if not resolved:
        return None
    try:
        return unit.schema()
    except SchemaError as exc:
        sink.error("LG102", str(exc))
        return None


def analyze_or_raise(program: Program, schema: Schema) -> AnalyzedProgram:
    """Fail-fast facade over the collect-all analyzer.

    Raises the legacy exception for the *first* error, but with every
    error of the run attached as ``exc.diagnostics`` — callers that can
    display more than one problem (the CLI) get them all in one go.
    """
    collector = Collector()
    analyzed = analyze_program(program, schema, collector)
    errors = collector.errors()
    if errors:
        try:
            raise_for(errors[0])
        except LogresError as exc:
            exc.diagnostics = tuple(errors)
            raise
    return analyzed
