"""The collect-all analysis driver behind ``repro lint``.

:func:`lint_source` takes raw LOGRES text and produces an
:class:`AnalysisReport` holding **every** diagnostic found — syntax,
schema, resolution, typing, safety, stratification, and the ``LG6xx``
warning passes — instead of stopping at the first problem.
:func:`analyze_or_raise` is the fail-fast facade built on the same
machinery: it raises the legacy exception for the first error but
attaches the complete list as ``exc.diagnostics`` (used by
``Engine.__init__``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import (
    Collector,
    Diagnostic,
    Severity,
    diagnostics_to_json,
    raise_for,
)
from repro.analysis.interference import (
    DEFAULT_MAX_PAIRS,
    InterferenceAnalysis,
    analyze_interference,
    check_interference,
)
from repro.analysis.passes import run_warning_passes
from repro.errors import LogresError, ParseError, SchemaError
from repro.language.analysis import (
    AnalyzedProgram,
    analyze_program,
    stratify,
)
from repro.language.ast import Program
from repro.language.parser import ParsedUnit, parse_source
from repro.span import Span
from repro.types.descriptors import NamedType
from repro.types.schema import Schema


@dataclass
class AnalysisReport:
    """Everything one lint run found about one source unit."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    file: str | None = None
    unit: ParsedUnit | None = None       # None if parsing failed
    analyzed: AnalyzedProgram | None = None  # None before rule analysis
    interference: InterferenceAnalysis | None = None

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)

    def to_json(self) -> str:
        return diagnostics_to_json(self.diagnostics)


def lint_source(
    text: str,
    file: str | None = None,
    *,
    max_pairs: int | None = None,
) -> AnalysisReport:
    """Parse and fully analyze LOGRES source, collecting all diagnostics."""
    try:
        unit = parse_source(text)
    except ParseError as exc:
        diag = Diagnostic(
            "LG101", Severity.ERROR, exc.raw_message,
            Span(exc.line, exc.column) if exc.line else None, file,
        )
        return AnalysisReport([diag], file)
    return lint_unit(unit, file, max_pairs=max_pairs)


def lint_unit(
    unit: ParsedUnit,
    file: str | None = None,
    *,
    max_pairs: int | None = None,
) -> AnalysisReport:
    """Analyze an already-parsed unit, collecting all diagnostics."""
    collector = Collector()
    analyzed = None
    interference = None
    schema = _check_schema(unit, collector)
    if schema is not None:
        program = unit.program()
        analyzed = analyze_program(program, schema, collector)
        stratify(
            Program(analyzed.rules, analyzed.goal),
            analyzed.schema,
            collector,
        )
        run_warning_passes(analyzed, collector)
        interference = analyze_interference(analyzed, max_pairs=max_pairs)
        check_interference(analyzed, collector, interference)
    diagnostics = [
        d.with_file(file) if file else d for d in collector
    ]
    return AnalysisReport(diagnostics, file, unit, analyzed, interference)


def _check_schema(unit: ParsedUnit, sink: Collector) -> Schema | None:
    """Validate the unit's schema fragment.

    Unknown type names are reported per-equation with their spans
    (``LG103``); any other construction failure is one ``LG102``.
    Returns ``None`` when the schema cannot be built — rule analysis is
    pointless without one.
    """
    declared = {eq.name.lower() for eq in unit.equations}
    declared |= {f.name.lower() for f in unit.functions}
    resolved = True
    for eq in unit.equations:
        for t in eq.rhs.walk():
            if isinstance(t, NamedType) and t.name.lower() not in declared:
                sink.error(
                    "LG103",
                    f"equation {eq.name!r} references unknown type"
                    f" name {t.name!r}",
                    getattr(eq, "span", None),
                )
                resolved = False
    if not resolved:
        return None
    try:
        return unit.schema()
    except SchemaError as exc:
        sink.error("LG102", str(exc))
        return None


#: LG10xx codes that mean "the program has an order hazard" (exit 1
#: from ``repro analyze``); LG1004 is the budget code (exit 3).
HAZARD_DIAGNOSTIC_CODES = frozenset({"LG1001", "LG1002", "LG1003"})


@dataclass
class ProgramAnalysis:
    """The result of ``repro analyze``: a lint report plus the
    whole-program interference analysis and certificates."""

    report: AnalysisReport

    @property
    def interference(self) -> InterferenceAnalysis | None:
        return self.report.interference

    @property
    def has_hazards(self) -> bool:
        return any(
            d.code in HAZARD_DIAGNOSTIC_CODES
            for d in self.report.diagnostics
        )

    @property
    def budget_exceeded(self) -> bool:
        inter = self.interference
        return inter is not None and inter.pair_budget_exceeded

    def to_dict(self) -> dict:
        from repro.observability.events import payload_header

        inter = self.interference
        return {
            **payload_header("analysis"),
            "file": self.report.file,
            "rules": [
                inter.effects[i].to_dict()
                for i in sorted(inter.effects)
            ] if inter is not None else [],
            "strata": [s.to_dict() for s in inter.strata]
            if inter is not None else [],
            "inventors": inter.inventors if inter is not None else 0,
            "pair_budget_exceeded": self.budget_exceeded,
            "diagnostics": [
                d.to_dict() for d in self.report.diagnostics
            ],
            "summary": {
                "errors": len(self.report.errors()),
                "warnings": len(self.report.warnings()),
                "hazards": sum(
                    1 for d in self.report.diagnostics
                    if d.code in HAZARD_DIAGNOSTIC_CODES
                ),
                "independent_groups": sum(
                    len(s.groups) for s in inter.strata
                ) if inter is not None else 0,
            },
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        lines: list[str] = []
        file = self.report.file or "<input>"
        lines.append(f"analysis: {file}")
        inter = self.interference
        if inter is None:
            lines.append("  (static errors prevented analysis)")
        else:
            lines.append(f"  inventing rules: {inter.inventors}")
            if inter.pair_budget_exceeded:
                lines.append(
                    "  pair budget exceeded:"
                    " certificates degraded to singletons"
                )
            for stratum in inter.strata:
                lines.append(
                    f"  stratum {stratum.index}:"
                    f" rules {stratum.rules}"
                )
                for edge in stratum.edges:
                    lines.append(
                        f"    interferes[{edge.kind}]"
                        f" r{edge.a} ~ r{edge.b}: {edge.reason}"
                    )
                groups = " ".join(
                    "{" + ", ".join(f"r{i}" for i in g) + "}"
                    for g in stratum.groups
                )
                lines.append(f"    independent groups: {groups or '-'}")
        if self.report.diagnostics:
            lines.append("  diagnostics:")
            for diag in self.report.diagnostics:
                lines.append("    " + diag.render().replace("\n", "\n    "))
        else:
            lines.append("  diagnostics: none")
        return "\n".join(lines)


def analyze_source(
    text: str,
    file: str | None = None,
    *,
    max_pairs: int | None = DEFAULT_MAX_PAIRS,
) -> ProgramAnalysis:
    """The ``repro analyze`` entry point: full lint (including the
    LG10xx confluence pass) plus effects, interference graphs and
    independence certificates, bounded by ``max_pairs``."""
    return ProgramAnalysis(lint_source(text, file, max_pairs=max_pairs))


def analyze_or_raise(program: Program, schema: Schema) -> AnalyzedProgram:
    """Fail-fast facade over the collect-all analyzer.

    Raises the legacy exception for the *first* error, but with every
    error of the run attached as ``exc.diagnostics`` — callers that can
    display more than one problem (the CLI) get them all in one go.
    """
    collector = Collector()
    analyzed = analyze_program(program, schema, collector)
    errors = collector.errors()
    if errors:
        try:
            raise_for(errors[0])
        except LogresError as exc:
            exc.diagnostics = tuple(errors)
            raise
    return analyzed
