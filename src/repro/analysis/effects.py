"""Per-rule static effect sets: what each rule reads, writes and invents.

The module-as-update model (Section 4) makes a rule's *effects* — the
predicates it reads, derives or deletes, and whether it invents oids —
the unit of reasoning about evaluation order.  :func:`rule_effects`
computes one :class:`RuleEffects` per analyzed rule from the resolved
AST:

* **reads** — predicates of positive body literals;
* **negative_reads** — predicates of negated body literals;
* **function_reads** — hidden ``__fn_*`` backing associations read
  through data-function applications and ``member``;
* **derives** / **deletes** — the head predicate, split by head sign
  (a negated head is a deletion);
* **invents_oid** — the safety analysis' invention flag, with the head
  span as the invention site;
* **builtins** / **arithmetic** — builtin names and arithmetic use, the
  value-level dependencies that make a body non-relational.

:mod:`repro.analysis.interference` combines these into the intra-stratum
interference graph behind independence certificates and the ``LG10xx``
confluence diagnostics (``docs/ANALYSIS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.language.analysis import SafetyReport, _function_reads
from repro.language.ast import (
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    FunctionApp,
    Literal,
    Pattern,
    Rule,
    Term,
)
from repro.span import Span


@dataclass(frozen=True)
class RuleEffects:
    """The read/write effect set of one rule."""

    index: int
    reads: frozenset[str]
    negative_reads: frozenset[str]
    function_reads: frozenset[str]
    derives: str | None
    deletes: str | None
    head_is_class: bool
    hierarchy_root: str | None
    invents_oid: bool
    builtins: frozenset[str]
    arithmetic: bool
    span: Span | None
    invention_span: Span | None

    @property
    def writes(self) -> str | None:
        """The head predicate, whatever the sign (None for denials)."""
        return self.derives if self.derives is not None else self.deletes

    @property
    def all_reads(self) -> frozenset[str]:
        return self.reads | self.negative_reads | self.function_reads

    def to_dict(self) -> dict:
        return {
            "rule": self.index,
            "reads": sorted(self.reads),
            "negative_reads": sorted(self.negative_reads),
            "function_reads": sorted(self.function_reads),
            "derives": self.derives,
            "deletes": self.deletes,
            "class_head": self.head_is_class,
            "hierarchy_root": self.hierarchy_root,
            "invents_oid": self.invents_oid,
            "builtins": sorted(self.builtins),
            "arithmetic": self.arithmetic,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
        }


def _has_arith(term: Term) -> bool:
    if isinstance(term, ArithExpr):
        return True
    if isinstance(term, FunctionApp):
        return any(_has_arith(a) for a in term.args)
    if isinstance(term, CollectionTerm):
        return any(_has_arith(e) for e in term.elements)
    if isinstance(term, Pattern):
        return any(_has_arith(t) for _, t in term.args.labeled)
    return False


def _literal_has_arith(lit) -> bool:
    if isinstance(lit, BuiltinLiteral):
        return any(_has_arith(t) for t in lit.args)
    if isinstance(lit, Literal):
        return any(_has_arith(t) for _, t in lit.args.labeled)
    return False


def rule_effects(
    index: int, rule: Rule, safety: SafetyReport, schema
) -> RuleEffects:
    """The effect set of one *resolved* rule (see ``analyze_program``)."""
    reads: set[str] = set()
    negative: set[str] = set()
    builtins: set[str] = set()
    arithmetic = False
    for lit in rule.body:
        if isinstance(lit, Literal):
            (negative if lit.negated else reads).add(lit.pred)
        else:
            builtins.add(lit.name)
        arithmetic = arithmetic or _literal_has_arith(lit)
    elementwise, wholeset = _function_reads(rule)
    function_reads = frozenset(elementwise | wholeset)

    derives = deletes = None
    head_is_class = False
    root = None
    head = rule.head
    if isinstance(head, Literal):
        if head.negated:
            deletes = head.pred
        else:
            derives = head.pred
        if schema.has(head.pred) and schema.is_class(head.pred):
            head_is_class = True
            root = schema.hierarchy_root(head.pred)
        arithmetic = arithmetic or _literal_has_arith(head)
    head_span = getattr(head, "span", None) if head is not None else None
    return RuleEffects(
        index=index,
        reads=frozenset(reads),
        negative_reads=frozenset(negative),
        function_reads=function_reads,
        derives=derives,
        deletes=deletes,
        head_is_class=head_is_class,
        hierarchy_root=root,
        invents_oid=safety.invents_oid,
        builtins=frozenset(builtins),
        arithmetic=arithmetic,
        span=getattr(rule, "span", None),
        invention_span=(head_span or getattr(rule, "span", None))
        if safety.invents_oid else None,
    )


def program_effects(analyzed) -> dict[int, RuleEffects]:
    """Effects of every clean rule of an analyzed program, by index."""
    return {
        idx: rule_effects(idx, rule, report, analyzed.schema)
        for idx, rule, report in analyzed.clean_rules()
    }
