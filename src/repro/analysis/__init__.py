"""Diagnostics-based static analysis (``repro lint``).

The package has three layers:

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic`, stable codes,
  severities, and the :class:`Collector` that accumulates findings;
* :mod:`repro.analysis.passes` — warning-level lint passes (singleton
  variables, duplicate / subsumed / unreachable rules, oid invention in
  recursive cycles, derive+delete conflicts);
* :mod:`repro.analysis.driver` — the collect-all driver running every
  check over a parsed unit or source text, feeding ``repro lint``,
  ``repro check`` and ``Engine.__init__``.

Only the diagnostics layer is imported eagerly — the driver pulls in the
language package, which itself reports through this package, so it is
exposed lazily to keep the import graph acyclic.
"""

from repro.analysis.diagnostics import (
    CODES,
    Collector,
    Diagnostic,
    Related,
    Severity,
    diagnostics_to_json,
)

__all__ = [
    "CODES",
    "Collector",
    "Diagnostic",
    "Related",
    "Severity",
    "diagnostics_to_json",
    # lazily loaded from repro.analysis.driver / .modules / .effects /
    # .interference:
    "AnalysisReport",
    "ProgramAnalysis",
    "analyze_or_raise",
    "analyze_source",
    "lint_source",
    "lint_unit",
    "check_module_application",
    "RuleEffects",
    "program_effects",
    "rule_effects",
    "Interference",
    "InterferenceAnalysis",
    "StratumInterference",
    "analyze_interference",
    "check_interference",
    "independent_groups",
    "interference_edges",
    "stratum_indexes",
    "DEFAULT_MAX_PAIRS",
    "HAZARD_CODES",
]

_LAZY = {
    "AnalysisReport": "repro.analysis.driver",
    "ProgramAnalysis": "repro.analysis.driver",
    "analyze_or_raise": "repro.analysis.driver",
    "analyze_source": "repro.analysis.driver",
    "lint_source": "repro.analysis.driver",
    "lint_unit": "repro.analysis.driver",
    "check_module_application": "repro.analysis.modules",
    "RuleEffects": "repro.analysis.effects",
    "program_effects": "repro.analysis.effects",
    "rule_effects": "repro.analysis.effects",
    "Interference": "repro.analysis.interference",
    "InterferenceAnalysis": "repro.analysis.interference",
    "StratumInterference": "repro.analysis.interference",
    "analyze_interference": "repro.analysis.interference",
    "check_interference": "repro.analysis.interference",
    "independent_groups": "repro.analysis.interference",
    "interference_edges": "repro.analysis.interference",
    "stratum_indexes": "repro.analysis.interference",
    "DEFAULT_MAX_PAIRS": "repro.analysis.interference",
    "HAZARD_CODES": "repro.analysis.interference",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
