"""Diagnostics-based static analysis (``repro lint``).

The package has three layers:

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic`, stable codes,
  severities, and the :class:`Collector` that accumulates findings;
* :mod:`repro.analysis.passes` — warning-level lint passes (singleton
  variables, duplicate / subsumed / unreachable rules, oid invention in
  recursive cycles, derive+delete conflicts);
* :mod:`repro.analysis.driver` — the collect-all driver running every
  check over a parsed unit or source text, feeding ``repro lint``,
  ``repro check`` and ``Engine.__init__``.

Only the diagnostics layer is imported eagerly — the driver pulls in the
language package, which itself reports through this package, so it is
exposed lazily to keep the import graph acyclic.
"""

from repro.analysis.diagnostics import (
    CODES,
    Collector,
    Diagnostic,
    Related,
    Severity,
    diagnostics_to_json,
)

__all__ = [
    "CODES",
    "Collector",
    "Diagnostic",
    "Related",
    "Severity",
    "diagnostics_to_json",
    # lazily loaded from repro.analysis.driver / .modules:
    "AnalysisReport",
    "analyze_or_raise",
    "lint_source",
    "lint_unit",
    "check_module_application",
]

_LAZY = {
    "AnalysisReport": "repro.analysis.driver",
    "analyze_or_raise": "repro.analysis.driver",
    "lint_source": "repro.analysis.driver",
    "lint_unit": "repro.analysis.driver",
    "check_module_application": "repro.analysis.modules",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
