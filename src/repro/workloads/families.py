"""Scale-graded workload families for the ``repro bench`` matrix.

Each :class:`WorkloadFamily` packages one realistic rule program — a
LOGRES source unit — together with a deterministic, seeded extensional
generator parameterized by a *fact budget*, so the same family can be
graded from 10³ to 10⁶ facts (:data:`SCALE_GRADES`).  Three shapes come
from the literature the ROADMAP names:

* ``knowledge_graph`` — a stakeholder knowledge graph modeled on the
  LOGOS schema sketched in SNIPPETS.md: entity classes under an ``isa``
  hierarchy (stakeholders and documents are entities), provenance
  ``mentions`` edges from documents, an influence network closed
  transitively, and derived *risk cases* created by **oid invention**
  whenever an influencer reaches a stakeholder with an open concern;
* ``rbac`` — role-based access control in the shape Liu et al.
  (*Integrating Logic Rules with Everything Else, Seamlessly*) publish
  scaling results for: a random role hierarchy closed transitively and
  user→permission derivation through inherited roles;
* ``reachability`` — graph reachability over a union of bounded-length
  chains, the canonical recursive workload with a derived set that
  scales linearly in the edge count (chains keep the closure from going
  quadratic at the 10⁶ grade);
* ``genealogy`` — ancestor closure over the paper's own genealogy
  domain (a random forest, depth ≈ log n).

Every generator is bit-deterministic per ``(scale, seed)`` — pinned by
:func:`factset_fingerprint` in the test suite — and every family's
program runs under all four kernels of the bench matrix
(:mod:`repro.workloads.bench`).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.storage.factset import FactSet
from repro.values.complex import TupleValue
from repro.values.oids import Oid
from repro.workloads.generators import _rng, genealogy_facts

#: the named scale grades of the bench matrix: fact-budget targets from
#: 10³ (a laptop smoke) to 10⁶ (the production-scale yardstick)
SCALE_GRADES: dict[str, int] = {
    "1e3": 1_000,
    "1e4": 10_000,
    "1e5": 100_000,
    "1e6": 1_000_000,
}


def factset_fingerprint(facts: FactSet) -> str:
    """Short content hash of a fact set's canonical encoding.

    Two generator calls with the same parameters must produce the same
    fingerprint — the determinism contract the workload tests pin.
    """
    from repro.observability.report import fingerprint
    from repro.storage.persist import encode_factset

    return fingerprint(
        json.dumps(encode_factset(facts), sort_keys=True,
                   separators=(",", ":"))
    )


@dataclass(frozen=True)
class WorkloadFamily:
    """One benchmarkable (program, seeded generator) pair."""

    name: str
    description: str
    #: LOGRES source: schema + rules (no facts — the generator owns them)
    source: str
    #: ``generate(facts, seed)`` -> extensional :class:`FactSet` with
    #: roughly ``facts`` facts, bit-deterministic per seed
    generate: Callable[[int, int], FactSet] = field(repr=False)
    #: predicates whose derived counts the matrix records
    derived_preds: tuple[str, ...] = ()
    #: add the schema's isa-propagation rules to the program (families
    #: whose classes form a generalization hierarchy)
    propagate_isa: bool = False

    def build(self, scale: int, seed: int = 0):
        """``(schema, program, edb)`` ready for ``report_program``."""
        from repro.constraints.generate import isa_propagation_rules
        from repro.language.ast import Program
        from repro.language.parser import parse_source

        unit = parse_source(self.source)
        schema = unit.schema()
        rules = tuple(unit.rules)
        if self.propagate_isa:
            rules = rules + tuple(isa_propagation_rules(schema))
        return schema, Program(rules, unit.goal), \
            self.generate(scale, seed)


# ---------------------------------------------------------------------------
# knowledge graph / stakeholder domain (LOGOS shape)
# ---------------------------------------------------------------------------
KNOWLEDGE_GRAPH_SOURCE = """
classes
  entity = (ename: string).
  stakeholder = (entity, kind: string).
  document = (entity, origin: string).
  riskcase = (subject: string, issue: string).
  stakeholder isa entity.
  document isa entity.
associations
  relates = (src: string, dst: string).
  mentions = (doc: string, subject: string).
  concerns = (subject: string, issue: string).
  influence = (src: string, dst: string).
  sourced = (subject: string, issue: string, doc: string).
rules
  influence(src X, dst Y) <- relates(src X, dst Y).
  influence(src X, dst Z) <- relates(src X, dst Y),
                             influence(src Y, dst Z).
  riskcase(subject S, issue I) <- influence(src S, dst T),
                                  concerns(subject T, issue I).
  sourced(subject S, issue I, doc D) <- concerns(subject S, issue I),
                                        mentions(doc D, subject S).
"""


#: influence-community size: each cluster of stakeholders forms its own
#: random recursive tree, so closure size and recursion depth are both
#: bounded per cluster and the family scales linearly to the 10⁶ grade
_KG_CLUSTER = 32


def knowledge_graph_facts(facts: int, seed: int = 0) -> FactSet:
    """Stakeholders + documents under ``isa``, a forest-shaped influence
    network, provenance ``mentions`` edges and open concerns.

    The ``relates`` network is a forest of per-community random
    recursive trees (:data:`_KG_CLUSTER` stakeholders each), so the
    influence closure grows linearly in the edge count and the fixpoint
    depth stays bounded by the cluster size at every grade.
    """
    rng = _rng(seed)
    out = FactSet()
    stakeholders = max(4, (facts * 3) // 10)
    documents = max(2, (facts * 2) // 10)
    concerns = max(2, facts // 10)
    relates = stakeholders - (
        (stakeholders + _KG_CLUSTER - 1) // _KG_CLUSTER)
    mentions = max(2, facts - stakeholders - documents - concerns
                   - relates)
    kinds = ("regulator", "community", "supplier", "investor")
    issues = ("noise", "water", "heritage", "traffic", "emissions",
              "employment", "governance")
    oid = 0
    for s in range(stakeholders):
        oid += 1
        out.add_object("stakeholder", Oid(oid), TupleValue(
            ename=f"s{s}", kind=kinds[rng.randrange(len(kinds))]))
        community = s - (s % _KG_CLUSTER)
        if s > community:  # attach under an earlier member: acyclic tree
            out.add_association("relates", TupleValue(
                src=f"s{rng.randrange(community, s)}", dst=f"s{s}"))
    for d in range(documents):
        oid += 1
        out.add_object("document", Oid(oid), TupleValue(
            ename=f"d{d}", origin=f"src{d % 13}"))
    for _ in range(mentions):
        out.add_association("mentions", TupleValue(
            doc=f"d{rng.randrange(documents)}",
            subject=f"s{rng.randrange(stakeholders)}"))
    for c in range(concerns):
        out.add_association("concerns", TupleValue(
            subject=f"s{rng.randrange(stakeholders)}",
            issue=issues[c % len(issues)]))
    return out


# ---------------------------------------------------------------------------
# role-based access control (Liu et al. shape)
# ---------------------------------------------------------------------------
RBAC_SOURCE = """
associations
  user_role = (user: string, role: string).
  role_parent = (sub: string, sup: string).
  role_perm = (role: string, perm: string).
  inherits = (sub: string, sup: string).
  can = (user: string, perm: string).
rules
  inherits(sub R, sup S) <- role_parent(sub R, sup S).
  inherits(sub R, sup T) <- role_parent(sub R, sup S),
                            inherits(sub S, sup T).
  can(user U, perm P) <- user_role(user U, role R),
                         role_perm(role R, perm P).
  can(user U, perm P) <- user_role(user U, role R),
                         inherits(sub R, sup S),
                         role_perm(role S, perm P).
"""


def rbac_facts(facts: int, seed: int = 0) -> FactSet:
    """Users over a random role hierarchy with per-role permissions.

    Role count scales with the budget (≈ 1/20th), the hierarchy is a
    random recursive tree (depth ≈ log n), each role grants two
    permissions, and the remaining budget is user→role assignments.
    """
    rng = _rng(seed)
    out = FactSet()
    roles = max(4, facts // 20)
    for r in range(1, roles):
        out.add_association("role_parent", TupleValue(
            sub=f"r{r}", sup=f"r{rng.randrange(0, r)}"))
    for r in range(roles):
        out.add_association("role_perm", TupleValue(
            role=f"r{r}", perm=f"p{(2 * r) % (roles + 7)}"))
        out.add_association("role_perm", TupleValue(
            role=f"r{r}", perm=f"p{(2 * r + 1) % (roles + 7)}"))
    users = max(2, facts - (roles - 1) - 2 * roles)
    for u in range(users):
        out.add_association("user_role", TupleValue(
            user=f"u{u}", role=f"r{rng.randrange(roles)}"))
    return out


# ---------------------------------------------------------------------------
# graph reachability
# ---------------------------------------------------------------------------
REACHABILITY_SOURCE = """
associations
  edge = (src: string, dst: string).
  reach = (src: string, dst: string).
rules
  reach(src X, dst Y) <- edge(src X, dst Y).
  reach(src X, dst Z) <- edge(src X, dst Y), reach(src Y, dst Z).
"""

#: chain length bounds: long enough to exercise recursion depth, short
#: enough that the closure stays ~16x the edge count at every grade
_CHAIN_MIN, _CHAIN_MAX = 16, 48


def reachability_facts(facts: int, seed: int = 0) -> FactSet:
    """A union of disjoint chains with jittered lengths.

    Per chain of length L the closure holds L(L+1)/2 pairs, so the
    derived set grows linearly in the edge budget (≈ 16x) instead of
    quadratically — the shape that lets the 10⁶ grade terminate.
    """
    rng = _rng(seed)
    out = FactSet()
    produced = 0
    node = 0
    while produced < facts:
        length = min(rng.randrange(_CHAIN_MIN, _CHAIN_MAX + 1),
                     facts - produced)
        for _ in range(length):
            out.add_association("edge", TupleValue(
                src=f"n{node}", dst=f"n{node + 1}"))
            node += 1
        node += 1  # gap: next chain starts at a fresh node
        produced += length
    return out


# ---------------------------------------------------------------------------
# genealogy (the paper's own domain at scale)
# ---------------------------------------------------------------------------
GENEALOGY_BENCH_SOURCE = """
associations
  parent = (par: string, chil: string).
  ancestor = (anc: string, des: string).
rules
  ancestor(anc X, des Y) <- parent(par X, chil Y).
  ancestor(anc X, des Z) <- parent(par X, chil Y),
                            ancestor(anc Y, des Z).
"""


def genealogy_bench_facts(facts: int, seed: int = 0) -> FactSet:
    # ~90% of persons get a parent fact (generators.genealogy_facts)
    return genealogy_facts(max(2, (facts * 10) // 9 + 1), seed=seed)


FAMILIES: dict[str, WorkloadFamily] = {
    f.name: f for f in (
        WorkloadFamily(
            name="kg",
            description="stakeholder knowledge graph: isa entities,"
                        " provenance edges, influence closure, invented"
                        " risk cases (LOGOS shape)",
            source=KNOWLEDGE_GRAPH_SOURCE,
            generate=knowledge_graph_facts,
            derived_preds=("influence", "riskcase", "sourced"),
            propagate_isa=True,
        ),
        WorkloadFamily(
            name="rbac",
            description="role-based access control: role-hierarchy"
                        " closure and inherited user permissions"
                        " (Liu et al. shape)",
            source=RBAC_SOURCE,
            generate=rbac_facts,
            derived_preds=("inherits", "can"),
        ),
        WorkloadFamily(
            name="reach",
            description="graph reachability over bounded chains"
                        " (linear-closure recursive workload)",
            source=REACHABILITY_SOURCE,
            generate=reachability_facts,
            derived_preds=("reach",),
        ),
        WorkloadFamily(
            name="genealogy",
            description="ancestor closure over the paper's genealogy"
                        " forest",
            source=GENEALOGY_BENCH_SOURCE,
            generate=genealogy_bench_facts,
            derived_preds=("ancestor",),
        ),
    )
}


def resolve_scale(token: str | int) -> int:
    """A scale argument: a grade name (``1e4``) or a raw fact count."""
    if isinstance(token, int):
        return token
    if token in SCALE_GRADES:
        return SCALE_GRADES[token]
    try:
        value = int(float(token))
    except ValueError:
        raise ValueError(
            f"unknown scale {token!r}: expected a fact count or one of "
            + ", ".join(sorted(SCALE_GRADES))
        ) from None
    if value <= 0:
        raise ValueError(f"scale must be positive, got {token!r}")
    return value
