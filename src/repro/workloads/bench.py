"""The ``repro bench`` matrix driver: workload × scale × kernel cells.

One **cell** is a single benchmark measurement: a workload family
(:mod:`repro.workloads.families`) built at one scale grade, evaluated
under one named kernel configuration and one semantics.  Each cell

* times ``reps`` **uninstrumented** engine runs — the production fast
  path, where the semi-naive and compiled machinery actually engage
  (instrumentation forces the general path, so timing an instrumented
  run would erase the very kernel differences the matrix exists to
  measure);
* additionally executes once through
  :func:`~repro.observability.report.report_program`, so every cell
  yields a versioned :class:`RunReport` (phase tree, per-rule metrics,
  plans, trace context) and its row carries the report's ``run_id``;
* emits one schema-versioned row (``payload_header("bench-row")``) in
  the exact shape ``benchmarks/conftest`` appends for the pytest
  experiments, so :class:`repro.observability.trend.TrendStore` ingests
  both histories uniformly.

:func:`run_matrix` sweeps the full cross product, cross-checks that all
kernels in the sweep computed isomorphic instances per (family, scale,
semantics) — invented oid *numbers* legitimately differ between
kernels, so agreement is modulo oid renaming — and appends each
family's rows to ``BENCH_<family>.json`` through the deduplicating
append of :mod:`repro.observability.trend`.
"""

from __future__ import annotations

import pathlib
import statistics
import time

from repro.workloads.families import (
    FAMILIES,
    WorkloadFamily,
    resolve_scale,
)

#: the four kernel configurations of the matrix, in maturity order:
#: the copy-per-iteration executable specification, the in-place O(|Δ|)
#: kernel, the cost-based planner on top, and eager body compilation
KERNELS: dict[str, dict] = {
    "reference": {"incremental": False, "plan": False},
    "incremental": {"plan": False},
    "planned": {"plan": True, "compile_threshold": 1 << 30},
    "compiled": {"plan": True, "compile_threshold": 0},
}

DEFAULT_REPS = 3


def kernel_config(kernel: str):
    """The :class:`~repro.engine.fixpoint.EvalConfig` for a named
    kernel column."""
    from repro.engine.fixpoint import EvalConfig

    try:
        switches = KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of "
            + ", ".join(KERNELS)
        ) from None
    return EvalConfig(**switches)


def resolve_semantics(token):
    from repro.engine.fixpoint import Semantics

    if isinstance(token, Semantics):
        return token
    try:
        return Semantics(token)
    except ValueError:
        raise ValueError(
            f"unknown semantics {token!r}: expected one of "
            + ", ".join(s.value for s in Semantics)
        ) from None


def cell_config(kernel: str, semantics, seed: int) -> dict:
    """The row's ``config`` object — the series key of the trend store,
    so it must be byte-stable across sessions."""
    cfg = kernel_config(kernel)
    return {
        "kernel": kernel,
        "semantics": resolve_semantics(semantics).value,
        "seed": seed,
        "incremental": cfg.incremental,
        "plan": cfg.plan,
        "compile_threshold": cfg.compile_threshold,
        "seminaive": cfg.seminaive,
        "use_indexes": cfg.use_indexes,
    }


def run_cell(
    family: WorkloadFamily,
    scale: int,
    kernel: str,
    semantics="inflationary",
    seed: int = 0,
    reps: int = DEFAULT_REPS,
    session: str | None = None,
):
    """``(row, instance)`` for one matrix cell.

    ``row`` is the appendable bench row; ``instance`` is the computed
    :class:`~repro.storage.factset.FactSet` (the matrix uses it for the
    cross-kernel agreement check).
    """
    from repro.engine import Engine
    from repro.observability.events import payload_header
    from repro.observability.report import report_program

    sem = resolve_semantics(semantics)
    config = kernel_config(kernel)
    schema, program, edb = family.build(scale, seed=seed)
    times: list[float] = []
    instance = None
    for _ in range(max(1, reps)):
        engine = Engine(schema, program, config)
        t0 = time.perf_counter()
        instance = engine.run(edb, sem)
        times.append(time.perf_counter() - t0)
    source = f"workloads/bench:{family.name}[{scale}]"
    report = report_program(schema, program, edb, semantics=sem,
                            config=config, source_file=source,
                            kernel=kernel)
    row = payload_header("bench-row")
    row.update({
        "ts": time.time(),
        "session": session or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "exp": family.name,
        "group": f"bench-{family.name}",
        "name": f"{family.name}[{scale}]",
        "min_ms": min(times) * 1000,
        "mean_ms": statistics.mean(times) * 1000,
        "stddev_ms": (statistics.stdev(times) * 1000
                      if len(times) > 1 else 0.0),
        "rounds": len(times),
        "config": cell_config(kernel, sem, seed),
        "run_id": report.run_id,
        "facts_in": edb.count(),
        "facts_out": instance.count(),
        "derived": {
            pred: instance.count(pred) for pred in family.derived_preds
        },
    })
    return row, instance


def _outcomes_agree(a, b) -> bool:
    """Equal, or equal modulo a renaming of invented oids."""
    if a == b:
        return True
    return a.to_instance().isomorphic_to(b.to_instance())


def run_matrix(
    families=None,
    scales=(100,),
    kernels=None,
    semantics=("inflationary",),
    seed: int = 0,
    reps: int = DEFAULT_REPS,
    root=None,
    verify: bool = True,
    progress=None,
) -> tuple[list[dict], list[pathlib.Path]]:
    """Sweep the full cell cross product and append the rows.

    Returns ``(rows, touched_paths)``.  ``families`` and ``kernels``
    accept names (defaulting to every registered one); ``scales``
    accepts grade names or raw fact counts.  With ``verify`` (default)
    every (family, scale, semantics) group's kernels must compute
    isomorphic instances — the matrix doubles as a cross-kernel
    correctness sweep.  ``progress`` is an optional callable receiving
    one line per finished cell.
    """
    from repro.observability.trend import append_bench_rows

    family_names = list(families) if families else list(FAMILIES)
    kernel_names = list(kernels) if kernels else list(KERNELS)
    for name in family_names:
        if name not in FAMILIES:
            raise ValueError(
                f"unknown workload family {name!r}: expected one of "
                + ", ".join(FAMILIES)
            )
    resolved_scales = [resolve_scale(s) for s in scales]
    session = time.strftime("%Y-%m-%dT%H:%M:%S")
    rows: list[dict] = []
    by_family: dict[str, list[dict]] = {}
    for fam_name in family_names:
        family = FAMILIES[fam_name]
        for scale in resolved_scales:
            for sem in semantics:
                outcomes = {}
                for kernel in kernel_names:
                    row, instance = run_cell(
                        family, scale, kernel, semantics=sem,
                        seed=seed, reps=reps, session=session,
                    )
                    rows.append(row)
                    by_family.setdefault(fam_name, []).append(row)
                    outcomes[kernel] = instance
                    if progress is not None:
                        progress(
                            f"{row['name']} {kernel}/{row['config']['semantics']}:"
                            f" {row['min_ms']:.2f} ms min"
                            f" ({row['facts_out']} facts)"
                        )
                if verify and len(outcomes) > 1:
                    baseline_kernel = next(iter(outcomes))
                    baseline = outcomes[baseline_kernel]
                    for kernel, instance in outcomes.items():
                        if not _outcomes_agree(baseline, instance):
                            raise AssertionError(
                                f"kernel disagreement on "
                                f"{fam_name}[{scale}]/{sem}: "
                                f"{baseline_kernel} vs {kernel}"
                            )
    root = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    touched = []
    for fam_name, fam_rows in sorted(by_family.items()):
        touched.append(append_bench_rows(
            root / f"BENCH_{fam_name}.json", fam_rows))
    return rows, touched
