"""Synthetic workload generators for examples, tests, and benchmarks."""

from repro.workloads.bench import (
    KERNELS,
    kernel_config,
    run_cell,
    run_matrix,
)
from repro.workloads.families import (
    FAMILIES,
    SCALE_GRADES,
    WorkloadFamily,
    factset_fingerprint,
    resolve_scale,
)
from repro.workloads.generators import (
    FOOTBALL_SCHEMA,
    GENEALOGY_SCHEMA,
    UNIVERSITY_SCHEMA,
    chain_edges,
    football_database,
    genealogy_facts,
    genealogy_schema,
    grid_edges,
    random_edges,
    tree_edges,
    university_database,
    update_stream,
)

__all__ = [
    "FAMILIES",
    "FOOTBALL_SCHEMA",
    "KERNELS",
    "SCALE_GRADES",
    "WorkloadFamily",
    "factset_fingerprint",
    "kernel_config",
    "resolve_scale",
    "run_cell",
    "run_matrix",
    "GENEALOGY_SCHEMA",
    "UNIVERSITY_SCHEMA",
    "chain_edges",
    "football_database",
    "genealogy_facts",
    "genealogy_schema",
    "grid_edges",
    "random_edges",
    "tree_edges",
    "university_database",
    "update_stream",
]
