"""Synthetic workload generators for examples, tests, and benchmarks."""

from repro.workloads.generators import (
    FOOTBALL_SCHEMA,
    GENEALOGY_SCHEMA,
    UNIVERSITY_SCHEMA,
    chain_edges,
    football_database,
    genealogy_facts,
    genealogy_schema,
    grid_edges,
    random_edges,
    tree_edges,
    university_database,
    update_stream,
)

__all__ = [
    "FOOTBALL_SCHEMA",
    "GENEALOGY_SCHEMA",
    "UNIVERSITY_SCHEMA",
    "chain_edges",
    "football_database",
    "genealogy_facts",
    "genealogy_schema",
    "grid_edges",
    "random_edges",
    "tree_edges",
    "university_database",
    "update_stream",
]
