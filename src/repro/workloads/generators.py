"""Seeded generators for the paper's motivating domains.

Three schema constants reproduce the paper's running examples — the
football database (Example 2.1), the genealogy domain (Examples 2.2 and
3.2), and the university domain (Example 3.1) — and the generator
functions populate them at arbitrary scale, deterministically per seed.
Graph generators (chain / tree / grid / random) feed the recursive-rule
benchmarks.
"""

from __future__ import annotations

import random

from repro.core.database import Database
from repro.language.parser import parse_schema_source
from repro.modules.module import Module
from repro.storage.factset import FactSet
from repro.types.schema import Schema
from repro.values.complex import TupleValue

# ---------------------------------------------------------------------------
# schemas from the paper's examples
# ---------------------------------------------------------------------------
#: Example 2.1 — score is a complex domain, players have role sets, teams
#: have a base-player sequence and a substitute set.
FOOTBALL_SCHEMA = """
domains
  name = string.
  role = integer.
  date = string.
  score = (home: integer, guest: integer).
classes
  player = (name, roles: {role}).
  team = (team_name: name, base_players: <player>,
          substitutes: {player}).
associations
  game = (h_team: team, g_team: team, date, score).
"""

#: Examples 2.2 / 3.2 — parent facts, descendants as a data function.
GENEALOGY_SCHEMA = """
domains
  name = string.
associations
  parent = (par: name, chil: name).
  ancestor = (anc: name, des: {name}).
functions
  desc: name -> {name}.
"""

#: Example 3.1 — an isa hierarchy with object sharing.
UNIVERSITY_SCHEMA = """
domains
  name = string.
classes
  person = (name, address: string).
  school = (school_name: name, kind: string, dean: professor).
  student = (person, studschool: school).
  professor = (person, course: string, profschool: school).
  student isa person.
  professor isa person.
associations
  advises = (prof: professor, stud: student).
"""


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


# ---------------------------------------------------------------------------
# genealogy
# ---------------------------------------------------------------------------
def genealogy_facts(
    people: int, seed: int = 0, max_children: int = 3
) -> FactSet:
    """A random forest of parent/child facts over ``people`` persons.

    Person ``i`` may only parent persons with larger indexes, so the
    parent relation is acyclic and ``desc`` terminates.
    """
    rng = _rng(seed)
    facts = FactSet()
    for child in range(1, people):
        if rng.random() < 0.9:  # a few roots stay parentless
            parent = rng.randrange(0, child)
            facts.add_association(
                "parent",
                TupleValue(par=f"p{parent}", chil=f"p{child}"),
            )
    return facts


# ---------------------------------------------------------------------------
# football
# ---------------------------------------------------------------------------
def football_database(
    teams: int = 4,
    players_per_team: int = 11,
    substitutes_per_team: int = 3,
    games: int = 6,
    seed: int = 0,
) -> Database:
    """A populated football database over :data:`FOOTBALL_SCHEMA`."""
    rng = _rng(seed)
    db = Database.from_source(FOOTBALL_SCHEMA)
    team_oids = []
    for t in range(teams):
        base = []
        subs = set()
        for p in range(players_per_team + substitutes_per_team):
            roles = {rng.randrange(1, 12)
                     for _ in range(rng.randrange(1, 3))}
            oid = db.insert(
                "player", name=f"player_{t}_{p}", roles=roles
            )
            if p < players_per_team:
                base.append(oid)
            else:
                subs.add(oid)
        team_oids.append(db.insert(
            "team",
            team_name=f"team_{t}",
            base_players=base,
            substitutes=subs,
        ))
    for g in range(games):
        home, guest = rng.sample(team_oids, 2)
        db.insert(
            "game",
            h_team=home,
            g_team=guest,
            date=f"2026-07-{(g % 28) + 1:02d}",
            score={"home": rng.randrange(0, 5),
                   "guest": rng.randrange(0, 5)},
        )
    return db


# ---------------------------------------------------------------------------
# university
# ---------------------------------------------------------------------------
def university_database(
    students: int = 20,
    professors: int = 5,
    schools: int = 2,
    seed: int = 0,
) -> Database:
    """A populated university database over :data:`UNIVERSITY_SCHEMA`.

    Schools initially have a nil dean; deans are elected afterwards so the
    professor objects exist first (references in classes may be nil,
    Section 2.1).
    """
    from repro.values.oids import NIL

    rng = _rng(seed)
    db = Database.from_source(UNIVERSITY_SCHEMA)
    school_oids = [
        db.insert("school", school_name=f"school_{s}",
                  kind=rng.choice(["public", "private"]), dean=NIL)
        for s in range(schools)
    ]
    prof_oids = []
    for p in range(professors):
        prof_oids.append(db.insert(
            "professor",
            name=f"prof_{p}",
            address=f"street {p}",
            course=f"course_{p % 7}",
            profschool=rng.choice(school_oids),
        ))
    stud_oids = []
    for s in range(students):
        stud_oids.append(db.insert(
            "student",
            name=f"stud_{s}",
            address=f"street {100 + s}",
            studschool=rng.choice(school_oids),
        ))
        db.insert(
            "advises", prof=rng.choice(prof_oids), stud=stud_oids[-1]
        )
    return db


# ---------------------------------------------------------------------------
# graphs (edge fact sets for recursive benchmarks)
# ---------------------------------------------------------------------------
def _edges_to_facts(edges, pred="parent", a="par", b="chil") -> FactSet:
    facts = FactSet()
    for x, y in edges:
        facts.add_association(pred, TupleValue({a: f"n{x}", b: f"n{y}"}))
    return facts


def chain_edges(length: int, **kw) -> FactSet:
    """A path graph: worst-case depth for transitive closure."""
    return _edges_to_facts(((i, i + 1) for i in range(length)), **kw)


def tree_edges(depth: int, fanout: int = 2, **kw) -> FactSet:
    """A complete ``fanout``-ary tree of the given depth."""
    edges = []
    frontier = [0]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            for _ in range(fanout):
                edges.append((node, counter))
                next_frontier.append(counter)
                counter += 1
        frontier = next_frontier
    return _edges_to_facts(edges, **kw)


def grid_edges(width: int, height: int, **kw) -> FactSet:
    """A directed grid (right and down edges)."""
    edges = []
    for i in range(width):
        for j in range(height):
            node = i * height + j
            if j + 1 < height:
                edges.append((node, i * height + j + 1))
            if i + 1 < width:
                edges.append((node, (i + 1) * height + j))
    return _edges_to_facts(edges, **kw)


def random_edges(nodes: int, edges: int, seed: int = 0, acyclic: bool = True,
                 **kw) -> FactSet:
    """A random (by default acyclic) directed graph."""
    rng = _rng(seed)
    seen = set()
    out = []
    guard = 0
    while len(out) < edges and guard < edges * 50:
        guard += 1
        x, y = rng.randrange(nodes), rng.randrange(nodes)
        if x == y:
            continue
        if acyclic and x > y:
            x, y = y, x
        if (x, y) in seen:
            continue
        seen.add((x, y))
        out.append((x, y))
    return _edges_to_facts(out, **kw)


# ---------------------------------------------------------------------------
# update streams (module workloads, Section 4)
# ---------------------------------------------------------------------------
def update_stream(
    operations: int, people: int = 50, seed: int = 0
) -> list[Module]:
    """A stream of RIDV-style update modules over the genealogy domain.

    Each module inserts a batch of parent facts and occasionally deletes
    one (rules with negative heads).
    """
    rng = _rng(seed)
    modules = []
    for op in range(operations):
        lines = ["rules"]
        for _ in range(rng.randrange(1, 4)):
            a, b = rng.sample(range(people), 2)
            if a > b:
                a, b = b, a
            lines.append(f'  parent(par "p{a}", chil "p{b}").')
        if rng.random() < 0.25:
            a, b = rng.sample(range(people), 2)
            if a > b:
                a, b = b, a
            lines.append(
                f'  ~parent(par "p{a}", chil "p{b}")'
                f' <- parent(par "p{a}", chil "p{b}").'
            )
        modules.append(Module.from_source("\n".join(lines),
                                          name=f"update_{op}"))
    return modules


def genealogy_schema() -> Schema:
    return parse_schema_source(GENEALOGY_SCHEMA)
