"""LOGRES: object-oriented data modeling + rule-based programming.

A production-quality reproduction of

    F. Cacace, S. Ceri, S. Crespi-Reghizzi, L. Tanca, R. Zicari.
    "Integrating Object-Oriented Data Modeling with a Rule-Based
    Programming Paradigm", SIGMOD 1990.

Quickstart::

    from repro import Database, Mode, Module

    db = Database.from_source('''
        domains
          name = string.
        classes
          person = (name, address: string).
        associations
          parent = (par: name, chil: name).
    ''')
    db.insert("person", name="sara", address="milano")
    db.insert("parent", par="sara", chil="luca")
    update = Module.from_source('rules\\n  parent(par "luca", chil "ugo").')
    db.run_module(update, Mode.RIDV)
    print(db.query('?- parent(par "sara", chil C).'))

Subsystems: :mod:`repro.types` (type equations, refinement, isa),
:mod:`repro.values` (oids, complex values, instances),
:mod:`repro.language` (rule AST, parser, analysis, built-ins),
:mod:`repro.engine` (inflationary / stratified / non-inflationary
fixpoints), :mod:`repro.constraints` (generated integrity constraints),
:mod:`repro.modules` (the six application modes), :mod:`repro.algres`
(the NF² algebra substrate), :mod:`repro.compiler` (LOGRES→ALGRES),
:mod:`repro.datalog` (flat baseline), :mod:`repro.workloads` (generators).
"""

from repro.core.coerce import from_value, to_value
from repro.core.database import Database
from repro.engine import Engine, EvalConfig, ResourceGuard, Semantics
from repro.errors import (
    ConsistencyError,
    EvalBudgetExceeded,
    LogresError,
    ModuleApplicationError,
    NonTerminationError,
    ParseError,
    SafetyError,
    SchemaError,
    StorageError,
    TransactionError,
    TypingError,
)
from repro.language.parser import (
    parse_program,
    parse_schema_source,
    parse_source,
)
from repro.modules import (
    ApplicationResult,
    DatabaseState,
    Evolution,
    Mode,
    Module,
    apply_module,
    materialize,
)
from repro.storage.factset import Fact, FactSet
from repro.types.schema import Schema, SchemaBuilder
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
)
from repro.values.oids import NIL, Oid, OidGenerator

__version__ = "1.0.0"

__all__ = [
    "NIL",
    "ApplicationResult",
    "ConsistencyError",
    "Database",
    "DatabaseState",
    "Engine",
    "EvalBudgetExceeded",
    "EvalConfig",
    "Evolution",
    "Fact",
    "FactSet",
    "LogresError",
    "Mode",
    "Module",
    "ModuleApplicationError",
    "MultisetValue",
    "NonTerminationError",
    "Oid",
    "OidGenerator",
    "ParseError",
    "ResourceGuard",
    "SafetyError",
    "Schema",
    "SchemaBuilder",
    "SchemaError",
    "Semantics",
    "SequenceValue",
    "SetValue",
    "StorageError",
    "TransactionError",
    "TupleValue",
    "TypingError",
    "apply_module",
    "from_value",
    "materialize",
    "parse_program",
    "parse_schema_source",
    "parse_source",
    "to_value",
    "__version__",
]
