"""``repro diff``: per-rule and per-phase deltas between two run reports.

Compares two :class:`~repro.observability.report.RunReport` artifacts —
typically a committed baseline and a fresh run of the same program —
and classifies every changed quantity:

* **count deltas** (fires, facts derived/deleted, duplicates,
  valuations, inventions, iterations, final fact count) are exact and
  machine-portable: any change is a behavioural difference, so in
  strict mode each one is a regression;
* **time deltas** (per-rule cumulative ms, per-phase ms, total ms) are
  jittery and machine-dependent: a regression needs BOTH a ratio above
  ``1 + threshold`` AND an absolute slowdown above ``min_time_ms``, so
  sub-millisecond noise on a fast run never trips the gate.

The text rendering is what ``repro diff A B`` prints; ``to_dict`` is
the JSON the CI artifact keeps.  Exit-code convention: the CLI exits 1
when ``regressions()`` is non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.events import payload_header
from repro.observability.report import RunReport

#: rule-row fields diffed as exact counts
RULE_COUNT_FIELDS = (
    "fires", "derived", "deleted", "duplicates", "valuations",
    "inventions",
)
#: top-level stats diffed as exact counts
STAT_COUNT_FIELDS = ("iterations", "facts", "inventions", "strata")


@dataclass
class Delta:
    """One changed quantity between baseline (a) and candidate (b)."""

    scope: str        # 'stats' | 'rule' | 'phase'
    subject: str      # rule text / phase path / stat name
    metric: str       # which field changed
    before: float
    after: float
    kind: str         # 'count' | 'time'
    regression: bool = False

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> float | None:
        if self.before == 0:
            return None
        return self.after / self.before

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "subject": self.subject,
            "metric": self.metric,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "ratio": self.ratio,
            "kind": self.kind,
            "regression": self.regression,
        }

    def render(self) -> str:
        mark = "!!" if self.regression else "  "
        if self.kind == "time":
            ratio = (f" ({self.ratio:.2f}x)"
                     if self.ratio is not None else "")
            change = (
                f"{self.before:.2f} ms -> {self.after:.2f} ms"
                f" ({self.delta:+.2f} ms){ratio}"
            )
        else:
            change = (f"{int(self.before)} -> {int(self.after)}"
                      f" ({self.delta:+.0f})")
        return f"{mark} {self.scope:<5} {self.metric:<12} {change}" \
               f"  [{self.subject}]"


@dataclass
class ReportDiff:
    """All deltas between two run reports, plus comparison caveats."""

    baseline: str | None
    candidate: str | None
    threshold: float
    min_time_ms: float
    strict_counts: bool
    comparable: bool = True
    notes: list[str] = field(default_factory=list)
    deltas: list[Delta] = field(default_factory=list)

    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regression]

    def to_dict(self) -> dict:
        return {
            **payload_header("report-diff"),
            "baseline": self.baseline,
            "candidate": self.candidate,
            "threshold": self.threshold,
            "min_time_ms": self.min_time_ms,
            "strict_counts": self.strict_counts,
            "comparable": self.comparable,
            "notes": self.notes,
            "deltas": [d.to_dict() for d in self.deltas],
            "regressions": len(self.regressions()),
        }

    def render_text(self) -> str:
        lines = [
            f"diff: {self.baseline or '<baseline>'}"
            f" vs {self.candidate or '<candidate>'}"
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        if not self.deltas:
            lines.append("no differences")
            return "\n".join(lines)
        lines.append("")
        for delta in self.deltas:
            lines.append(delta.render())
        bad = self.regressions()
        lines.append("")
        lines.append(
            f"{len(self.deltas)} delta(s), {len(bad)} regression(s)"
            f" (time threshold {self.threshold:+.0%},"
            f" jitter floor {self.min_time_ms:g} ms)"
        )
        return "\n".join(lines)


def diff_reports(
    a: RunReport,
    b: RunReport,
    threshold: float = 0.25,
    min_time_ms: float = 1.0,
    strict_counts: bool = False,
    baseline_name: str | None = None,
    candidate_name: str | None = None,
) -> ReportDiff:
    """Compare baseline ``a`` against candidate ``b``.

    ``strict_counts`` promotes every count change to a regression —
    the CI setting when both reports come from the same program on the
    same commit's workload.  Count changes are otherwise informational
    (the program may legitimately have changed), and time changes
    regress only past ``threshold`` *and* ``min_time_ms``.
    """
    out = ReportDiff(
        baseline=baseline_name or a.source_file,
        candidate=candidate_name or b.source_file,
        threshold=threshold,
        min_time_ms=min_time_ms,
        strict_counts=strict_counts,
    )
    if a.program_hash != b.program_hash:
        out.comparable = False
        out.notes.append(
            "program hashes differ"
            f" ({a.program_hash} vs {b.program_hash});"
            " count deltas reflect a changed program, not a regression"
        )
    if a.schema_hash != b.schema_hash:
        out.comparable = False
        out.notes.append(
            f"schema hashes differ ({a.schema_hash} vs {b.schema_hash})"
        )
    if a.semantics != b.semantics:
        out.comparable = False
        out.notes.append(
            f"semantics differ ({a.semantics} vs {b.semantics})"
        )
    if a.kernel != b.kernel:
        out.notes.append(f"kernels differ ({a.kernel} vs {b.kernel})")

    strict = strict_counts and out.comparable

    def count_delta(scope, subject, metric, before, after):
        if before == after:
            return
        out.deltas.append(Delta(
            scope, subject, metric, float(before), float(after),
            "count", regression=strict,
        ))

    def time_delta(scope, subject, metric, before_ms, after_ms):
        if before_ms == after_ms:
            return
        slower = after_ms - before_ms
        regressed = (
            slower > min_time_ms
            and before_ms > 0
            and after_ms / before_ms > 1 + threshold
        )
        if not regressed and abs(slower) <= min_time_ms:
            return  # sub-jitter wobble: not worth a row
        out.deltas.append(Delta(
            scope, subject, metric, before_ms, after_ms, "time",
            regression=regressed,
        ))

    # ---- top-level stats ------------------------------------------------
    for name in STAT_COUNT_FIELDS:
        count_delta("stats", name, name,
                    a.stats.get(name, 0) or 0, b.stats.get(name, 0) or 0)
    time_delta("stats", "total", "total_ms",
               a.stats.get("time_total_ms", 0.0),
               b.stats.get("time_total_ms", 0.0))

    # ---- per-rule -------------------------------------------------------
    rules_a = {row["index"]: row for row in a.rules}
    rules_b = {row["index"]: row for row in b.rules}
    for index in sorted(set(rules_a) | set(rules_b)):
        row_a, row_b = rules_a.get(index), rules_b.get(index)
        if row_a is None or row_b is None:
            which = "candidate" if row_a is None else "baseline"
            present = row_b if row_a is None else row_a
            out.notes.append(
                f"rule {index} only in {which}: {present['rule']}"
            )
            continue
        subject = f"rule {index}: {row_a['rule']}"
        for name in RULE_COUNT_FIELDS:
            count_delta("rule", subject, name,
                        row_a.get(name, 0), row_b.get(name, 0))
        time_delta("rule", subject, "time_ms",
                   row_a.get("time_ms", 0.0), row_b.get("time_ms", 0.0))

    # ---- per-phase ------------------------------------------------------
    phases_a = flatten_phases(a.phases)
    phases_b = flatten_phases(b.phases)
    for path in sorted(set(phases_a) | set(phases_b)):
        time_delta("phase", path, "elapsed_ms",
                   phases_a.get(path, 0.0), phases_b.get(path, 0.0))

    return out


def flatten_phases(tree: dict, prefix: str = "total") -> dict[str, float]:
    """Phase tree -> ``{'total/fixpoint/stratum': elapsed_ms}``."""
    if not tree:
        return {}
    out = {prefix: tree.get("elapsed", 0.0) * 1000}
    for name, child in tree.get("children", {}).items():
        out.update(flatten_phases(child, f"{prefix}/{name}"))
    return out
