"""Per-rule cost profiles: the data behind ``repro profile``.

:func:`build_profile` folds an instrumented run's metrics into ranked
per-rule rows (fires, facts derived/deleted, duplicate valuations,
cumulative and self time, % of run) plus per-stratum and per-iteration
breakdowns.  :func:`profile_program` is the one-call harness the CLI
and :mod:`benchmarks.report` share: evaluate a program under full
instrumentation and return the finished profile.

Column semantics are documented in ``docs/OBSERVABILITY.md``; the
invariant the test suite pins is that the ``fires`` column sums to the
tracer's derivation count (every fire event is one derivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.instrument import Instrumentation
from repro.observability.metrics import Labels


@dataclass
class RuleProfileRow:
    """One rule's aggregated cost over a run."""

    index: int
    rule: str
    location: str | None
    fires: int = 0
    derived: int = 0
    deleted: int = 0
    duplicates: int = 0
    valuations: int = 0
    inventions: int = 0
    time_cum: float = 0.0   # body matching + head processing, all rounds
    time_self: float = 0.0  # slowest single evaluation round
    pct: float = 0.0        # time_cum as a share of the whole run

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "rule": self.rule,
            "location": self.location,
            "fires": self.fires,
            "derived": self.derived,
            "deleted": self.deleted,
            "duplicates": self.duplicates,
            "valuations": self.valuations,
            "inventions": self.inventions,
            "time_ms": self.time_cum * 1000,
            "self_ms": self.time_self * 1000,
            "pct": self.pct,
        }


@dataclass
class Profile:
    """The full profile of one instrumented run."""

    source_file: str | None
    total_time: float
    iterations: int
    facts: int
    rules: list[RuleProfileRow] = field(default_factory=list)
    strata: list[dict] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)
    phases: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    #: the planner's chosen literal orders, one dict per fixpoint scope
    #: (:meth:`repro.engine.planner.Plan.to_dict`); empty when plan=off
    plans: list[dict] = field(default_factory=list)
    #: static interference summary (:mod:`repro.analysis.interference`):
    #: inventor count, interference-edge count, and the independence
    #: certificates per stratum
    analysis: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        from repro.observability.events import payload_header

        return {
            **payload_header("profile"),
            "file": self.source_file,
            "total_ms": self.total_time * 1000,
            "iterations": self.iterations,
            "facts": self.facts,
            "rules": [row.to_dict() for row in self.rules],
            "strata": self.strata,
            "iteration_times_ms": [
                t * 1000 for t in self.iteration_times
            ],
            "phases": self.phases,
            "metrics": self.metrics,
            "plans": self.plans,
            "analysis": self.analysis,
        }

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines = []
        where = f" — {self.source_file}" if self.source_file else ""
        lines.append(
            f"profile{where}: {self.total_time * 1000:.2f} ms,"
            f" {self.iterations} iteration(s), {self.facts} fact(s)"
        )
        lines.append("")
        lines.append("per-rule (ranked by cumulative time):")
        header = (
            f"  {'#':>3} {'fires':>7} {'derived':>8} {'deleted':>8}"
            f" {'dup':>6} {'cum ms':>9} {'self ms':>9} {'% run':>6}"
            f"  rule"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) + 18))
        for row in self.rules:
            where = f"  [{row.location}]" if row.location else ""
            lines.append(
                f"  {row.index:>3} {row.fires:>7} {row.derived:>8}"
                f" {row.deleted:>8} {row.duplicates:>6}"
                f" {row.time_cum * 1000:>9.2f}"
                f" {row.time_self * 1000:>9.2f}"
                f" {row.pct:>5.1f}%"
                f"  {_clip(row.rule, 48)}{where}"
            )
        if self.strata:
            lines.append("")
            lines.append("per-stratum:")
            for entry in self.strata:
                lines.append(
                    f"  stratum {entry['index']}: {entry['rules']}"
                    f" rule(s), {entry['time_ms']:.2f} ms"
                )
        if self.iteration_times:
            lines.append("")
            lines.append("per-iteration:")
            for i, elapsed in enumerate(self.iteration_times, start=1):
                lines.append(f"  iteration {i}: {elapsed * 1000:.2f} ms")
        if self.analysis:
            lines.append("")
            lines.append("analysis:")
            lines.append(
                f"  inventing rules: {self.analysis.get('inventors', 0)},"
                f" interference edges: {self.analysis.get('hazards', 0)}"
            )
            for entry in self.analysis.get("strata", []):
                groups = " ".join(
                    "{" + ", ".join(f"r{i}" for i in g) + "}"
                    for g in entry.get("independent_groups", [])
                )
                lines.append(
                    f"  stratum {entry.get('index')}:"
                    f" independent groups {groups or '-'}"
                )
        if self.plans:
            lines.append("")
            lines.append("plans:")
            for plan in self.plans:
                scope = plan.get("semantics", "?")
                if plan.get("stratum") is not None:
                    scope += f", stratum {plan['stratum']}"
                for rp in plan.get("rules", []):
                    order = rp.get("order")
                    shape = "dynamic fallback" if order is None else \
                        "order " + "→".join(str(i) for i in order)
                    lines.append(
                        f"  ({scope}) rule {rp.get('rule')}: {shape},"
                        f" est {rp.get('cost')}"
                    )
        return "\n".join(lines)


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def _rule_labels(index: int) -> Labels:
    return (("rule", str(index)),)


def build_profile(engine, obs: Instrumentation) -> Profile:
    """Fold ``obs``'s metrics into a ranked profile of ``engine``'s run."""
    registry = obs.metrics
    if registry is None:
        raise ValueError("build_profile needs metrics-enabled"
                         " instrumentation")
    stats = engine.stats
    total = stats.time_total or sum(stats.time_per_iteration) or 0.0
    rows: list[RuleProfileRow] = []
    for runtime in engine.runtimes:
        if runtime.rule.head is None:
            continue  # denials never fire
        ls = _rule_labels(runtime.index)
        span = runtime.rule.span
        location = None
        if span is not None:
            prefix = obs.source_file or "<source>"
            location = f"{prefix}:{span.line}"
        hist = registry.histogram("rule_time", ls)
        time_cum = hist.total if hist else 0.0
        time_self = hist.max if hist and hist.count else 0.0
        rows.append(RuleProfileRow(
            index=runtime.index,
            rule=repr(runtime.rule),
            location=location,
            fires=int(registry.counter("rule_fires", ls)),
            derived=int(registry.counter("rule_facts_derived", ls)),
            deleted=int(registry.counter("rule_facts_deleted", ls)),
            duplicates=int(registry.counter("rule_duplicates", ls)),
            valuations=int(registry.counter("rule_valuations", ls)),
            inventions=int(registry.counter("rule_inventions", ls)),
            time_cum=time_cum,
            time_self=time_self,
            pct=100 * time_cum / total if total else 0.0,
        ))
    rows.sort(key=lambda r: (-r.time_cum, -r.fires, r.index))
    strata = []
    for ls, hist in sorted(registry.histograms_named("stratum_time")
                           .items()):
        index = int(dict(ls)["stratum"])
        strata.append({
            "index": index,
            "rules": int(registry.gauge("stratum_rules", ls) or 0),
            "time_ms": hist.total * 1000,
        })
    return Profile(
        source_file=obs.source_file,
        total_time=total,
        iterations=stats.iterations,
        facts=int(registry.gauge("run_facts") or stats.facts_derived),
        rules=rows,
        strata=strata,
        iteration_times=list(stats.time_per_iteration),
        phases=obs.timer.to_dict(),
        metrics=registry.snapshot(),
        plans=[plan.to_dict() for plan in getattr(engine, "plans", [])],
        analysis=_analysis_summary(engine),
    )


def _analysis_summary(engine) -> dict:
    """The static interference picture of the profiled program."""
    from repro.analysis.interference import analyze_interference

    analyzed = getattr(engine, "analysis", None)
    if analyzed is None:
        return {}
    inter = analyze_interference(analyzed)
    return {
        "inventors": inter.inventors,
        "hazards": len(inter.all_edges()),
        "strata": [
            {
                "index": s.index,
                "rules": list(s.rules),
                "independent_groups": [list(g) for g in s.groups],
            }
            for s in inter.strata
        ],
    }


def profile_program(
    schema,
    program,
    edb,
    semantics=None,
    config=None,
    source_file: str | None = None,
    sink=None,
):
    """Evaluate ``(schema, program)`` over ``edb`` under full
    instrumentation; returns ``(instance, profile, obs)``.

    Instrumented runs use the general (non-semi-naive) kernel so every
    rule firing is observed — profiles trade a slower run for complete
    per-rule accounting.
    """
    from repro.engine import Engine, Semantics

    obs = Instrumentation.capture(source_file=source_file)
    if sink is not None:
        obs = obs.with_extra_sink(sink)
    engine = Engine(schema, program, config=config, instrumentation=obs)
    with obs.phase("fixpoint"):
        instance = engine.run(
            edb, semantics if semantics is not None
            else Semantics.INFLATIONARY,
        )
    return instance, build_profile(engine, obs), obs
