"""Zero-dependency metrics: counters, gauges and summary histograms.

A :class:`MetricsRegistry` holds every metric of one instrumented run,
keyed by metric name plus a tuple of ``(label, value)`` pairs — the same
dimensional model Prometheus uses, flattened to plain dicts so a
snapshot serializes with :mod:`json` alone.  The engine labels its
metrics by rule index, stratum and predicate, which is what the
``repro profile`` table is built from.

Counters only ever increase, gauges record the last value set, and
histograms keep a streaming summary (count / sum / min / max) — enough
for profile tables and regression tracking without storing samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Labels = tuple[tuple[str, str], ...]


def labels(**kwargs) -> Labels:
    """Normalize keyword labels to the registry's canonical key form."""
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


@dataclass
class HistogramSummary:
    """Streaming summary of observed samples (no per-sample storage)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class IndexStats:
    """Hit/miss accounting for :class:`repro.storage.factset.FactSet`
    hash-index lookups.

    The fact set holds this object by reference (duck-typed, so the
    storage layer never imports the observability package); the
    instrumentation folds the totals into the registry at run end.
    """

    __slots__ = ("hits", "misses", "builds")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.builds = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
        }


class MetricsRegistry:
    """All counters / gauges / histograms of one instrumented run."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, Labels], float] = {}
        self._gauges: dict[tuple[str, Labels], float] = {}
        self._histograms: dict[tuple[str, Labels], HistogramSummary] = {}

    # -- writing -----------------------------------------------------------
    def inc(self, name: str, label_set: Labels = (), amount: float = 1
            ) -> None:
        key = (name, label_set)
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, label_set: Labels = (),
                  value: float = 0) -> None:
        self._gauges[(name, label_set)] = value

    def observe(self, name: str, label_set: Labels = (),
                value: float = 0.0) -> None:
        key = (name, label_set)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramSummary()
        hist.observe(value)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str, label_set: Labels = ()) -> float:
        return self._counters.get((name, label_set), 0)

    def gauge(self, name: str, label_set: Labels = ()) -> float | None:
        return self._gauges.get((name, label_set))

    def histogram(self, name: str, label_set: Labels = ()
                  ) -> HistogramSummary | None:
        return self._histograms.get((name, label_set))

    def counters_named(self, name: str) -> dict[Labels, float]:
        """Every labeled series of one counter name."""
        return {
            label_set: value
            for (n, label_set), value in self._counters.items()
            if n == name
        }

    def histograms_named(self, name: str) -> dict[Labels, HistogramSummary]:
        return {
            label_set: hist
            for (n, label_set), hist in self._histograms.items()
            if n == name
        }

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready dump: ``name{k=v,...}`` keys, scalar values."""
        return {
            "counters": {
                _series(name, ls): value
                for (name, ls), value in sorted(self._counters.items())
            },
            "gauges": {
                _series(name, ls): value
                for (name, ls), value in sorted(self._gauges.items())
            },
            "histograms": {
                _series(name, ls): hist.to_dict()
                for (name, ls), hist in sorted(self._histograms.items())
            },
        }


def _series(name: str, label_set: Labels) -> str:
    if not label_set:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_set)
    return f"{name}{{{inner}}}"
