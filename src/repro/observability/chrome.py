"""Chrome-trace (Perfetto) export of the phase tree.

Turns a :class:`~repro.observability.timing.PhaseTimer` tree (or its
``to_dict`` form, as stored in a run report) into the Trace Event
Format that ``chrome://tracing`` and https://ui.perfetto.dev load: one
``"X"`` (complete) event per phase node, nested by synthesized
timestamps.

The phase tree stores only accumulated durations, not start times, so
timestamps are reconstructed: a node starts where its parent started,
and each sibling starts where the previous one ended.  For re-entrant
phases (``count > 1``) the rendered span is the *accumulated* time —
faithful totals, idealized placement.
"""

from __future__ import annotations

import json


def chrome_trace(phases: dict, process_name: str = "repro") -> dict:
    """Trace Event Format document for a phase tree dict."""
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": {"name": process_name},
    }]
    if phases:
        _emit(events, "total", phases, start_us=0.0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _emit(events: list[dict], name: str, node: dict,
          start_us: float) -> float:
    """Append ``name``'s complete event and its children; returns the
    node's duration in microseconds."""
    duration_us = node.get("elapsed", 0.0) * 1_000_000
    events.append({
        "name": name,
        "ph": "X",
        "ts": start_us,
        "dur": duration_us,
        "pid": 1,
        "tid": 1,
        "args": {"count": node.get("count", 0)},
    })
    cursor = start_us
    for child_name, child in node.get("children", {}).items():
        cursor += _emit(events, child_name, child, cursor)
    return duration_us


def write_chrome_trace(phases: dict, path,
                       process_name: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(chrome_trace(phases, process_name), f, indent=2)
        f.write("\n")
