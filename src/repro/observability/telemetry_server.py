"""The live attach surface: NDJSON telemetry over a Unix socket.

``repro run --telemetry-listen PATH`` starts a :class:`TelemetryServer`
on a Unix domain socket: every accepted connection gets its own bounded
:class:`~repro.observability.bus.BusSubscription` (replaying the
retention ring, so a mid-run attacher sees the run-start/plan/stratum
context it missed) and a writer thread that streams one JSON object per
line.  A slow reader only ever drops *its own* events — the engine, the
bus and every other consumer are unaffected, and the drops are counted
on the subscription.

Platforms without ``AF_UNIX`` (and callers that pass a ``*.jsonl``
path) fall back to :class:`FollowFileSink`: a line-buffered JSONL file
flushed on every event, which ``repro tail --follow`` polls like
``tail -f``.  :func:`serve_telemetry` picks the right one.

The server owns no policy: it forwards whatever the bus publishes and
closes client streams when the bus closes (end of run), which is how an
attached ``repro tail`` knows the stream ended.
"""

from __future__ import annotations

import json
import os
import socket
import threading

from repro.observability.bus import EventBus, EventFilter
from repro.observability.events import event_to_dict
from repro.observability.sink import EventSink

#: how long a client writer blocks waiting for fresh events before
#: re-checking for shutdown
_POLL_SECONDS = 0.2
#: per-client queue bound: a viewer a few thousand events behind should
#: skip ahead, not stall the stream
CLIENT_CAPACITY = 8192


def unix_sockets_supported() -> bool:
    return hasattr(socket, "AF_UNIX")


class FollowFileSink(EventSink):
    """JSONL fallback transport: every event written *and flushed*, so a
    follower polling the file (``repro tail --follow``) observes progress
    mid-run, not at buffer boundaries."""

    def __init__(self, path: str):
        self.path = path
        self._stream = open(path, "w", encoding="utf-8")

    def emit(self, event) -> None:
        self._stream.write(
            json.dumps(event_to_dict(event), sort_keys=True) + "\n"
        )
        self._stream.flush()

    def flush(self) -> None:
        if not self._stream.closed:
            self._stream.flush()

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.flush()
            self._stream.close()


class TelemetryServer:
    """Streams bus events to every connected Unix-socket client."""

    def __init__(self, bus: EventBus, path: str,
                 filter: EventFilter | None = None,
                 capacity: int = CLIENT_CAPACITY):
        self.bus = bus
        self.path = path
        self.filter = filter
        self.capacity = capacity
        self._closing = threading.Event()
        self._clients: list[threading.Thread] = []
        self._client_serial = 0
        if os.path.exists(path):
            # a stale socket from a crashed run; connect() would have
            # failed anyway, so replacing it is strictly better
            os.unlink(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(8)
        self._sock.settimeout(_POLL_SECONDS)
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="telemetry-accept", daemon=True
        )
        self._acceptor.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._client_serial += 1
            name = f"tail-{self._client_serial}"
            sub = self.bus.subscribe(
                name=name, capacity=self.capacity,
                filter=self.filter, replay=True,
            )
            writer = threading.Thread(
                target=self._client_loop, args=(conn, sub),
                name=f"telemetry-{name}", daemon=True,
            )
            writer.start()
            self._clients.append(writer)

    def _client_loop(self, conn: socket.socket, sub) -> None:
        try:
            stream = conn.makefile("w", encoding="utf-8", newline="\n")
            while True:
                events = sub.wait(timeout=_POLL_SECONDS)
                for event in events:
                    stream.write(
                        json.dumps(event_to_dict(event), sort_keys=True)
                        + "\n"
                    )
                if events:
                    stream.flush()
                if sub.ended:
                    stream.flush()
                    break
                if self._closing.is_set() and not events:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError,
                ValueError):
            pass  # reader went away; nothing to salvage
        finally:
            sub.close()
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def close(self, linger: float = 2.0) -> None:
        """Stop accepting, give client writers ``linger`` seconds to
        drain their queues, remove the socket path."""
        self._closing.set()
        for writer in self._clients:
            writer.join(timeout=linger)
        try:
            self._sock.close()
        except OSError:
            pass
        self._acceptor.join(timeout=_POLL_SECONDS * 4)
        try:
            os.unlink(self.path)
        except OSError:
            pass


def serve_telemetry(bus: EventBus, path: str,
                    filter: EventFilter | None = None):
    """The live attach surface for ``--telemetry-listen PATH``.

    A Unix-socket :class:`TelemetryServer` where the platform has
    ``AF_UNIX`` — unless ``path`` ends in ``.jsonl``, which explicitly
    requests the file transport.  Returns an object with ``close()``.
    """
    if path.endswith(".jsonl") or not unix_sockets_supported():
        sink = FollowFileSink(path)
        bus.attach_sink(sink, filter)
        return sink
    return TelemetryServer(bus, path, filter=filter)
