"""Engine observability: metrics, structured events, timing spans.

The instrumentation subsystem Section 5 promises ("tools supporting the
design, debugging, and monitoring of LOGRES databases and programs"),
built dependency-free:

* :mod:`repro.observability.metrics` — counters / gauges / histograms
  keyed by (rule, stratum, predicate);
* :mod:`repro.observability.events` — the :class:`EngineEvent` stream
  (run / stratum / iteration / rule-fire / invention / deletion /
  constraint-violation), JSONL round-trippable;
* :mod:`repro.observability.sink` — pluggable sinks (null, collector,
  JSONL, human text, fan-out);
* :mod:`repro.observability.timing` — nested monotonic timing spans;
* :mod:`repro.observability.instrument` — the facade the engine emits
  through, with a zero-overhead disabled fast path;
* :mod:`repro.observability.profile` — ranked per-rule profiles;
* :mod:`repro.observability.report` — the persistent
  :class:`RunReport` artifact ``repro run --report-out`` writes;
* :mod:`repro.observability.diff` — per-rule / per-phase deltas
  between two run reports (``repro diff``);
* :mod:`repro.observability.chrome` — Chrome-trace (Perfetto) export
  of the phase tree;
* :mod:`repro.observability.whynot` — why-not provenance for absent
  facts (``repro explain --why-not``);
* :mod:`repro.observability.bus` — the bounded in-process pub/sub
  :class:`EventBus` every sink and live consumer rides, with
  per-subscriber filters, retention replay and drop accounting;
* :mod:`repro.observability.timeseries` — windowed counters, streaming
  p50/p95/p99 histograms and the Prometheus text exposition;
* :mod:`repro.observability.telemetry_server` — the Unix-socket NDJSON
  attach surface of ``repro run --telemetry-listen``;
* :mod:`repro.observability.tail` — the ``repro tail`` reader and live
  per-stratum / per-rule renderer;
* :mod:`repro.observability.trend` — the perf-telemetry store over the
  ``BENCH_*.json`` history and the ``repro bench report`` trend gate.

(profile / report / diff / whynot / telemetry_server / tail are imported
directly, not re-exported here, to avoid importing the engine or socket
machinery at package-init time.)

See ``docs/OBSERVABILITY.md`` for the event taxonomy and the metrics
catalogue.
"""

from repro.observability.bus import (
    BusSubscription,
    EventBus,
    EventFilter,
    build_filter,
)
from repro.observability.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    ConstraintViolated,
    EngineEvent,
    FactDeleted,
    Heartbeat,
    IterationFinished,
    IterationStarted,
    OidInvented,
    RuleFired,
    RunFinished,
    RunStarted,
    ServerRequest,
    StratumFinished,
    StratumStarted,
    StreamHeader,
    TraceContext,
    event_from_dict,
    event_to_dict,
    new_run_id,
    payload_header,
)
from repro.observability.instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from repro.observability.metrics import (
    HistogramSummary,
    IndexStats,
    MetricsRegistry,
    labels,
)
from repro.observability.sink import (
    NULL_SINK,
    CollectorSink,
    EventSink,
    JsonlSink,
    MultiSink,
    NullSink,
    TextSink,
    read_jsonl,
)
from repro.observability.timeseries import (
    StreamingHistogram,
    StreamingMetrics,
    WindowedCounter,
    render_prometheus,
)
from repro.observability.timing import PhaseTimer
from repro.observability.trend import (
    TrendSeries,
    TrendStore,
    append_bench_rows,
    find_regressions,
    read_bench_rows,
    render_trend_text,
    trend_prometheus,
    trend_report,
)

__all__ = [
    "EVENT_TYPES",
    "BusSubscription",
    "CollectorSink",
    "ConstraintViolated",
    "EngineEvent",
    "EventBus",
    "EventFilter",
    "EventSink",
    "FactDeleted",
    "Heartbeat",
    "HistogramSummary",
    "IndexStats",
    "Instrumentation",
    "IterationFinished",
    "IterationStarted",
    "JsonlSink",
    "MetricsRegistry",
    "MultiSink",
    "NULL_INSTRUMENTATION",
    "NULL_SINK",
    "NullSink",
    "OidInvented",
    "PhaseTimer",
    "RuleFired",
    "RunFinished",
    "RunStarted",
    "SCHEMA_VERSION",
    "ServerRequest",
    "StratumFinished",
    "StratumStarted",
    "StreamHeader",
    "StreamingHistogram",
    "StreamingMetrics",
    "TextSink",
    "TraceContext",
    "TrendSeries",
    "TrendStore",
    "WindowedCounter",
    "append_bench_rows",
    "build_filter",
    "find_regressions",
    "read_bench_rows",
    "render_trend_text",
    "trend_prometheus",
    "trend_report",
    "event_from_dict",
    "event_to_dict",
    "labels",
    "new_run_id",
    "payload_header",
    "read_jsonl",
    "render_prometheus",
]
