"""Why-not provenance: explain why a fact is *absent* from an instance.

The debugging half of Section 5's promised tool support.  Where
:class:`repro.engine.trace.Tracer` answers "why is this fact here?"
with a derivation tree, :func:`explain_absence` answers "why is it
not?" in the justification style of FO(·) systems:

* every rule whose head could produce the fact is replayed against the
  final instance under the bindings the head forces
  (:func:`repro.engine.valuation.seed_bindings`), and the *best
  near-miss valuation* is reported — which body literal failed first
  (with its source span), and which bindings were live at that point
  (:func:`repro.engine.step.probe_body`);
* deletion provenance distinguishes "never derived" from "derived then
  deleted by a head negation", via the tracer's Δ⁻ records
  (:meth:`repro.engine.trace.Tracer.deletions_of`).

The report renders as text (``repro explain --why-not``) or JSON
(``--format json``); both carry the observability schema version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.events import payload_header

#: statuses a why-not report can conclude
HOLDS = "holds"
NEVER_DERIVED = "never-derived"
DERIVED_THEN_DELETED = "derived-then-deleted"
NO_CANDIDATE_RULE = "no-candidate-rule"

#: per-candidate-rule outcomes
HEAD_MISMATCH = "head-mismatch"
BODY_UNSATISFIABLE = "body-unsatisfiable"
BODY_SATISFIABLE = "body-satisfiable"


@dataclass
class ProvenanceEntry:
    """One recorded Δ⁺ / Δ⁻ contribution touching the queried fact."""

    action: str  # 'derived' | 'deleted'
    iteration: int
    rule_index: int | None
    rule: str
    location: str | None
    fact: str

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "iteration": self.iteration,
            "rule_index": self.rule_index,
            "rule": self.rule,
            "location": self.location,
            "fact": self.fact,
        }

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return (
            f"{self.action} at step {self.iteration}"
            f" by rule: {self.rule}{where}"
        )


@dataclass
class RuleNearMiss:
    """How close one candidate rule came to producing the fact."""

    rule_index: int
    rule: str
    location: str | None
    status: str  # HEAD_MISMATCH | BODY_UNSATISFIABLE | BODY_SATISFIABLE
    matched: int = 0
    total: int = 0
    failed_literal: str | None = None
    failed_location: str | None = None
    bindings: dict[str, str] = field(default_factory=dict)
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "rule_index": self.rule_index,
            "rule": self.rule,
            "location": self.location,
            "status": self.status,
            "matched": self.matched,
            "total": self.total,
            "failed_literal": self.failed_literal,
            "failed_location": self.failed_location,
            "bindings": self.bindings,
            "detail": self.detail,
        }

    def render(self) -> list[str]:
        where = f" [{self.location}]" if self.location else ""
        lines = [f"rule {self.rule_index}{where}: {self.rule}"]
        if self.status == HEAD_MISMATCH:
            lines.append(f"  head cannot match: {self.detail}")
            return lines
        if self.status == BODY_SATISFIABLE:
            lines.append(
                f"  all {self.total} body literal(s) satisfiable —"
                " the rule fires, but its conclusion is not this fact"
                " (deleted later, or the head produces different"
                " values)"
            )
        else:
            at = (f" at {self.failed_location}"
                  if self.failed_location else "")
            lines.append(
                f"  matched {self.matched}/{self.total} body"
                f" literal(s); first failing literal:"
                f" {self.failed_literal}{at}"
            )
            if self.detail:
                lines.append(f"  note: {self.detail}")
        if self.bindings:
            rendered = ", ".join(
                f"{name} = {value}"
                for name, value in sorted(self.bindings.items())
            )
            lines.append(f"  live bindings: {rendered}")
        return lines


@dataclass
class WhyNotReport:
    """The full answer to "why does this fact not hold?"."""

    fact: str
    semantics: str
    status: str
    derivations: list[ProvenanceEntry] = field(default_factory=list)
    deletions: list[ProvenanceEntry] = field(default_factory=list)
    candidates: list[RuleNearMiss] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            **payload_header("why-not"),
            "fact": self.fact,
            "semantics": self.semantics,
            "status": self.status,
            "derivations": [e.to_dict() for e in self.derivations],
            "deletions": [e.to_dict() for e in self.deletions],
            "candidates": [c.to_dict() for c in self.candidates],
        }

    def render_text(self) -> str:
        lines = [f"why-not: {self.fact}"]
        if self.status == HOLDS:
            lines.append("the fact holds in the final instance")
            return "\n".join(lines)
        lines.append(
            f"status: {self.status.replace('-', ' ')}"
            f" ({self.semantics} semantics)"
        )
        if self.derivations or self.deletions:
            lines.append("")
            lines.append("provenance:")
            for entry in sorted(
                self.derivations + self.deletions,
                key=lambda e: (e.iteration, e.action == "deleted"),
            ):
                lines.append(f"  {entry.render()}")
        if self.candidates:
            lines.append("")
            lines.append("candidate rules (best near-miss first):")
            for miss in self.candidates:
                for line in miss.render():
                    lines.append(f"  {line}")
        elif self.status == NO_CANDIDATE_RULE:
            lines.append(
                "no rule has a head that could produce this predicate;"
                " the fact could only come from the extensional database"
            )
        return "\n".join(lines)


def explain_absence(
    engine,
    instance,
    fact,
    tracer=None,
    semantics: str = "inflationary",
    source_file: str | None = None,
    budget: int = 10_000,
) -> WhyNotReport:
    """Why is ``fact`` absent from ``instance``?

    ``engine`` is the :class:`repro.engine.Engine` that computed the
    instance (its analyzed rule runtimes drive the replay); ``tracer``
    (optional) supplies derivation / deletion provenance recorded during
    the run.  ``budget`` bounds the per-rule body search.
    """
    from repro.engine.activedomain import ActiveDomains
    from repro.engine.step import probe_body
    from repro.engine.valuation import MatchContext, seed_bindings
    from repro.language.ast import Literal
    from repro.values.complex import value_repr

    rendered_fact = repr(fact)
    if fact in instance:
        return WhyNotReport(rendered_fact, semantics, HOLDS)

    derivations: list[ProvenanceEntry] = []
    deletions: list[ProvenanceEntry] = []
    if tracer is not None:
        index_of = _rule_indexes(engine)
        derivations = [
            _provenance("derived", d, index_of, source_file)
            for d in tracer.derivations_of(fact)
        ]
        deletions = [
            _provenance("deleted", d, index_of, source_file)
            for d in tracer.deletions_of(fact)
        ]

    ctx = MatchContext(instance, engine.schema)
    domains = ActiveDomains(instance, engine.schema)
    candidates: list[RuleNearMiss] = []
    for runtime in engine.runtimes:
        head = runtime.rule.head
        if not isinstance(head, Literal) or head.negated:
            continue  # denials and deletion rules never produce facts
        if head.pred != fact.pred:
            continue
        location = _location(runtime.rule.span, source_file)
        seed, mismatch = seed_bindings(head.args, fact, ctx)
        if mismatch is not None:
            candidates.append(RuleNearMiss(
                runtime.index, repr(runtime.rule), location,
                HEAD_MISMATCH, total=len(runtime.rule.body),
                detail=mismatch,
            ))
            continue
        probe = probe_body(runtime, ctx, domains, seed=seed,
                           budget=budget)
        rendered_bindings = {
            var.name: value_repr(value)
            for var, value in probe.bindings.items()
        }
        if probe.satisfiable:
            candidates.append(RuleNearMiss(
                runtime.index, repr(runtime.rule), location,
                BODY_SATISFIABLE, matched=probe.total,
                total=probe.total, bindings=rendered_bindings,
            ))
        else:
            failed_span = getattr(probe.failed, "span", None)
            candidates.append(RuleNearMiss(
                runtime.index, repr(runtime.rule), location,
                BODY_UNSATISFIABLE, matched=probe.matched,
                total=probe.total,
                failed_literal=probe.failed_repr,
                failed_location=_location(failed_span, source_file),
                bindings=rendered_bindings,
                detail="search budget exhausted; the reported near-miss"
                       " is the best found" if probe.exhausted else "",
            ))
    candidates.sort(
        key=lambda c: (
            c.status == HEAD_MISMATCH,          # informative ones first
            -(c.matched / c.total if c.total else 0.0),
            c.rule_index,
        )
    )

    if deletions:
        status = DERIVED_THEN_DELETED
    elif not candidates:
        status = NO_CANDIDATE_RULE
    else:
        status = NEVER_DERIVED
    return WhyNotReport(rendered_fact, semantics, status,
                        derivations, deletions, candidates)


def _rule_indexes(engine) -> dict[int, int]:
    """Map ``id(rule)`` to the engine's rule index, so provenance
    entries can name the rule number the profile table uses."""
    return {id(r.rule): r.index for r in engine.runtimes}


def _provenance(action, derivation, index_of, source_file
                ) -> ProvenanceEntry:
    rule = derivation.rule
    return ProvenanceEntry(
        action=action,
        iteration=derivation.iteration,
        rule_index=index_of.get(id(rule)),
        rule=repr(rule),
        location=_location(getattr(rule, "span", None), source_file),
        fact=repr(derivation.fact),
    )


def _location(span, source_file: str | None) -> str | None:
    if span is None:
        return None
    prefix = source_file or "<source>"
    return f"{prefix}:{span.line}:{span.column}"
