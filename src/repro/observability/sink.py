"""Event sinks: where the structured event stream goes.

A sink is anything with ``emit(event)`` (and optionally ``close()``).
:data:`NULL_SINK` is the shared disabled sink the engine's fast path
compares against by identity — when it is the only sink attached, no
event objects are ever allocated.
"""

from __future__ import annotations

import json
from typing import IO

from repro.observability.events import EngineEvent, event_to_dict


class EventSink:
    """Base sink; subclasses override :meth:`emit`."""

    def emit(self, event: EngineEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output to its destination (no-op by default).

        Called on heartbeats and — crucially — from the resource-guard
        breach path, so a run killed by ``EvalBudgetExceeded`` still
        leaves a trace file ending on a complete JSON line."""

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Swallows everything.  The engine never constructs events for it."""

    def emit(self, event: EngineEvent) -> None:  # pragma: no cover
        pass


NULL_SINK = NullSink()


class CollectorSink(EventSink):
    """Keeps every event in memory (tests, profile post-processing)."""

    def __init__(self) -> None:
        self.events: list[EngineEvent] = []

    def emit(self, event: EngineEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[EngineEvent]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink(EventSink):
    """Writes one JSON object per line to a text stream."""

    def __init__(self, stream: IO[str], close_stream: bool = False):
        self._stream = stream
        self._close_stream = close_stream

    def emit(self, event: EngineEvent) -> None:
        self._stream.write(json.dumps(event_to_dict(event),
                                      sort_keys=True) + "\n")

    def flush(self) -> None:
        if not self._stream.closed:
            self._stream.flush()

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.flush()
            if self._close_stream:
                self._stream.close()


class TextSink(EventSink):
    """Writes the human-readable one-liner of every event."""

    def __init__(self, stream: IO[str], close_stream: bool = False):
        self._stream = stream
        self._close_stream = close_stream

    def emit(self, event: EngineEvent) -> None:
        self._stream.write(event.render() + "\n")

    def flush(self) -> None:
        if not self._stream.closed:
            self._stream.flush()

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.flush()
            if self._close_stream:
                self._stream.close()


class MultiSink(EventSink):
    """Fans one stream out to several sinks."""

    def __init__(self, sinks: list[EventSink]):
        self.sinks = [s for s in sinks if not isinstance(s, NullSink)]

    def emit(self, event: EngineEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(stream: IO[str]) -> list[EngineEvent]:
    """Parse a JSONL event stream back into event objects."""
    from repro.observability.events import event_from_dict

    return [
        event_from_dict(json.loads(line))
        for line in stream
        if line.strip()
    ]
