"""Windowed time-series metrics and the Prometheus text exposition.

:class:`~repro.observability.metrics.MetricsRegistry` keeps whole-run
scalars — enough for profiles and regression gates, useless for a live
attach: "how fast is it firing *now*" needs per-window counts, and tail
latency needs quantiles, not means.  This module layers both on the
registry without touching its storage model:

* :class:`StreamingHistogram` — fixed cumulative buckets (Prometheus
  ``le`` semantics) with p50/p95/p99 estimated by linear interpolation
  inside the owning bucket.  No per-sample storage; observation is two
  array writes.
* :class:`WindowedCounter` — counts bucketed into fixed wall-clock
  windows (ring of the last N windows), giving a live events/second
  rate that decays when the producer stalls.
* :class:`StreamingMetrics` — a :class:`MetricsRegistry` subclass whose
  ``inc``/``observe`` additionally feed windowed counters and streaming
  histograms.  Everything that already takes a registry (the engine, the
  profile builder, run reports) accepts it unchanged.
* :func:`render_prometheus` — the text exposition (version 0.0.4) of a
  registry snapshot: counters as ``_total``, gauges verbatim, summaries
  as ``_count``/``_sum``, streaming histograms as cumulative
  ``_bucket{le=...}`` series.

``repro run --prom-out FILE`` writes :func:`render_prometheus` output;
the CI live-tail smoke job scrapes and validates it.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left

from repro.observability.metrics import Labels, MetricsRegistry

#: default bucket upper bounds for timing observations (seconds):
#: exponential 100µs → ~13s, the span of one iteration to one long run
DEFAULT_TIME_BUCKETS: tuple[float, ...] = tuple(
    0.0001 * (2 ** i) for i in range(18)
)

#: the quantiles every streaming histogram reports
QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class StreamingHistogram:
    """Fixed-bucket cumulative histogram with interpolated quantiles.

    ``buckets`` are the finite upper bounds (ascending); one implicit
    ``+Inf`` bucket catches the overflow.  A sample lands in the first
    bucket whose bound is >= the value (Prometheus ``le`` convention).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("bucket bounds must be non-empty ascending")
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) of the observed samples.

        Linear interpolation across the owning bucket, clamped to the
        observed ``min``/``max`` so a histogram whose samples all share
        one bucket never reports a value outside what it saw.  Empty
        histograms report 0.0.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.max)
                lo = max(lo, self.min if seen == 0 else lo)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (rank - seen) / n
                return lo + (hi - lo) * fraction
            seen += n
        return self.max

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` rows, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [
                {"le": ("+Inf" if bound == float("inf") else bound),
                 "count": cum}
                for bound, cum in self.cumulative()
            ],
        }


class WindowedCounter:
    """Increments bucketed into fixed wall-clock windows.

    Keeps the last ``keep`` windows in a ring; :meth:`rate` reports
    events/second over the completed portion of the ring, so a stalled
    producer's rate decays to zero instead of freezing at its last
    burst.  ``clock`` is injectable for deterministic tests.
    """

    __slots__ = ("window", "keep", "clock", "_windows", "total")

    def __init__(self, window: float = 1.0, keep: int = 60, clock=None):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.keep = max(1, keep)
        self.clock = clock or time.monotonic
        self._windows: list[tuple[int, float]] = []  # (window_no, count)
        self.total = 0.0

    def _window_no(self) -> int:
        return int(self.clock() / self.window)

    def inc(self, amount: float = 1) -> None:
        now = self._window_no()
        self.total += amount
        if self._windows and self._windows[-1][0] == now:
            no, count = self._windows[-1]
            self._windows[-1] = (no, count + amount)
        else:
            self._windows.append((now, amount))
            if len(self._windows) > self.keep:
                del self._windows[: len(self._windows) - self.keep]

    def rate(self) -> float:
        """Events/second over the retained windows up to now."""
        if not self._windows:
            return 0.0
        now = self._window_no()
        horizon = now - self.keep
        live = [(no, c) for no, c in self._windows if no > horizon]
        if not live:
            return 0.0
        spanned = max(now - live[0][0], 1)
        return sum(c for _, c in live) / (spanned * self.window)

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "rate_per_s": self.rate(),
            "window_s": self.window,
        }


class StreamingMetrics(MetricsRegistry):
    """A registry whose writes also feed live time-series state.

    Drop-in for :class:`MetricsRegistry` (the engine, profile builder
    and run reports only use the base interface); additionally every
    ``inc`` updates a per-series :class:`WindowedCounter` and every
    ``observe`` a per-series :class:`StreamingHistogram`, which is what
    the Prometheus exposition and the telemetry snapshot read.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                 window: float = 1.0, clock=None):
        super().__init__()
        self._buckets = buckets
        self._window = window
        self._clock = clock
        self.windows: dict[tuple[str, Labels], WindowedCounter] = {}
        self.streams: dict[tuple[str, Labels], StreamingHistogram] = {}

    def inc(self, name: str, label_set: Labels = (), amount: float = 1
            ) -> None:
        super().inc(name, label_set, amount)
        key = (name, label_set)
        counter = self.windows.get(key)
        if counter is None:
            counter = self.windows[key] = WindowedCounter(
                window=self._window, clock=self._clock
            )
        counter.inc(amount)

    def observe(self, name: str, label_set: Labels = (),
                value: float = 0.0) -> None:
        super().observe(name, label_set, value)
        key = (name, label_set)
        stream = self.streams.get(key)
        if stream is None:
            stream = self.streams[key] = StreamingHistogram(self._buckets)
        stream.observe(value)

    def timeseries_snapshot(self) -> dict:
        """JSON-ready dump of the live state: per-series rates and
        quantile summaries (keys match :meth:`snapshot` series keys)."""
        from repro.observability.metrics import _series

        return {
            "rates": {
                _series(name, ls): counter.to_dict()
                for (name, ls), counter in sorted(self.windows.items())
            },
            "histograms": {
                _series(name, ls): stream.to_dict()
                for (name, ls), stream in sorted(self.streams.items())
            },
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_OK.sub('_', name)}"


def _prom_labels(label_set: Labels) -> str:
    if not label_set:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", k)}="{_escape(v)}"' for k, v in label_set
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = "repro") -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Counters gain the conventional ``_total`` suffix; plain
    :class:`~repro.observability.metrics.HistogramSummary` series render
    as summaries (``_count``/``_sum``); a :class:`StreamingMetrics`
    registry additionally renders real ``_bucket{le=...}`` histograms
    from its streaming state.
    """
    lines: list[str] = []

    def series_of(mapping):
        by_name: dict[str, list] = {}
        for (name, label_set), value in sorted(mapping.items()):
            by_name.setdefault(name, []).append((label_set, value))
        return by_name

    for name, entries in series_of(registry._counters).items():
        prom = _prom_name(name, namespace) + "_total"
        lines.append(f"# HELP {prom} repro counter {name}")
        lines.append(f"# TYPE {prom} counter")
        for label_set, value in entries:
            lines.append(f"{prom}{_prom_labels(label_set)} {_fmt(value)}")
    for name, entries in series_of(registry._gauges).items():
        prom = _prom_name(name, namespace)
        lines.append(f"# HELP {prom} repro gauge {name}")
        lines.append(f"# TYPE {prom} gauge")
        for label_set, value in entries:
            lines.append(f"{prom}{_prom_labels(label_set)} {_fmt(value)}")

    streams = getattr(registry, "streams", None) or {}
    streamed_names = {name for name, _ in streams}
    for name, entries in series_of(registry._histograms).items():
        prom = _prom_name(name, namespace)
        if name in streamed_names:
            # rendered as a real histogram from the streaming state below
            continue
        lines.append(f"# HELP {prom} repro summary {name}")
        lines.append(f"# TYPE {prom} summary")
        for label_set, hist in entries:
            suffix = _prom_labels(label_set)
            lines.append(f"{prom}_count{suffix} {hist.count}")
            lines.append(f"{prom}_sum{suffix} {_fmt(hist.total)}")
    for name, entries in series_of(streams).items():
        prom = _prom_name(name, namespace)
        lines.append(f"# HELP {prom} repro histogram {name}")
        lines.append(f"# TYPE {prom} histogram")
        for label_set, stream in entries:
            for bound, cum in stream.cumulative():
                le = ('le="+Inf"' if bound == float("inf")
                      else f'le="{_fmt(bound)}"')
                inner = _prom_labels(label_set)
                merged = (inner[:-1] + "," + le + "}" if inner
                          else "{" + le + "}")
                lines.append(f"{prom}_bucket{merged} {cum}")
            suffix = _prom_labels(label_set)
            lines.append(f"{prom}_count{suffix} {stream.count}")
            lines.append(f"{prom}_sum{suffix} {_fmt(stream.total)}")
    return "\n".join(lines) + "\n"
