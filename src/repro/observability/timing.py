"""Nested timing spans over the monotonic clock.

:class:`PhaseTimer` records a tree of named phases — parse → analyze →
fixpoint (per stratum) → goal evaluation → constraint check — via a
re-entrant context manager.  Entering the same phase name twice under
one parent accumulates into a single node, so per-iteration phases do
not explode the tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseNode:
    """One node of the phase tree: accumulated wall time and children."""

    name: str
    elapsed: float = 0.0
    count: int = 0
    children: dict[str, "PhaseNode"] = field(default_factory=dict)
    #: trace-context envelope, stamped on first entry when the timer
    #: carries a :class:`~repro.observability.events.TraceContext` — the
    #: same ``run_id``/``span_id`` model the event stream uses, so a
    #: phase in a report correlates with the events emitted inside it
    span_id: str | None = None
    parent_span_id: str | None = None

    def child(self, name: str) -> "PhaseNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = PhaseNode(name)
        return node

    def to_dict(self) -> dict:
        out: dict = {"elapsed": self.elapsed, "count": self.count}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.children:
            out["children"] = {
                name: node.to_dict()
                for name, node in self.children.items()
            }
        return out

    def render(self, indent: int = 0, total: float | None = None) -> str:
        base = total if total is not None else (self.elapsed or None)
        pct = (
            f"  {100 * self.elapsed / base:5.1f}%"
            if base else ""
        )
        lines = [
            f"{'  ' * indent}{self.name:<24}"
            f" {self.elapsed * 1000:9.2f} ms{pct}"
        ]
        for child in self.children.values():
            lines.append(child.render(indent + 1, base))
        return "\n".join(lines)


class PhaseTimer:
    """Collects nested phases; safe to use when never entered.

    ``trace`` (optional) is the producer's
    :class:`~repro.observability.events.TraceContext`: when set, every
    phase opens a real span in it, so phase nodes carry span ids and
    events emitted inside a phase are parented under it.
    """

    def __init__(self, trace=None) -> None:
        self.root = PhaseNode("total")
        self._stack: list[PhaseNode] = [self.root]
        self.trace = trace

    @contextmanager
    def phase(self, name: str):
        node = self._stack[-1].child(name)
        trace = self.trace
        if trace is not None:
            span_id, parent = trace.start_span()
            if node.span_id is None:
                node.span_id = span_id
                node.parent_span_id = parent
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        finally:
            elapsed = time.perf_counter() - started
            node.elapsed += elapsed
            node.count += 1
            self._stack.pop()
            if trace is not None:
                trace.end_span()
            if len(self._stack) == 1:
                self.root.elapsed += elapsed
                self.root.count = max(self.root.count, 1)

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def render(self) -> str:
        return self.root.render(total=self.root.elapsed or None)


@contextmanager
def _noop_cm():
    yield None


class _NullTimer:
    """Phase timer of the disabled instrumentation: no-ops throughout."""

    __slots__ = ()

    def phase(self, name: str):
        return _noop_cm()

    def to_dict(self) -> dict:
        return {}

    def render(self) -> str:
        return ""


NULL_TIMER = _NullTimer()
