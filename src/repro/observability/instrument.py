"""The instrumentation facade the engine talks to.

One :class:`Instrumentation` bundles a :class:`MetricsRegistry`, an
event sink and a :class:`PhaseTimer`.  The engine holds exactly one
(:data:`NULL_INSTRUMENTATION` by default) and guards every emit point
with the precomputed ``enabled`` flag, so the disabled path costs one
attribute read per guard and never allocates an event object.

Typed emit helpers keep the call sites one line each: the helper
updates the per-(rule, stratum, predicate) metrics and, only when a
real sink is attached, constructs and emits the event objects.

Every emitted event is stamped with the **trace-context envelope**
(``run_id`` / ``span_id`` / ``parent_span_id``) from this
instrumentation's :class:`~repro.observability.events.TraceContext`:
boundary pairs (run / stratum / iteration) open a span on the start
event and close it on the end event, point events carry the innermost
open span.  The :class:`PhaseTimer` shares the same context, so timing
spans and event spans interleave in one consistent tree.

When a ``heartbeat_interval`` is set, :meth:`maybe_heartbeat` (called
by the kernels at iteration boundaries) emits a periodic
:class:`~repro.observability.events.Heartbeat` and flushes the sink,
which is what keeps an attached ``repro tail`` live during a long
fixpoint.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.observability.events import (
    ConstraintViolated,
    FactDeleted,
    Heartbeat,
    IterationFinished,
    IterationStarted,
    ModuleRollback,
    OidInvented,
    PlanChosen,
    RuleFired,
    RunFinished,
    RunStarted,
    StratumFinished,
    StratumStarted,
    TraceContext,
    payload_header,
)
from repro.observability.metrics import (
    IndexStats,
    Labels,
    MetricsRegistry,
)
from repro.observability.sink import NULL_SINK, EventSink, MultiSink
from repro.observability.timing import NULL_TIMER, PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.step import RuleRuntime
    from repro.storage.factset import Fact

clock = time.perf_counter


class Instrumentation:
    """Metrics + event stream + phase timer for one engine run."""

    __slots__ = (
        "metrics", "sink", "timer", "index_stats", "source_file",
        "enabled", "emit_events", "iteration", "stratum", "_rule_meta",
        "trace", "heartbeat_interval", "_heartbeat_last",
        "_run_started_at", "_run_span", "_stratum_span", "_iter_span",
    )

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        source_file: str | None = None,
        trace: TraceContext | None = None,
        heartbeat_interval: float | None = None,
    ):
        self.metrics = metrics
        self.sink = sink if sink is not None else NULL_SINK
        self.emit_events = self.sink is not NULL_SINK
        self.enabled = metrics is not None or self.emit_events
        self.trace = (
            trace if trace is not None
            else TraceContext() if self.enabled else None
        )
        self.timer: Any = (
            PhaseTimer(self.trace) if self.enabled else NULL_TIMER
        )
        self.index_stats = IndexStats()
        self.source_file = source_file
        self.iteration = 0
        self.stratum: int | None = None
        self.heartbeat_interval = heartbeat_interval
        self._heartbeat_last = 0.0
        self._run_started_at = clock()
        self._run_span: str | None = None
        self._stratum_span: str | None = None
        self._iter_span: str | None = None
        # per-rule cached (labels, repr, line, column)
        self._rule_meta: dict[int, tuple[Labels, str, int | None,
                                         int | None]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, source_file: str | None = None) -> "Instrumentation":
        """Metrics-only instrumentation (what ``repro profile`` uses)."""
        return cls(MetricsRegistry(), source_file=source_file)

    def with_extra_sink(self, sink) -> "Instrumentation":
        """A copy that also feeds ``sink``, sharing metrics, timer and
        trace context (so both streams stamp one consistent span tree)."""
        out = Instrumentation(
            self.metrics, source_file=self.source_file,
            trace=self.trace, heartbeat_interval=self.heartbeat_interval,
        )
        out.sink = (
            MultiSink([self.sink, sink])
            if self.sink is not NULL_SINK else sink
        )
        out.emit_events = True
        out.enabled = True
        if out.trace is None:
            out.trace = TraceContext()
        out.timer = self.timer if self.timer is not NULL_TIMER \
            else PhaseTimer(out.trace)
        out.index_stats = self.index_stats
        out._rule_meta = self._rule_meta
        return out

    def phase(self, name: str):
        """Nested timing span (no-op context manager when disabled)."""
        return self.timer.phase(name)

    # ------------------------------------------------------------------
    # emit helpers (call only when ``enabled``)
    # ------------------------------------------------------------------
    def _meta(self, runtime: "RuleRuntime"):
        meta = self._rule_meta.get(runtime.index)
        if meta is None:
            span = runtime.rule.span
            meta = (
                (("rule", str(runtime.index)),),
                repr(runtime.rule),
                span.line if span else None,
                span.column if span else None,
            )
            self._rule_meta[runtime.index] = meta
        return meta

    def _point(self) -> tuple[str | None, str | None, str | None]:
        """``(run_id, span_id, parent)`` for a point event."""
        t = self.trace
        if t is None:
            return None, None, None
        span_id, parent = t.current()
        return t.run_id, span_id, parent

    def run_started(self, semantics: str, n_rules: int) -> None:
        self._run_started_at = clock()
        self._heartbeat_last = self._run_started_at
        if self.emit_events:
            t = self.trace
            span_id, parent = t.start_span()
            self._run_span = span_id
            self.sink.emit(RunStarted(
                semantics=semantics, rules=n_rules,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def run_finished(self, iterations: int, facts: int, inventions: int,
                     elapsed: float) -> None:
        m = self.metrics
        if m is not None:
            st = self.index_stats
            m.inc("factset_index_hits", amount=st.hits)
            m.inc("factset_index_misses", amount=st.misses)
            m.inc("factset_index_builds", amount=st.builds)
            st.hits = st.misses = st.builds = 0
            m.set_gauge("run_iterations", value=iterations)
            m.set_gauge("run_facts", value=facts)
            m.set_gauge("run_inventions", value=inventions)
            m.observe("run_time", value=elapsed)
            fold = getattr(self.sink, "fold_metrics", None)
            if fold is not None:
                fold(m)
        if self.emit_events:
            t = self.trace
            if self._run_span is not None:
                span_id, parent = t.end_span_until(self._run_span)
                self._run_span = None
            else:
                span_id, parent = t.current()
            self.sink.emit(RunFinished(
                iterations=iterations, facts=facts,
                inventions=inventions, elapsed=elapsed,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def stratum_started(self, index: int, n_rules: int) -> None:
        self.stratum = index
        if self.metrics is not None:
            self.metrics.set_gauge(
                "stratum_rules", (("stratum", str(index)),), n_rules
            )
        if self.emit_events:
            t = self.trace
            span_id, parent = t.start_span()
            self._stratum_span = span_id
            self.sink.emit(StratumStarted(
                index=index, rules=n_rules,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def stratum_finished(self, index: int, elapsed: float) -> None:
        self.stratum = None
        if self.metrics is not None:
            self.metrics.observe(
                "stratum_time", (("stratum", str(index)),), elapsed
            )
        if self.emit_events:
            t = self.trace
            if self._stratum_span is not None:
                span_id, parent = t.end_span_until(self._stratum_span)
                self._stratum_span = None
            else:
                span_id, parent = t.current()
            self.sink.emit(StratumFinished(
                index=index, elapsed=elapsed,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def iteration_started(self, number: int) -> None:
        self.iteration = number
        if self.emit_events:
            t = self.trace
            span_id, parent = t.start_span()
            self._iter_span = span_id
            self.sink.emit(IterationStarted(
                number=number,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def iteration_finished(self, number: int, elapsed: float) -> None:
        if self.metrics is not None:
            self.metrics.observe("iteration_time", value=elapsed)
        if self.emit_events:
            t = self.trace
            if self._iter_span is not None:
                span_id, parent = t.end_span_until(self._iter_span)
                self._iter_span = None
            else:
                span_id, parent = t.current()
            self.sink.emit(IterationFinished(
                number=number, elapsed=elapsed,
                run_id=t.run_id, span_id=span_id, parent_span_id=parent,
            ))

    def maybe_heartbeat(self, facts: int, inventions: int = 0) -> None:
        """Emit a :class:`Heartbeat` when the cadence interval elapsed.

        Called by the kernels at iteration boundaries; cheap when the
        interval has not passed (one clock read).  Every heartbeat also
        flushes the sink so a live ``repro tail`` sees current state."""
        interval = self.heartbeat_interval
        if interval is None or not self.emit_events:
            return
        now = clock()
        if now - self._heartbeat_last < interval:
            return
        self._heartbeat_last = now
        run_id, span_id, parent = self._point()
        self.sink.emit(Heartbeat(
            iteration=self.iteration, stratum=self.stratum,
            facts=facts, inventions=inventions,
            elapsed=now - self._run_started_at,
            run_id=run_id, span_id=span_id, parent_span_id=parent,
        ))
        self.flush()

    def rule_fired(
        self,
        runtime: "RuleRuntime",
        contributed: list["Fact"],
        bindings,
        deleted: bool,
    ) -> None:
        """One body valuation reached the head: record its contribution."""
        rule_labels, rule_repr, line, column = self._meta(runtime)
        m = self.metrics
        if m is not None:
            m.inc("rule_valuations", rule_labels)
            if contributed:
                m.inc("rule_valuations_matched", rule_labels)
                m.inc("rule_fires", rule_labels, len(contributed))
                name = ("rule_facts_deleted" if deleted
                        else "rule_facts_derived")
                m.inc(name, rule_labels, len(contributed))
                for fact in contributed:
                    m.inc("pred_facts_contributed",
                          (("pred", fact.pred),))
            else:
                m.inc("rule_duplicates", rule_labels)
        if self.emit_events and contributed:
            cls = FactDeleted if deleted else RuleFired
            run_id, span_id, parent = self._point()
            for fact in contributed:
                self.sink.emit(cls(
                    rule_index=runtime.index,
                    rule=rule_repr,
                    pred=fact.pred,
                    fact=repr(fact),
                    iteration=self.iteration,
                    file=self.source_file,
                    line=line,
                    column=column,
                    run_id=run_id,
                    span_id=span_id,
                    parent_span_id=parent,
                    fact_value=fact,
                    rule_value=runtime.rule,
                    bindings_value=bindings,
                ))

    def rule_evaluated(self, runtime: "RuleRuntime",
                       elapsed: float) -> None:
        """Wall time one rule spent in one full body+head evaluation."""
        if self.metrics is not None:
            rule_labels = self._meta(runtime)[0]
            self.metrics.observe("rule_time", rule_labels, elapsed)

    def invention(self, runtime: "RuleRuntime", oid) -> None:
        rule_labels, rule_repr, line, column = self._meta(runtime)
        if self.metrics is not None:
            self.metrics.inc("rule_inventions", rule_labels)
        if self.emit_events:
            run_id, span_id, parent = self._point()
            self.sink.emit(OidInvented(
                rule_index=runtime.index, rule=rule_repr, oid=repr(oid),
                iteration=self.iteration, file=self.source_file,
                line=line, column=column,
                run_id=run_id, span_id=span_id, parent_span_id=parent,
            ))

    def plan_chosen(self, plan) -> None:
        """The planner fixed literal orders (:mod:`repro.engine.planner`)."""
        if self.metrics is not None:
            labels = (("semantics", plan.semantics),) if plan.stratum is None \
                else (("semantics", plan.semantics),
                      ("stratum", str(plan.stratum)))
            self.metrics.inc("plans_built", labels)
            self.metrics.inc(
                "plan_rules_reordered", labels,
                sum(1 for r in plan.rules if r.reordered),
            )
            self.metrics.inc(
                "plan_rules_fallback", labels,
                sum(1 for r in plan.rules if r.fallback is not None),
            )
        if self.emit_events:
            run_id, span_id, parent = self._point()
            self.sink.emit(PlanChosen(
                semantics=plan.semantics,
                stratum=plan.stratum,
                rules=len(plan.rules),
                plan=plan.to_dict(),
                run_id=run_id, span_id=span_id, parent_span_id=parent,
            ))

    def module_rollback(self, module: str, mode: str, reason: str,
                        error: str, restored: bool = True) -> None:
        """A transactional module application rolled back to its
        savepoint (:mod:`repro.modules.txn`)."""
        if self.metrics is not None:
            self.metrics.inc("module_rollbacks", (("mode", mode),))
        if self.emit_events:
            run_id, span_id, parent = self._point()
            self.sink.emit(ModuleRollback(
                module=module, mode=mode, reason=reason,
                error=error, restored=restored,
                run_id=run_id, span_id=span_id, parent_span_id=parent,
            ))

    def constraint_violation(self, violation) -> None:
        if self.metrics is not None:
            self.metrics.inc(
                "constraint_violations",
                (("kind", violation.kind),),
            )
        if self.emit_events:
            run_id, span_id, parent = self._point()
            self.sink.emit(ConstraintViolated(
                violation_kind=violation.kind,
                predicate=violation.predicate,
                message=violation.message,
                fact=repr(violation.fact)
                if violation.fact is not None else None,
                run_id=run_id, span_id=span_id, parent_span_id=parent,
                violation_value=violation,
            ))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump of everything this instrumentation captured."""
        out = payload_header("metrics-snapshot")
        out["metrics"] = (self.metrics.snapshot()
                          if self.metrics is not None else {})
        out["phases"] = self.timer.to_dict()
        if self.trace is not None:
            out["run_id"] = self.trace.run_id
        timeseries = getattr(self.metrics, "timeseries_snapshot", None)
        if timeseries is not None:
            out["timeseries"] = timeseries()
        return out

    def flush(self) -> None:
        """Push buffered sink output out — heartbeat cadence and the
        resource-guard breach path both route through here."""
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


NULL_INSTRUMENTATION = Instrumentation()
