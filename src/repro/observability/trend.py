"""The perf-telemetry store: ``BENCH_*.json`` history as time series.

Every benchmark session — the pytest suite via ``benchmarks/conftest``
and every ``repro bench`` matrix sweep — appends schema-versioned rows
to ``BENCH_<exp>.json`` files at the repo root.  This module is the one
reader and writer of that history:

* :func:`read_bench_rows` — **tolerant** ingestion: malformed lines,
  non-row payloads and wrong-``schema_version`` rows are skipped with a
  rendered warning instead of a traceback, so one corrupt line never
  takes down the gate;
* :func:`append_bench_rows` — the shared deduplicating append: a
  trailing session block whose rows are all superseded by the new
  session is replaced instead of stacked, and unparseable lines already
  in the file are preserved verbatim;
* :class:`TrendStore` — all historical rows folded into per-
  ``(exp, name, config)`` series, each backed by a
  :class:`~repro.observability.timeseries.StreamingHistogram` of its
  min-times, so quantiles come from the PR 8 streaming machinery
  rather than per-sample storage;
* :func:`find_regressions` / :func:`trend_report` — the trend gate:
  a series regresses when its latest min-time exceeds the rolling
  median of the preceding window by more than ``threshold`` *and* by
  more than ``min_time_ms`` absolute (the same two-sided rule
  ``repro diff`` applies to per-rule timings, with wider defaults
  because cross-session noise dwarfs within-run noise);
* :func:`render_trend_text` / :func:`trend_prometheus` — the human and
  scrape renderings behind ``repro bench report``.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from dataclasses import dataclass, field

from repro.observability.events import (
    SCHEMA_VERSION,
    new_run_id,
    payload_header,
)
from repro.observability.timeseries import (
    StreamingHistogram,
    StreamingMetrics,
    render_prometheus,
)

BENCH_KIND = "bench-row"
TREND_KIND = "bench-trend"

#: trend-gate defaults: wider than ``repro diff``'s within-run rule
#: (0.25 / 1 ms) because points in one series come from different
#: sessions — possibly days apart on a differently loaded machine
DEFAULT_THRESHOLD = 0.5
DEFAULT_MIN_TIME_MS = 5.0
#: how many *prior* points feed the rolling median baseline
DEFAULT_WINDOW = 5
#: a series shorter than this never flags (no baseline to trust)
DEFAULT_MIN_POINTS = 3


def series_key(row: dict) -> tuple:
    """What makes two rows one time series: experiment, benchmark name
    and the exact engine configuration measured."""
    return (
        row.get("exp"),
        row.get("name"),
        json.dumps(row.get("config"), sort_keys=True),
    )


# ---------------------------------------------------------------------------
# tolerant ingestion
# ---------------------------------------------------------------------------
def parse_bench_line(line: str, where: str) -> tuple[dict | None, str | None]:
    """``(row, warning)`` for one history line — exactly one is set.

    A row is accepted when it parses to a dict whose ``schema_version``
    is absent (pre-header history) or <= ours and whose ``kind`` is
    absent or :data:`BENCH_KIND`; anything else yields a warning string.
    """
    try:
        row = json.loads(line)
    except ValueError as exc:
        return None, f"{where}: unparseable row skipped ({exc})"
    if not isinstance(row, dict):
        return None, f"{where}: non-object row skipped"
    version = row.get("schema_version")
    if version is not None and (
        not isinstance(version, int) or version > SCHEMA_VERSION
    ):
        return None, (
            f"{where}: schema_version {version!r} row skipped"
            f" (this build reads up to {SCHEMA_VERSION})"
        )
    kind = row.get("kind")
    if kind is not None and kind != BENCH_KIND:
        return None, f"{where}: kind {kind!r} row skipped"
    if not isinstance(row.get("min_ms"), (int, float)):
        return None, f"{where}: row without numeric min_ms skipped"
    return row, None


def read_bench_rows(path) -> tuple[list[dict], list[str]]:
    """All ingestible rows of one ``BENCH_*.json`` file plus the
    warnings for every line that was skipped."""
    path = pathlib.Path(path)
    rows: list[dict] = []
    warnings: list[str] = []
    if not path.exists():
        return rows, warnings
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            row, warning = parse_bench_line(
                line, f"{path.name}:{lineno}")
            if row is not None:
                rows.append(row)
            else:
                warnings.append(warning)
    return rows, warnings


# ---------------------------------------------------------------------------
# deduplicating append
# ---------------------------------------------------------------------------
def append_bench_rows(path, rows: list[dict]) -> pathlib.Path:
    """Append one session's rows to ``path``, superseding that same
    session's earlier measurements of the same series.

    Appending is idempotent *within* a session: an existing row whose
    ``(series, session)`` pair is re-measured by the new batch is
    dropped (and duplicate keys within the batch collapse to the last
    row), so re-running a suite or a matrix in one session keeps one
    row per cell instead of stacking.  Rows from **other** sessions are
    history — they always stack; that accumulation is what the
    :class:`TrendStore` trends over.  Lines that do not parse as bench
    rows are preserved verbatim (ingestion warns about them; appending
    never destroys them).
    """
    path = pathlib.Path(path)
    deduped: dict[tuple, dict] = {}
    for row in rows:
        deduped[series_key(row)] = row
    new_rows = list(deduped.values())
    superseded = {
        (series_key(row), row.get("session")) for row in new_rows
    }

    kept_lines: list[str] = []
    if path.exists():
        with open(path, encoding="utf-8") as f:
            for line in f:
                if not line.strip():
                    continue
                row, _ = parse_bench_line(line, path.name)
                if row is not None and (
                    series_key(row), row.get("session")
                ) in superseded:
                    continue
                kept_lines.append(line.rstrip("\n"))
    with open(path, "w", encoding="utf-8") as f:
        for line in kept_lines:
            f.write(line + "\n")
        for row in new_rows:
            f.write(json.dumps(row, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------
@dataclass
class TrendSeries:
    """One benchmark's history under one engine configuration."""

    exp: str
    name: str
    config: dict | None
    #: ``(ts, session, min_ms)`` in file order — file order *is* time
    #: order for an append-only history
    points: list[tuple[float, str | None, float]] = field(
        default_factory=list)
    #: streaming quantiles over every min-time (seconds)
    hist: StreamingHistogram = field(default_factory=StreamingHistogram)

    def add(self, row: dict) -> None:
        min_ms = float(row["min_ms"])
        self.points.append(
            (float(row.get("ts") or 0.0), row.get("session"), min_ms))
        self.hist.observe(min_ms / 1000.0)

    @property
    def latest_ms(self) -> float:
        return self.points[-1][2]

    def baseline_ms(self, window: int) -> float | None:
        """Median min-time of up to ``window`` points preceding the
        latest; None when the series has no prior points."""
        prior = [ms for _, _, ms in self.points[:-1]][-window:]
        if not prior:
            return None
        return statistics.median(prior)

    def to_dict(self, window: int = DEFAULT_WINDOW) -> dict:
        baseline = self.baseline_ms(window)
        return {
            "exp": self.exp,
            "name": self.name,
            "config": self.config,
            "points": len(self.points),
            "latest_ms": self.latest_ms,
            "baseline_ms": baseline,
            "min_ms": (self.hist.min * 1000.0 if self.hist.count
                       else 0.0),
            "p50_ms": self.hist.quantile(0.5) * 1000.0,
            "p95_ms": self.hist.quantile(0.95) * 1000.0,
        }


class TrendStore:
    """Every historical bench row, folded into per-series state."""

    def __init__(self):
        self.series: dict[tuple, TrendSeries] = {}
        self.warnings: list[str] = []
        self.sources: list[pathlib.Path] = []

    def add_row(self, row: dict) -> None:
        key = series_key(row)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TrendSeries(
                exp=str(row.get("exp") or "ungrouped"),
                name=str(row.get("name") or "?"),
                config=row.get("config"),
            )
        series.add(row)

    @classmethod
    def load(cls, root) -> "TrendStore":
        """Ingest every ``BENCH_*.json`` under ``root`` (sorted, so the
        store is deterministic for a given tree)."""
        store = cls()
        root = pathlib.Path(root)
        for path in sorted(root.glob("BENCH_*.json")):
            rows, warnings = read_bench_rows(path)
            store.sources.append(path)
            store.warnings.extend(warnings)
            for row in rows:
                store.add_row(row)
        return store

    def ordered(self) -> list[TrendSeries]:
        return [self.series[k] for k in sorted(
            self.series, key=lambda k: (k[0] or "", k[1] or "", k[2]))]


# ---------------------------------------------------------------------------
# the trend gate
# ---------------------------------------------------------------------------
@dataclass
class TrendFlag:
    """One flagged series: latest vs rolling-median baseline."""

    series: TrendSeries
    latest_ms: float
    baseline_ms: float

    @property
    def ratio(self) -> float:
        return (self.latest_ms / self.baseline_ms
                if self.baseline_ms else float("inf"))

    def to_dict(self) -> dict:
        return {
            "exp": self.series.exp,
            "name": self.series.name,
            "config": self.series.config,
            "latest_ms": self.latest_ms,
            "baseline_ms": self.baseline_ms,
            "ratio": self.ratio,
            "points": len(self.series.points),
        }


def find_regressions(
    store: TrendStore,
    threshold: float = DEFAULT_THRESHOLD,
    min_time_ms: float = DEFAULT_MIN_TIME_MS,
    window: int = DEFAULT_WINDOW,
    min_points: int = DEFAULT_MIN_POINTS,
) -> list[TrendFlag]:
    """Series whose latest point regressed against its own history.

    The two-sided rule of ``repro diff``: a series flags only when the
    latest min-time is both ``1 + threshold`` times the rolling median
    of the preceding ``window`` points *and* more than ``min_time_ms``
    above it — microbenchmark jitter cannot trip the ratio, and a real
    slowdown cannot hide under the floor.
    """
    flags: list[TrendFlag] = []
    for series in store.ordered():
        if len(series.points) < max(2, min_points):
            continue
        baseline = series.baseline_ms(window)
        if baseline is None:
            continue
        latest = series.latest_ms
        if (latest > baseline * (1 + threshold)
                and latest - baseline > min_time_ms):
            flags.append(TrendFlag(series, latest, baseline))
    flags.sort(key=lambda f: f.ratio, reverse=True)
    return flags


def trend_report(
    store: TrendStore,
    threshold: float = DEFAULT_THRESHOLD,
    min_time_ms: float = DEFAULT_MIN_TIME_MS,
    window: int = DEFAULT_WINDOW,
    min_points: int = DEFAULT_MIN_POINTS,
) -> dict:
    """The ``repro bench report`` JSON payload: versioned header,
    trace-context run id, per-series summaries, flagged regressions and
    every ingestion warning."""
    flags = find_regressions(store, threshold, min_time_ms, window,
                             min_points)
    out = payload_header(TREND_KIND)
    out.update({
        "run_id": new_run_id(),
        "sources": [p.name for p in store.sources],
        "thresholds": {
            "threshold": threshold,
            "min_time_ms": min_time_ms,
            "window": window,
            "min_points": min_points,
        },
        "series": [s.to_dict(window) for s in store.ordered()],
        "regressions": [f.to_dict() for f in flags],
        "warnings": list(store.warnings),
    })
    return out


def render_trend_text(report: dict) -> str:
    """Human rendering of a :func:`trend_report` payload."""
    lines: list[str] = []
    thresholds = report.get("thresholds", {})
    series = report.get("series", [])
    lines.append(
        f"bench trends: {len(series)} series from "
        + (", ".join(report.get("sources", [])) or "no history")
    )
    for warning in report.get("warnings", []):
        lines.append(f"  warning: {warning}")
    for row in series:
        config = row.get("config") or {}
        kernel = config.get("kernel", "-") if isinstance(config, dict) \
            else "-"
        baseline = row.get("baseline_ms")
        baseline_txt = (f"{baseline:9.2f}" if baseline is not None
                        else "        -")
        lines.append(
            f"  {row['exp']:<10} {row['name']:<28} {kernel:<12}"
            f" n={row['points']:<3} latest {row['latest_ms']:9.2f} ms"
            f"  median {baseline_txt} ms  p95 {row['p95_ms']:9.2f} ms"
        )
    regressions = report.get("regressions", [])
    if regressions:
        lines.append(
            f"TREND REGRESSIONS ({len(regressions)}) — latest vs"
            f" rolling median, threshold"
            f" {thresholds.get('threshold', 0):+.0%}, floor"
            f" {thresholds.get('min_time_ms', 0):g} ms:"
        )
        for flag in regressions:
            config = flag.get("config") or {}
            kernel = config.get("kernel", "-") \
                if isinstance(config, dict) else "-"
            lines.append(
                f"  {flag['exp']}/{flag['name']} [{kernel}]:"
                f" {flag['baseline_ms']:.2f} ms -> "
                f"{flag['latest_ms']:.2f} ms ({flag['ratio']:.2f}x)"
            )
    else:
        lines.append("no trend regressions.")
    return "\n".join(lines) + "\n"


def trend_prometheus(store: TrendStore,
                     window: int = DEFAULT_WINDOW) -> str:
    """The store as a Prometheus exposition: per-series latest/baseline
    gauges plus the full streaming min-time histograms."""
    registry = StreamingMetrics()
    for series in store.ordered():
        config = series.config if isinstance(series.config, dict) else {}
        labels = (
            ("exp", series.exp),
            ("name", series.name),
            ("kernel", str(config.get("kernel", ""))),
            ("semantics", str(config.get("semantics", ""))),
        )
        registry.set_gauge("bench_latest_ms", labels, series.latest_ms)
        baseline = series.baseline_ms(window)
        if baseline is not None:
            registry.set_gauge("bench_baseline_ms", labels, baseline)
        for _, _, min_ms in series.points:
            registry.observe("bench_min_time_seconds", labels,
                             min_ms / 1000.0)
    return render_prometheus(registry)
