"""``repro tail``: attach to a telemetry stream and render it live.

Three transports, auto-detected from PATH:

* a **Unix socket** (what ``repro run --telemetry-listen PATH`` serves)
  — connect, stream NDJSON until the server closes at end of run;
* a **growing JSONL file** with ``--follow`` — poll like ``tail -f``
  (the :class:`~repro.observability.telemetry_server.FollowFileSink`
  fallback transport, or any ``--trace-out`` file of a live run);
* a **recorded JSONL file** without ``--follow`` — replay to EOF, which
  turns ``repro tail events.jsonl`` into a post-hoc stream summarizer.

Two renderings:

* ``--format json`` re-emits the (kind-filtered) events verbatim, one
  JSON object per line — machine consumers (the CI smoke job) pipe this
  through a schema check;
* ``--format text`` (default) renders a live per-stratum / per-rule
  view: one line per structural event, heartbeat progress lines while a
  fixpoint grinds, per-rule fire counts on stratum/run end.
"""

from __future__ import annotations

import json
import os
import socket
import stat
import sys
import time
from dataclasses import dataclass, field


@dataclass
class _RuleStats:
    fires: int = 0
    deletions: int = 0
    inventions: int = 0
    rule: str = ""


@dataclass
class TailView:
    """Streaming per-stratum / per-rule aggregation of one event feed.

    Feed events (as dicts) through :meth:`line`; each call returns the
    text to print for that event, or ``None`` for events that only
    update the aggregate (individual rule fires).
    """

    rules: dict[int, _RuleStats] = field(default_factory=dict)
    strata: dict[int, dict[int, _RuleStats]] = field(default_factory=dict)
    stratum: int | None = None
    run_id: str | None = None
    events: int = 0

    def _bump(self, payload: dict, attr: str) -> None:
        index = payload.get("rule_index", -1)
        for table in (self.rules, self.strata.setdefault(
                self.stratum if self.stratum is not None else -1, {})):
            entry = table.setdefault(index, _RuleStats())
            setattr(entry, attr, getattr(entry, attr) + 1)
            if not entry.rule:
                entry.rule = payload.get("rule", "")

    def _rule_summary(self, table: dict[int, _RuleStats]) -> str:
        parts = []
        for index in sorted(table):
            entry = table[index]
            detail = f"r{index}={entry.fires}"
            if entry.deletions:
                detail += f"/-{entry.deletions}"
            if entry.inventions:
                detail += f"/&{entry.inventions}"
            parts.append(detail)
        return " ".join(parts) if parts else "-"

    # ------------------------------------------------------------------
    def line(self, payload: dict) -> str | None:
        kind = payload.get("event")
        self.events += 1
        if kind == "stream-header":
            source = payload.get("source_file") or "<unknown>"
            return f"● stream from {source}"
        if kind == "run-start":
            self.run_id = payload.get("run_id")
            run = f" {self.run_id}" if self.run_id else ""
            return (f"▶ run{run}: semantics={payload.get('semantics')}"
                    f" rules={payload.get('rules')}")
        if kind == "plan":
            where = payload.get("stratum")
            scope = f" stratum {where}" if where is not None else ""
            return f"  plan chosen{scope}: {payload.get('rules')} rule(s)"
        if kind == "stratum-start":
            self.stratum = payload.get("index")
            return (f"▷ stratum {self.stratum}:"
                    f" {payload.get('rules')} rule(s)")
        if kind == "stratum-end":
            index = payload.get("index")
            table = self.strata.get(index if index is not None else -1, {})
            self.stratum = None
            return (f"◁ stratum {index} done in"
                    f" {1000 * payload.get('elapsed', 0.0):.1f} ms —"
                    f" {self._rule_summary(table)}")
        if kind == "heartbeat":
            where = (f" stratum {payload.get('stratum')}"
                     if payload.get("stratum") is not None else "")
            return (f"  ♥{where} iter {payload.get('iteration')}"
                    f" · facts {payload.get('facts')}"
                    f" · oids {payload.get('inventions')}"
                    f" · {payload.get('elapsed', 0.0):.1f}s")
        if kind == "rule-fire":
            self._bump(payload, "fires")
            return None
        if kind == "deletion":
            self._bump(payload, "deletions")
            return None
        if kind == "invention":
            self._bump(payload, "inventions")
            return None
        if kind == "constraint-violation":
            return (f"✗ violation [{payload.get('violation_kind')}]"
                    f" {payload.get('predicate')}:"
                    f" {payload.get('message')}")
        if kind == "module-rollback":
            return (f"↩ module {payload.get('module')} rolled back"
                    f" ({payload.get('reason')})")
        if kind == "run-end":
            return (f"■ run done: {payload.get('iterations')} iteration(s),"
                    f" {payload.get('facts')} fact(s),"
                    f" {payload.get('inventions')} invented oid(s),"
                    f" {1000 * payload.get('elapsed', 0.0):.1f} ms —"
                    f" {self._rule_summary(self.rules)}")
        if kind in ("iteration-start", "iteration-end"):
            return None  # heartbeats carry the useful cadence
        return None


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
def _is_socket(path: str) -> bool:
    try:
        return stat.S_ISSOCK(os.stat(path).st_mode)
    except OSError:
        return False


def _iter_socket(path: str, connect_timeout: float):
    """Lines from a telemetry socket; retries the connect until the
    server is up (a tail launched alongside the run wins the race)."""
    deadline = time.monotonic() + connect_timeout
    sock = None
    while True:
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(path)
            break
        except OSError:
            if sock is not None:
                sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
    with sock, sock.makefile("r", encoding="utf-8") as stream:
        yield from stream


def _iter_file(path: str, follow: bool, poll: float = 0.1):
    """Lines from a JSONL file; with ``follow``, poll for growth until a
    ``run-end`` line arrives (the writer's end-of-stream marker)."""
    with open(path, encoding="utf-8") as stream:
        buffered = ""
        while True:
            chunk = stream.readline()
            if chunk:
                buffered += chunk
                if not buffered.endswith("\n"):
                    continue  # partial line: writer mid-flush
                line = buffered
                buffered = ""
                yield line
                if follow and '"event": "run-end"' in line:
                    return
                continue
            if not follow:
                return
            time.sleep(poll)


def iter_stream(path: str, follow: bool = False,
                connect_timeout: float = 10.0):
    """NDJSON lines from whatever transport ``path`` turns out to be.

    A path that does not exist yet is waited for (up to
    ``connect_timeout``): a tail launched just before its run must win
    the race against the server creating the socket."""
    deadline = time.monotonic() + connect_timeout
    while not os.path.exists(path) and time.monotonic() < deadline:
        time.sleep(0.05)
    if _is_socket(path):
        return _iter_socket(path, connect_timeout)
    return _iter_file(path, follow)


def tail_stream(path: str, out=None, format: str = "text",
                kinds: list[str] | None = None, follow: bool = False,
                connect_timeout: float = 10.0) -> int:
    """The ``repro tail`` driver; returns the process exit code."""
    out = out if out is not None else sys.stdout
    wanted = frozenset(kinds) if kinds else None
    view = TailView()
    try:
        stream = iter_stream(path, follow=follow,
                             connect_timeout=connect_timeout)
        for raw in stream:
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                print(f"tail: skipping malformed line: {raw[:80]}",
                      file=sys.stderr)
                continue
            if wanted is not None and payload.get("event") not in wanted:
                continue
            if format == "json":
                print(json.dumps(payload, sort_keys=True), file=out,
                      flush=True)
            else:
                line = view.line(payload)
                if line is not None:
                    print(line, file=out, flush=True)
    except FileNotFoundError:
        print(f"error: no telemetry stream at {path}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0  # downstream consumer (e.g. `| head`) closed stdout
    except OSError as exc:
        print(f"error: cannot attach to {path}: {exc}", file=sys.stderr)
        return 2
    if format == "text" and view.events == 0:
        print("tail: stream ended with no events", file=sys.stderr)
    return 0
