"""The in-process telemetry bus: bounded pub/sub over engine events.

One :class:`EventBus` sits between the instrumentation and everything
that wants the event stream.  It is itself an
:class:`~repro.observability.sink.EventSink`, so the engine publishes
through the exact same ``sink.emit(event)`` seam it always had; fan-out
happens on the bus:

* **attached sinks** — the classic sinks (JSONL file, text, tracer,
  collector) subscribe with an optional :class:`EventFilter` and are
  delivered to synchronously at publish time.  They are in-process
  writers with no queue, so they can never drop.
* **subscriptions** — bounded ring-buffer queues
  (:class:`BusSubscription`) consumed by *other threads*: the telemetry
  server's client writers, tests, future parallel-kernel collectors.  A
  slow consumer loses the **oldest** queued events, one by one, and
  every loss is counted — ``dropped`` per subscription, surfaced as the
  ``bus_dropped_events{subscriber=...}`` counter when the bus folds its
  stats into a metrics registry.
* **retention ring** — the bus keeps the last ``retain`` events, and a
  new subscription may ``replay`` them, so ``repro tail`` attaching
  mid-run still sees the run-start/plan/stratum context it missed.

Publishing takes one lock acquisition (snapshot of the subscriber
lists + ring append + per-subscription offers); synchronous sink writes
happen outside the lock, so a blocking file write never stalls a
concurrent subscriber's poll.  The engine side stays allocation-free
when disabled — the bus only exists once telemetry is requested.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.observability.events import EngineEvent
from repro.observability.sink import EventSink

#: default retention-ring size: enough for run/plan/stratum context plus
#: a few iterations of rule events, small enough to never matter
DEFAULT_RETAIN = 256
#: default per-subscription queue bound
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class EventFilter:
    """Per-subscriber selection: by event kind, rule index and stratum.

    ``None`` means "no constraint".  Rule filtering matches events that
    carry a ``rule_index``; stratum filtering matches stratum boundary
    events and any event carrying a ``stratum`` field (heartbeats,
    plans) — events without the dimension pass a ``rules``/``strata``
    filter only when they are structural (run/stream/stratum/iteration
    boundaries), so a rule-filtered tail still sees the run skeleton.
    """

    kinds: frozenset[str] | None = None
    rules: frozenset[int] | None = None
    strata: frozenset[int] | None = None

    _STRUCTURAL = frozenset({
        "stream-header", "run-start", "run-end", "stratum-start",
        "stratum-end", "iteration-start", "iteration-end", "heartbeat",
        "plan",
    })

    def accepts(self, event: EngineEvent) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.rules is not None:
            rule_index = getattr(event, "rule_index", None)
            if rule_index is None:
                if event.kind not in self._STRUCTURAL:
                    return False
            elif rule_index not in self.rules:
                return False
        if self.strata is not None:
            stratum = getattr(event, "stratum", None)
            if stratum is None and event.kind.startswith("stratum"):
                stratum = getattr(event, "index", None)
            if stratum is None:
                if event.kind not in self._STRUCTURAL:
                    return False
            elif stratum not in self.strata:
                return False
        return True


def build_filter(kinds=None, rules=None, strata=None) -> EventFilter | None:
    """An :class:`EventFilter`, or ``None`` when nothing is constrained."""
    if not kinds and rules is None and strata is None:
        return None
    return EventFilter(
        kinds=frozenset(kinds) if kinds else None,
        rules=frozenset(rules) if rules is not None else None,
        strata=frozenset(strata) if strata is not None else None,
    )


class BusSubscription:
    """One bounded consumer queue on the bus.

    ``poll`` drains up to ``max_events`` without blocking; ``wait``
    blocks until at least one event is queued, the bus closes, or the
    timeout passes.  When the queue is full the *oldest* event is
    evicted (ring-buffer semantics: an attaching viewer wants the
    present, not the past) and ``dropped`` increments.
    """

    def __init__(self, bus: "EventBus", name: str,
                 capacity: int = DEFAULT_CAPACITY,
                 filter: EventFilter | None = None):
        self.bus = bus
        self.name = name
        self.capacity = max(1, capacity)
        self.filter = filter
        self.dropped = 0
        self.delivered = 0
        self.closed = False
        self._queue: deque[EngineEvent] = deque()
        # plain Lock, not the default RLock: this condition is on the
        # publish hot path and never re-entered
        self._ready = threading.Condition(threading.Lock())

    # -- producer side -------------------------------------------------
    def _offer(self, event: EngineEvent) -> None:
        if self.closed:
            return
        if self.filter is not None and not self.filter.accepts(event):
            return
        with self._ready:
            queue = self._queue
            if len(queue) >= self.capacity:
                queue.popleft()
                self.dropped += 1
            was_empty = not queue
            queue.append(event)
            self.delivered += 1
            # consumers only sleep on an empty queue (wait() re-checks
            # before blocking), so the empty->non-empty transition is
            # the only wake-up that matters — skipping the rest keeps
            # a drained-slowly subscriber off the publish hot path
            if was_empty:
                self._ready.notify_all()

    def _wake(self) -> None:
        with self._ready:
            self._ready.notify_all()

    # -- consumer side -------------------------------------------------
    def poll(self, max_events: int | None = None) -> list[EngineEvent]:
        """Drain queued events without blocking."""
        with self._ready:
            if max_events is None:
                out = list(self._queue)
                self._queue.clear()
            else:
                out = []
                while self._queue and len(out) < max_events:
                    out.append(self._queue.popleft())
            return out

    def wait(self, timeout: float | None = None) -> list[EngineEvent]:
        """Block until events arrive, the bus closes, or ``timeout``."""
        with self._ready:
            if not self._queue and not self.closed and not self.bus.closed:
                self._ready.wait(timeout)
            out = list(self._queue)
            self._queue.clear()
            return out

    @property
    def ended(self) -> bool:
        """True once no further events can arrive and the queue is dry."""
        with self._ready:
            return (self.closed or self.bus.closed) and not self._queue

    def close(self) -> None:
        self.closed = True
        self.bus._forget(self)
        self._wake()


class EventBus(EventSink):
    """Bounded in-process pub/sub for the engine event stream."""

    def __init__(self, retain: int = DEFAULT_RETAIN):
        self._lock = threading.Lock()
        self._ring: deque[EngineEvent] = deque(maxlen=max(0, retain))
        self._sinks: list[tuple[EventSink, EventFilter | None]] = []
        self._subs: list[BusSubscription] = []
        # immutable fan-out snapshots, rebuilt only when membership
        # changes: publish reads them without allocating per event
        self._sink_snapshot: tuple = ()
        self._sub_snapshot: tuple = ()
        self._sub_serial = 0
        self.published = 0
        #: attached sinks evicted after an emit/flush failure (a tail
        #: client disconnecting mid-write must never unwind into the
        #: publisher's run — docs/OBSERVABILITY.md)
        self.dropped_sinks = 0
        self.closed = False

    def _resnapshot(self) -> None:
        """Rebuild the fan-out snapshots (call under ``self._lock``)."""
        self._sink_snapshot = tuple(self._sinks)
        self._sub_snapshot = tuple(self._subs)

    # ------------------------------------------------------------------
    # producer side: the bus is an EventSink
    # ------------------------------------------------------------------
    def emit(self, event: EngineEvent) -> None:
        self.publish(event)

    def publish(self, event: EngineEvent) -> None:
        with self._lock:
            self.published += 1
            self._ring.append(event)
            sinks = self._sink_snapshot
            subs = self._sub_snapshot
        for sub in subs:
            sub._offer(event)
        for sink, filter in sinks:
            if filter is None or filter.accepts(event):
                try:
                    sink.emit(event)
                except (OSError, ValueError):
                    # BrokenPipeError (a disconnected tail client) or a
                    # closed stream: the sink is dead — evict it so one
                    # bad consumer cannot poison the producer's flush
                    # path, and count the eviction (visible telemetry)
                    self._evict_sink(sink)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def attach_sink(self, sink: EventSink,
                    filter: EventFilter | None = None) -> None:
        """Deliver to ``sink`` synchronously on every publish (no queue,
        no drops) — how the classic JSONL/text/tracer sinks ride the bus."""
        with self._lock:
            self._sinks.append((sink, filter))
            self._resnapshot()

    def subscribe(self, name: str | None = None,
                  capacity: int = DEFAULT_CAPACITY,
                  filter: EventFilter | None = None,
                  replay: bool = False) -> BusSubscription:
        """A new bounded queue fed from now on; ``replay`` pre-loads the
        retention ring so a late attacher sees recent context first."""
        with self._lock:
            self._sub_serial += 1
            sub = BusSubscription(
                self,
                name or f"subscriber-{self._sub_serial}",
                capacity=capacity,
                filter=filter,
            )
            backlog = tuple(self._ring) if replay else ()
            self._subs.append(sub)
            self._resnapshot()
        for event in backlog:
            sub._offer(event)
        return sub

    def _evict_sink(self, sink: EventSink) -> None:
        with self._lock:
            remaining = [(s, f) for s, f in self._sinks if s is not sink]
            if len(remaining) == len(self._sinks):
                return  # already evicted by a concurrent publisher
            self._sinks = remaining
            self.dropped_sinks += 1
            self._resnapshot()
        try:
            sink.close()
        except Exception:
            pass  # a dead sink's close must not raise either

    def _forget(self, sub: BusSubscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
                self._resnapshot()

    def recent(self) -> list[EngineEvent]:
        """The retention ring, oldest first."""
        with self._lock:
            return list(self._ring)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Publish/deliver/drop accounting, JSON-ready."""
        with self._lock:
            subs = tuple(self._subs)
            published = self.published
            n_sinks = len(self._sinks)
        return {
            "published": published,
            "sinks": n_sinks,
            "dropped_sinks": self.dropped_sinks,
            "subscribers": [
                {
                    "name": s.name,
                    "delivered": s.delivered,
                    "dropped": s.dropped,
                    "capacity": s.capacity,
                }
                for s in subs
            ],
        }

    def fold_metrics(self, metrics) -> None:
        """Surface the drop accounting as metrics: the explicit promise
        that lost telemetry is *visible* telemetry.  Called by the
        instrumentation at run end (duck-typed — any sink with a
        ``fold_metrics`` attribute gets folded)."""
        if metrics is None:
            return
        stats = self.stats()
        metrics.set_gauge("bus_published_events", value=stats["published"])
        metrics.set_gauge("bus_subscribers",
                          value=len(stats["subscribers"]))
        metrics.set_gauge("bus_dropped_sinks",
                          value=stats["dropped_sinks"])
        for entry in stats["subscribers"]:
            label = (("subscriber", entry["name"]),)
            metrics.set_gauge("bus_delivered_events", label,
                              entry["delivered"])
            metrics.set_gauge("bus_dropped_events", label,
                              entry["dropped"])

    # ------------------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            sinks = tuple(self._sinks)
            subs = tuple(self._subs)
        for sink, _ in sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                try:
                    flush()
                except (OSError, ValueError):
                    self._evict_sink(sink)
        for sub in subs:
            sub._wake()

    def close(self) -> None:
        """End of stream: close attached sinks, wake every subscriber.

        Subscriptions keep their queued events (a tail reader drains the
        remainder and then observes ``ended``)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            sinks = tuple(self._sinks)
            subs = tuple(self._subs)
        for sink, _ in sinks:
            try:
                sink.close()
            except (OSError, ValueError):
                self.dropped_sinks += 1
        for sub in subs:
            sub._wake()
