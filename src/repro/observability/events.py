"""The structured engine event stream.

Every observable engine action is one :class:`EngineEvent` dataclass:
run / stratum / iteration boundaries, rule firings, deletions, oid
inventions and constraint violations.  Events carry only JSON-able
fields (so a JSONL stream round-trips exactly through
:func:`event_to_dict` / :func:`event_from_dict`) plus optional *rich*
in-process references — the firing rule, the ground fact, the valuation
— which sinks like :class:`repro.engine.trace.Tracer` consume directly
and which are never serialized.

Rule-level events carry the :class:`repro.span.Span` threaded through
the parser, so a JSONL line points at the ``file:line:column`` of the
firing rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar

_RICH = {"fact_value", "rule_value", "bindings_value", "violation_value"}

#: version of every serialized observability payload — the JSONL event
#: stream (via :class:`StreamHeader`), the ``--metrics-out`` snapshot,
#: the profile JSON and the :class:`repro.observability.report.RunReport`
#: artifact.  Bump when a field changes meaning or disappears; consumers
#: (``repro diff``, the CI schema check) refuse payloads from the future.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class EngineEvent:
    """Base of all engine events; ``kind`` names the event type."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"event": self.kind}
        for f in fields(self):
            if f.name in _RICH:
                continue
            out[f.name] = getattr(self, f.name)
        return out

    def render(self) -> str:
        """One human-readable line (the text sink's format)."""
        detail = ", ".join(
            f"{k}={v}" for k, v in self.to_dict().items()
            if k != "event" and v is not None
        )
        return f"[{self.kind}] {detail}"


@dataclass(frozen=True)
class StreamHeader(EngineEvent):
    """First line of a serialized event stream: format version and
    provenance, so a JSONL file is self-describing."""

    kind: ClassVar[str] = "stream-header"
    schema_version: int = SCHEMA_VERSION
    source_file: str | None = None


@dataclass(frozen=True)
class RunStarted(EngineEvent):
    kind: ClassVar[str] = "run-start"
    semantics: str = ""
    rules: int = 0


@dataclass(frozen=True)
class RunFinished(EngineEvent):
    kind: ClassVar[str] = "run-end"
    iterations: int = 0
    facts: int = 0
    inventions: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class StratumStarted(EngineEvent):
    kind: ClassVar[str] = "stratum-start"
    index: int = 0
    rules: int = 0


@dataclass(frozen=True)
class StratumFinished(EngineEvent):
    kind: ClassVar[str] = "stratum-end"
    index: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class IterationStarted(EngineEvent):
    kind: ClassVar[str] = "iteration-start"
    number: int = 0


@dataclass(frozen=True)
class IterationFinished(EngineEvent):
    kind: ClassVar[str] = "iteration-end"
    number: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class RuleFired(EngineEvent):
    """One fact contributed to Δ⁺ by one rule valuation."""

    kind: ClassVar[str] = "rule-fire"
    rule_index: int = -1
    rule: str = ""
    pred: str = ""
    fact: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None
    fact_value: Any = field(default=None, repr=False, compare=False)
    rule_value: Any = field(default=None, repr=False, compare=False)
    bindings_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class FactDeleted(EngineEvent):
    """One fact contributed to Δ⁻ by a negated-head rule valuation."""

    kind: ClassVar[str] = "deletion"
    rule_index: int = -1
    rule: str = ""
    pred: str = ""
    fact: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None
    fact_value: Any = field(default=None, repr=False, compare=False)
    rule_value: Any = field(default=None, repr=False, compare=False)
    bindings_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class OidInvented(EngineEvent):
    kind: ClassVar[str] = "invention"
    rule_index: int = -1
    rule: str = ""
    oid: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None


@dataclass(frozen=True)
class ConstraintViolated(EngineEvent):
    kind: ClassVar[str] = "constraint-violation"
    violation_kind: str = ""
    predicate: str = ""
    message: str = ""
    fact: str | None = None
    violation_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class PlanChosen(EngineEvent):
    """The cost-based planner fixed literal orders for a rule set.

    ``plan`` is the full :meth:`repro.engine.planner.Plan.to_dict`
    payload: per-rule literal order, access paths and cost estimates,
    so the JSONL stream records *why* the engine evaluated bodies in
    the order it did."""

    kind: ClassVar[str] = "plan"
    semantics: str = ""
    stratum: int | None = None
    rules: int = 0
    plan: dict = field(default_factory=dict)

    def render(self) -> str:  # the full plan dict is too big for one line
        where = f" stratum={self.stratum}" if self.stratum is not None else ""
        return f"[plan] semantics={self.semantics}{where} rules={self.rules}"


@dataclass(frozen=True)
class ModuleRollback(EngineEvent):
    """A transactional module application failed and was rolled back to
    the pre-apply savepoint (``docs/ROBUSTNESS.md``)."""

    kind: ClassVar[str] = "module-rollback"
    module: str = ""
    mode: str = ""
    reason: str = ""
    error: str = ""
    restored: bool = True


EVENT_TYPES: dict[str, type[EngineEvent]] = {
    cls.kind: cls
    for cls in (
        StreamHeader,
        RunStarted, RunFinished,
        StratumStarted, StratumFinished,
        IterationStarted, IterationFinished,
        RuleFired, FactDeleted, OidInvented,
        ConstraintViolated, ModuleRollback, PlanChosen,
    )
}


def event_to_dict(event: EngineEvent) -> dict:
    return event.to_dict()


def event_from_dict(payload: dict) -> EngineEvent:
    """Rebuild an event from its JSONL dict (rich references are lost)."""
    kind = payload.get("event")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown engine event kind {kind!r}")
    kwargs = {
        f.name: payload[f.name]
        for f in fields(cls)
        if f.name not in _RICH and f.name in payload
    }
    return cls(**kwargs)
