"""The structured engine event stream.

Every observable engine action is one :class:`EngineEvent` dataclass:
run / stratum / iteration boundaries, rule firings, deletions, oid
inventions and constraint violations.  Events carry only JSON-able
fields (so a JSONL stream round-trips exactly through
:func:`event_to_dict` / :func:`event_from_dict`) plus optional *rich*
in-process references — the firing rule, the ground fact, the valuation
— which sinks like :class:`repro.engine.trace.Tracer` consume directly
and which are never serialized.

Rule-level events carry the :class:`repro.span.Span` threaded through
the parser, so a JSONL line points at the ``file:line:column`` of the
firing rule.

Every event additionally carries the **trace-context envelope** —
``run_id`` / ``span_id`` / ``parent_span_id`` — stamped by the
:class:`~repro.observability.instrument.Instrumentation` from its
:class:`TraceContext`.  Boundary pairs (run / stratum / iteration
start+end) share one span id; point events (rule fires, inventions,
heartbeats) carry the enclosing span's id.  The envelope is what lets
streams from concurrent producers (parallel workers, server requests)
merge unambiguously on one telemetry bus.
"""

from __future__ import annotations

import itertools
import os
import time as _time
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar

_RICH = {"fact_value", "rule_value", "bindings_value", "violation_value"}
#: envelope fields are omitted from JSONL when unset (no trace context)
_ENVELOPE = ("run_id", "span_id", "parent_span_id")

#: version of every serialized observability payload — the JSONL event
#: stream (via :class:`StreamHeader`), the ``--metrics-out`` snapshot,
#: the profile JSON and the :class:`repro.observability.report.RunReport`
#: artifact.  Bump when a field changes meaning or disappears; consumers
#: (``repro diff``, the CI schema check) refuse payloads from the future.
SCHEMA_VERSION = 1


def payload_header(kind: str) -> dict:
    """The shared two-field header every serialized payload leads with.

    One helper instead of five hand-rolled copies: the lint, analyze,
    profile, report, diff, why-not (and metrics-snapshot) JSON payloads
    all stamp ``schema_version`` + ``kind`` through this, so the header
    cannot drift between surfaces (pinned by tests/test_schema_header.py).
    """
    return {"schema_version": SCHEMA_VERSION, "kind": kind}


_RUN_SEQUENCE = itertools.count(1)


def new_run_id() -> str:
    """A process-unique run identifier: pid, coarse wall-clock and a
    per-process sequence number, so ids from concurrent producers on one
    machine never collide and stay legible in a merged stream."""
    return (f"r{os.getpid():x}-{int(_time.time()) & 0xFFFFFFFF:08x}"
            f"-{next(_RUN_SEQUENCE):x}")


class TraceContext:
    """OTel-style span bookkeeping for one event producer.

    Span ids are a per-run monotonic counter (``s1``, ``s2``, …) — cheap,
    deterministic under a fixed event order, and unique *within* a run;
    cross-run uniqueness comes from pairing them with ``run_id``.
    """

    __slots__ = ("run_id", "_stack", "_next")

    def __init__(self, run_id: str | None = None):
        self.run_id = run_id or new_run_id()
        self._stack: list[str] = []
        self._next = 0

    def new_run(self, run_id: str | None = None) -> None:
        """Start a fresh run scope: new id, empty span stack."""
        self.run_id = run_id or new_run_id()
        self._stack.clear()
        self._next = 0

    def start_span(self) -> tuple[str, str | None]:
        """Open a span; returns ``(span_id, parent_span_id)``."""
        self._next += 1
        span_id = f"s{self._next}"
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        return span_id, parent

    def end_span(self) -> tuple[str, str | None]:
        """Close the innermost span; returns ``(span_id, parent)``."""
        if not self._stack:
            return f"s{self._next}", None
        span_id = self._stack.pop()
        parent = self._stack[-1] if self._stack else None
        return span_id, parent

    def end_span_until(self, span_id: str) -> tuple[str, str | None]:
        """Close spans down to *and including* ``span_id`` — the crash
        path: a budget breach can leave stratum/iteration spans open, and
        the run-end event must still close the run's own span."""
        while self._stack:
            if self._stack.pop() == span_id:
                break
        parent = self._stack[-1] if self._stack else None
        return span_id, parent

    def current(self) -> tuple[str | None, str | None]:
        """``(span_id, parent)`` of the innermost open span — what point
        events (rule fires, heartbeats) are stamped with."""
        if not self._stack:
            return None, None
        if len(self._stack) == 1:
            return self._stack[-1], None
        return self._stack[-1], self._stack[-2]


@dataclass(frozen=True)
class EngineEvent:
    """Base of all engine events; ``kind`` names the event type."""

    kind: ClassVar[str] = ""
    run_id: str | None = field(default=None, compare=False)
    span_id: str | None = field(default=None, compare=False)
    parent_span_id: str | None = field(default=None, compare=False)

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"event": self.kind}
        for f in fields(self):
            if f.name in _RICH:
                continue
            value = getattr(self, f.name)
            if value is None and f.name in _ENVELOPE:
                continue
            out[f.name] = value
        return out

    def render(self) -> str:
        """One human-readable line (the text sink's format); the trace
        envelope is elided — it is correlation plumbing, not detail."""
        detail = ", ".join(
            f"{k}={v}" for k, v in self.to_dict().items()
            if k != "event" and k not in _ENVELOPE and v is not None
        )
        return f"[{self.kind}] {detail}"


@dataclass(frozen=True)
class StreamHeader(EngineEvent):
    """First line of a serialized event stream: format version and
    provenance, so a JSONL file is self-describing."""

    kind: ClassVar[str] = "stream-header"
    schema_version: int = SCHEMA_VERSION
    source_file: str | None = None


@dataclass(frozen=True)
class RunStarted(EngineEvent):
    kind: ClassVar[str] = "run-start"
    semantics: str = ""
    rules: int = 0


@dataclass(frozen=True)
class RunFinished(EngineEvent):
    kind: ClassVar[str] = "run-end"
    iterations: int = 0
    facts: int = 0
    inventions: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class StratumStarted(EngineEvent):
    kind: ClassVar[str] = "stratum-start"
    index: int = 0
    rules: int = 0


@dataclass(frozen=True)
class StratumFinished(EngineEvent):
    kind: ClassVar[str] = "stratum-end"
    index: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class IterationStarted(EngineEvent):
    kind: ClassVar[str] = "iteration-start"
    number: int = 0


@dataclass(frozen=True)
class IterationFinished(EngineEvent):
    kind: ClassVar[str] = "iteration-end"
    number: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class Heartbeat(EngineEvent):
    """Periodic liveness beacon emitted at iteration boundaries.

    A long fixpoint produces no stratum/run events for seconds or
    minutes; the heartbeat keeps an attached ``repro tail`` informed
    (iteration reached, live facts, invented oids, seconds since run
    start) without the volume of per-rule events.  Cadence is the
    instrumentation's ``heartbeat_interval``."""

    kind: ClassVar[str] = "heartbeat"
    iteration: int = 0
    stratum: int | None = None
    facts: int = 0
    inventions: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class RuleFired(EngineEvent):
    """One fact contributed to Δ⁺ by one rule valuation."""

    kind: ClassVar[str] = "rule-fire"
    rule_index: int = -1
    rule: str = ""
    pred: str = ""
    fact: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None
    fact_value: Any = field(default=None, repr=False, compare=False)
    rule_value: Any = field(default=None, repr=False, compare=False)
    bindings_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class FactDeleted(EngineEvent):
    """One fact contributed to Δ⁻ by a negated-head rule valuation."""

    kind: ClassVar[str] = "deletion"
    rule_index: int = -1
    rule: str = ""
    pred: str = ""
    fact: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None
    fact_value: Any = field(default=None, repr=False, compare=False)
    rule_value: Any = field(default=None, repr=False, compare=False)
    bindings_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class OidInvented(EngineEvent):
    kind: ClassVar[str] = "invention"
    rule_index: int = -1
    rule: str = ""
    oid: str = ""
    iteration: int = 0
    file: str | None = None
    line: int | None = None
    column: int | None = None


@dataclass(frozen=True)
class ConstraintViolated(EngineEvent):
    kind: ClassVar[str] = "constraint-violation"
    violation_kind: str = ""
    predicate: str = ""
    message: str = ""
    fact: str | None = None
    violation_value: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class PlanChosen(EngineEvent):
    """The cost-based planner fixed literal orders for a rule set.

    ``plan`` is the full :meth:`repro.engine.planner.Plan.to_dict`
    payload: per-rule literal order, access paths and cost estimates,
    so the JSONL stream records *why* the engine evaluated bodies in
    the order it did."""

    kind: ClassVar[str] = "plan"
    semantics: str = ""
    stratum: int | None = None
    rules: int = 0
    plan: dict = field(default_factory=dict)

    def render(self) -> str:  # the full plan dict is too big for one line
        where = f" stratum={self.stratum}" if self.stratum is not None else ""
        return f"[plan] semantics={self.semantics}{where} rules={self.rules}"


@dataclass(frozen=True)
class ServerRequest(EngineEvent):
    """One HTTP request served by ``repro serve`` (``docs/SERVE.md``).

    ``run_id`` in the envelope is the per-request trace id the server
    mints at admission, so a request's bus events correlate with the
    response's ``X-Repro-Run-Id`` header."""

    kind: ClassVar[str] = "server-request"
    method: str = ""
    path: str = ""
    op: str = ""
    db: str | None = None
    tenant: str | None = None
    status: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True)
class ModuleRollback(EngineEvent):
    """A transactional module application failed and was rolled back to
    the pre-apply savepoint (``docs/ROBUSTNESS.md``)."""

    kind: ClassVar[str] = "module-rollback"
    module: str = ""
    mode: str = ""
    reason: str = ""
    error: str = ""
    restored: bool = True


EVENT_TYPES: dict[str, type[EngineEvent]] = {
    cls.kind: cls
    for cls in (
        StreamHeader,
        RunStarted, RunFinished,
        StratumStarted, StratumFinished,
        IterationStarted, IterationFinished,
        RuleFired, FactDeleted, OidInvented,
        ConstraintViolated, ModuleRollback, PlanChosen,
        Heartbeat, ServerRequest,
    )
}


def event_to_dict(event: EngineEvent) -> dict:
    return event.to_dict()


def event_from_dict(payload: dict) -> EngineEvent:
    """Rebuild an event from its JSONL dict (rich references are lost)."""
    kind = payload.get("event")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown engine event kind {kind!r}")
    kwargs = {
        f.name: payload[f.name]
        for f in fields(cls)
        if f.name not in _RICH and f.name in payload
    }
    return cls(**kwargs)
