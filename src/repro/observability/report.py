"""Persistent run reports: the artifact ``repro diff`` compares.

A :class:`RunReport` freezes everything one instrumented run knew about
itself — canonical schema/program hashes, semantics and kernel, the
engine's :class:`~repro.engine.fixpoint.EvalStats`, the ranked per-rule
profile rows, the phase tree and the full metrics snapshot — in a
versioned JSON document.  ``repro run --report-out`` writes one, every
benchmark session writes one for the reference workload, and
``repro diff`` (:mod:`repro.observability.diff`) computes per-rule and
per-phase deltas between two of them, which is how the perf trajectory
in ``BENCH_*.json`` stays honest across PRs.

The document layout is documented in ``docs/OBSERVABILITY.md``; the
``schema_version`` field (shared with every other observability
payload) gates loading, so a report written by a future format is
rejected instead of silently mis-diffed.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.observability.events import SCHEMA_VERSION, payload_header

REPORT_KIND = "run-report"


@dataclass
class RunReport:
    """One run's persistent observability record."""

    source_file: str | None
    schema_hash: str
    program_hash: str
    semantics: str
    kernel: str
    created: float = 0.0
    stats: dict = field(default_factory=dict)
    rules: list[dict] = field(default_factory=list)
    phases: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    #: the active EvalConfig switches (kernel/plan/threshold/seminaive)
    config: dict = field(default_factory=dict)
    #: planner output, one dict per fixpoint scope (empty when plan=off)
    plans: list[dict] = field(default_factory=list)
    #: the trace-context run id every event of this run was stamped with
    run_id: str | None = None
    #: telemetry-bus accounting (published / per-subscriber drops), only
    #: present when the run served live telemetry
    telemetry: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = payload_header(REPORT_KIND)
        out.update({
            "created": self.created,
            "source_file": self.source_file,
            "schema_hash": self.schema_hash,
            "program_hash": self.program_hash,
            "semantics": self.semantics,
            "kernel": self.kernel,
            "stats": self.stats,
            "rules": self.rules,
            "phases": self.phases,
            "metrics": self.metrics,
            "config": self.config,
            "plans": self.plans,
        })
        if self.run_id is not None:
            out["run_id"] = self.run_id
        if self.telemetry:
            out["telemetry"] = self.telemetry
        return out

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.dumps())
            f.write("\n")

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        version = payload.get("schema_version")
        if version is None or version > SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run-report schema version {version!r}"
                f" (this build reads up to {SCHEMA_VERSION})"
            )
        if payload.get("kind") != REPORT_KIND:
            raise ValueError(
                f"not a run report: kind={payload.get('kind')!r}"
            )
        # tolerant load: every field beyond the header is optional, so a
        # report written before (or after, same major version) a field
        # was introduced — run_id, telemetry — still diffs cleanly
        return cls(
            source_file=payload.get("source_file"),
            schema_hash=payload.get("schema_hash", ""),
            program_hash=payload.get("program_hash", ""),
            semantics=payload.get("semantics", ""),
            kernel=payload.get("kernel", ""),
            created=payload.get("created", 0.0),
            stats=payload.get("stats", {}),
            rules=payload.get("rules", []),
            phases=payload.get("phases", {}),
            metrics=payload.get("metrics", {}),
            config=payload.get("config", {}),
            plans=payload.get("plans", []),
            run_id=payload.get("run_id"),
            telemetry=payload.get("telemetry", {}),
        )


def load_report(path) -> RunReport:
    with open(path, encoding="utf-8") as f:
        return RunReport.from_dict(json.load(f))


def fingerprint(text: str) -> str:
    """Stable short hash of a canonical rendering."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def build_run_report(
    engine,
    obs,
    semantics: str,
    kernel: str = "incremental",
    source_file: str | None = None,
) -> RunReport:
    """Fold an instrumented engine run into a :class:`RunReport`.

    ``engine`` must have completed a run under ``obs`` (an enabled,
    metrics-carrying :class:`~repro.observability.Instrumentation`); the
    per-rule rows are the same ones ``repro profile`` ranks, so a report
    and a profile of the same run agree column for column.
    """
    from repro.language.ast import Program
    from repro.language.pretty import render_program, render_schema
    from repro.observability.profile import build_profile

    profile = build_profile(engine, obs)
    stats = engine.stats
    analysis = engine.analysis
    bus_stats = getattr(obs.sink, "stats", None)
    return RunReport(
        run_id=obs.trace.run_id if obs.trace is not None else None,
        telemetry=bus_stats() if bus_stats is not None else {},
        source_file=source_file or obs.source_file,
        schema_hash=fingerprint(render_schema(engine.schema)),
        program_hash=fingerprint(render_program(
            Program(analysis.rules, analysis.goal))),
        semantics=semantics,
        kernel=kernel,
        created=time.time(),
        stats={
            "iterations": stats.iterations,
            "facts": profile.facts,
            "inventions": stats.inventions,
            "strata": stats.strata,
            "used_seminaive": stats.used_seminaive,
            "time_total_ms": stats.time_total * 1000,
            "time_per_iteration_ms": [
                t * 1000 for t in stats.time_per_iteration
            ],
        },
        rules=[row.to_dict() for row in profile.rules],
        phases=obs.timer.to_dict(),
        metrics=profile.metrics,
        config={
            "kernel": kernel,
            "plan": engine.config.plan,
            "compile_threshold": engine.config.compile_threshold,
            "seminaive": engine.config.seminaive,
            "use_indexes": engine.config.use_indexes,
        },
        plans=profile.plans,
    )


def report_program(
    schema,
    program,
    edb,
    semantics=None,
    config=None,
    source_file: str | None = None,
    kernel: str | None = None,
) -> RunReport:
    """Evaluate ``(schema, program)`` over ``edb`` under full
    instrumentation and return the finished :class:`RunReport` — the
    one-call harness benchmarks and the regression gate share.

    ``kernel`` names the configuration in the report; when omitted it is
    derived from ``config.incremental`` (the bench matrix passes its
    cell's kernel name — ``planned``, ``compiled`` — explicitly).
    """
    from repro.engine import Engine, Semantics
    from repro.observability.instrument import Instrumentation

    sem = semantics if semantics is not None else Semantics.INFLATIONARY
    obs = Instrumentation.capture(source_file=source_file)
    engine = Engine(schema, program, config=config, instrumentation=obs)
    with obs.phase("fixpoint"):
        engine.run(edb, sem)
    if kernel is None:
        kernel = ("incremental" if config is None or config.incremental
                  else "reference")
    return build_run_report(engine, obs, semantics=sem.value,
                            kernel=kernel, source_file=source_file)
