"""Coercion between plain Python data and LOGRES values.

Used by the :class:`~repro.core.database.Database` facade so applications
can insert ``{"name": "sara", "roles": {1, 2}}`` without constructing
value objects by hand.

Mapping (both directions):

========================= =========================
Python                    LOGRES
========================= =========================
``int / str / float /``   elementary value
``bool``
``dict``                  :class:`TupleValue`
``set / frozenset``       :class:`SetValue`
``list``                  :class:`SequenceValue`
``collections.Counter``   :class:`MultisetValue`
``Oid``                   itself (object reference)
========================= =========================
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ValueError_
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid


def to_value(obj) -> Value:
    """Coerce a plain Python object to a LOGRES value."""
    if isinstance(obj, (TupleValue, SetValue, MultisetValue, SequenceValue,
                        Oid)):
        return obj
    if isinstance(obj, bool) or isinstance(obj, (int, str, float)):
        return obj
    if isinstance(obj, Counter):
        return MultisetValue.from_counts(
            {to_value(k): n for k, n in obj.items()}
        )
    if isinstance(obj, dict):
        return TupleValue({str(k).lower(): to_value(v)
                           for k, v in obj.items()})
    if isinstance(obj, (set, frozenset)):
        return SetValue(to_value(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return SequenceValue(to_value(v) for v in obj)
    raise ValueError_(f"cannot coerce {obj!r} to a LOGRES value")


def from_value(value: Value):
    """Coerce a LOGRES value back to plain Python data.

    Oids are preserved as :class:`Oid` (they have no Python analogue and
    stay invisible in rendered output).
    """
    if isinstance(value, TupleValue):
        return {k: from_value(v) for k, v in value.items}
    if isinstance(value, SetValue):
        return {from_value(v) for v in value}
    if isinstance(value, MultisetValue):
        return Counter({from_value(v): n for v, n in value.counts})
    if isinstance(value, SequenceValue):
        return [from_value(v) for v in value]
    return value
