"""The public LOGRES facade: :class:`~repro.core.database.Database`."""

from repro.core.database import Database
from repro.core.coerce import to_value, from_value

__all__ = ["Database", "from_value", "to_value"]
