"""The high-level LOGRES database API.

:class:`Database` bundles a database state ``(E, R, S)``, an oid
generator, a consistency checker, and the module machinery behind a small
surface::

    db = Database.from_source('''
        domains
          name = string.
        classes
          person = (name, address: string).
        rules
          ...
    ''')
    sara = db.insert("person", name="sara", address="milano")
    db.run_module(mod, Mode.RIDV)
    answers = db.query("?- person(name N).")

Every mutation goes through module application semantics: inserts and
deletes are sugar for RIDV modules built on the fly, so the paper's single
update mechanism (Section 4.2) really is the only write path.
"""

from __future__ import annotations

from repro.constraints.checker import ConsistencyChecker, Violation
from repro.core.coerce import to_value
from repro.engine import EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.errors import LogresError, SchemaError, ValueError_
from repro.language.ast import Goal, Program, Rule
from repro.language.parser import parse_program, parse_source
from repro.modules.apply import ApplicationResult, apply_module
from repro.modules.module import Mode, Module
from repro.modules.state import DatabaseState, materialize
from repro.storage.factset import FactSet
from repro.storage.persist import (
    atomic_write_text,
    dumps_state,
    loads_state,
)
from repro.types.schema import Schema
from repro.values.complex import TupleValue, Value
from repro.values.oids import Oid, OidGenerator


class Database:
    """A LOGRES database: one evolving state plus evaluation services."""

    def __init__(
        self,
        schema: Schema | str,
        rules: tuple[Rule, ...] = (),
        semantics: Semantics = Semantics.INFLATIONARY,
        config: EvalConfig | None = None,
    ):
        if isinstance(schema, str):
            unit = parse_source(schema)
            schema_obj = unit.schema()
            rules = tuple(rules) + tuple(unit.rules)
        else:
            schema_obj = schema
        self.state = DatabaseState(schema_obj, FactSet(), tuple(rules))
        self.semantics = semantics
        self.config = config or EvalConfig()
        self.oidgen = OidGenerator()
        self._instance_cache: FactSet | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, text: str, **kwargs) -> "Database":
        """Parse a full LOGRES source unit (schema sections + rules)."""
        return cls(text, **kwargs)

    @property
    def schema(self) -> Schema:
        return self.state.schema

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.state.rules

    @property
    def edb(self) -> FactSet:
        return self.state.edb

    # ------------------------------------------------------------------
    # updates (all sugar over module application, Section 4.2)
    # ------------------------------------------------------------------
    def insert(self, pred: str, **attributes) -> Oid | None:
        """Insert one fact; returns the new oid for class predicates.

        Attribute values may be plain Python data (coerced) and may
        reference objects by :class:`Oid`.
        """
        pred = pred.lower()
        if not self.schema.has(pred):
            raise SchemaError(f"unknown predicate {pred!r}")
        eff = self.schema.effective_type(pred)
        value = TupleValue({
            k.lower(): to_value(v) for k, v in attributes.items()
        })
        for label in value.labels:
            if not eff.has_label(label):
                raise ValueError_(
                    f"predicate {pred!r} has no attribute {label!r}"
                )
        if self.schema.is_class(pred):
            highest = self.state.edb.max_oid_number()
            if highest:
                self.oidgen.reserve_above(Oid(highest))
            oid = self.oidgen.fresh()
            self.state.edb.add_object(pred, oid, value)
            # isa: an object of a subclass is an object of its superclasses
            for sup in self.schema.superclasses(pred):
                sup_labels = self.schema.effective_type(sup).labels
                self.state.edb.add_object(
                    sup, oid, value.project(sup_labels)
                )
            self._instance_cache = None
            return oid
        missing = [
            f.label for f in eff.fields if f.label not in value
        ]
        if missing:
            raise ValueError_(
                f"association {pred!r} tuple misses attributes {missing}"
            )
        self.state.edb.add_association(pred, value)
        self._instance_cache = None
        return None

    def delete(self, pred: str, oid: Oid | None = None, **attributes
               ) -> int:
        """Delete matching extensional facts; returns how many."""
        pred = pred.lower()
        removed = 0
        if self.schema.is_class(pred):
            targets = [oid] if oid is not None else [
                f.oid for f in self.state.edb.facts_of(pred)
                if all(
                    f.value.get(k.lower()) == to_value(v)
                    for k, v in attributes.items()
                )
            ]
            for target in targets:
                if self.state.edb.discard_oid(pred, target):
                    removed += 1
        else:
            wanted = {k.lower(): to_value(v) for k, v in attributes.items()}
            for fact in list(self.state.edb.facts_of(pred)):
                if all(fact.value.get(k) == v for k, v in wanted.items()):
                    if self.state.edb.discard(fact):
                        removed += 1
        if removed:
            self._instance_cache = None
        return removed

    def add_rules(self, source_or_rules) -> None:
        """Add persistent rules (the RADI effect, without a module).

        The combined rule set is analyzed eagerly, so unsafe or ill-typed
        rules are rejected here rather than at the next materialization.
        """
        if isinstance(source_or_rules, str):
            new_rules = parse_program(source_or_rules).rules
        else:
            new_rules = tuple(source_or_rules)
        candidate = DatabaseState(
            self.schema, self.state.edb, self.state.rules + new_rules
        )
        from repro.language.analysis import analyze_program

        analyze_program(candidate.evaluation_program(), self.schema)
        self.state = candidate
        self._instance_cache = None

    def run_module(
        self,
        module: Module,
        mode: Mode,
        semantics: Semantics | None = None,
        check_initial: bool = False,
    ) -> ApplicationResult:
        """Apply a module; on success the database advances to the new
        state.  On rejection the state is unchanged."""
        result = apply_module(
            self.state,
            module,
            mode,
            semantics=semantics or self.semantics,
            config=self.config,
            oidgen=self.oidgen,
            check_initial=check_initial,
        )
        self.state = result.state
        self._instance_cache = None
        return result

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def instance(self, semantics: Semantics | None = None) -> FactSet:
        """The materialized instance ``I`` of the current ``(E, R, S)``."""
        if semantics is None and self._instance_cache is not None:
            return self._instance_cache
        # a fresh generator per materialization keeps derived oids
        # deterministic across calls (the engine reserves above the EDB)
        result = materialize(
            self.state,
            semantics or self.semantics,
            self.config,
            OidGenerator(),
        )
        if semantics is None:
            self._instance_cache = result
        return result

    def query(self, goal: str | Goal,
              semantics: Semantics | None = None) -> list[dict[str, Value]]:
        """Answer a conjunctive goal against the materialized instance.

        ``goal`` may be source text (``"?- person(name N)."``) or a
        :class:`Goal`.
        """
        if isinstance(goal, str):
            text = goal.strip()
            if not text.startswith("goal"):
                text = "goal\n" + text
            parsed = parse_source(text).goal
            if parsed is None:
                raise LogresError(f"no goal found in {goal!r}")
            goal = parsed
        return answer_goal(goal, self.instance(semantics), self.schema)

    def objects(self, class_name: str) -> dict[Oid, TupleValue]:
        """The oid -> o-value map of one class in the instance."""
        inst = self.instance()
        return {
            fact.oid: fact.value
            for fact in inst.facts_of(class_name)
            if fact.oid is not None
        }

    def tuples(self, association: str) -> set[TupleValue]:
        return {
            fact.value for fact in self.instance().facts_of(association)
        }

    def materialize_all(self) -> int:
        """Make the EDB coincide with the instance (Section 4.2).

        "We can obtain the same situation in LOGRES by declaring all the
        rules in R as RIDV: the effect is to have E = I.  This can either
        be done as a general database strategy, or dynamically at a
        particular moment of the lifetime of the database."

        The persistent rules are re-applied as one RIDV update, so every
        currently derivable fact becomes extensional.  Returns how many
        facts were added to E.
        """
        module = Module(
            name="materialize",
            rules=self.state.persistent_rules(),
        )
        before = self.state.edb.count()
        self.run_module(module, Mode.RIDV)
        return self.state.edb.count() - before

    def explain(self, pred: str, oid: Oid | None = None, **attributes):
        """The derivation tree of one instance fact (debugging aid).

        For associations, identify the fact by its attributes; for
        classes, by ``oid``.  Returns a
        :class:`repro.engine.trace.DerivationNode`; extensional facts
        yield a single leaf.
        """
        from repro.engine.trace import Tracer
        from repro.errors import EvaluationError
        from repro.language.analysis import schema_with_functions
        from repro.storage.factset import Fact

        pred = pred.lower()
        tracer = Tracer()
        from repro.engine import Engine

        engine = Engine(
            self.schema,
            self.state.evaluation_program(),
            config=self.config,
            oidgen=OidGenerator(),  # mirror instance() determinism
        )
        instance = engine.run(self.state.edb, self.semantics,
                              tracer=tracer)
        if self.schema.is_class(pred):
            if oid is None:
                raise EvaluationError(
                    "explaining a class fact requires its oid"
                )
            stored = instance.value_of(pred, oid)
            if stored is None:
                raise EvaluationError(
                    f"no object {oid!r} in class {pred!r}"
                )
            fact = Fact(pred, stored, oid)
        else:
            wanted = {k.lower(): to_value(v)
                      for k, v in attributes.items()}
            fact = Fact(pred, TupleValue(wanted))
            if fact not in instance:
                raise EvaluationError(
                    f"fact {fact!r} does not hold in the instance"
                )
        return tracer.explain(
            fact, instance, schema_with_functions(self.schema)
        )

    # ------------------------------------------------------------------
    # consistency and persistence
    # ------------------------------------------------------------------
    def check(self) -> list[Violation]:
        """Consistency violations of the current instance."""
        checker = ConsistencyChecker(self.schema, self.state.denials())
        return checker.check(self.instance())

    def dumps(self) -> str:
        return dumps_state(self.schema, self.state.edb,
                           Program(self.state.rules))

    @classmethod
    def loads(cls, text: str, **kwargs) -> "Database":
        schema, edb, program = loads_state(text)
        db = cls(schema, rules=program.rules, **kwargs)
        db.state = DatabaseState(schema, edb, program.rules)
        db.oidgen.reserve_above(Oid(max(1, edb.max_oid_number())))
        return db

    def save(self, path) -> None:
        """Persist atomically: a crash mid-save leaves any previous
        on-disk database intact (``docs/ROBUSTNESS.md``)."""
        atomic_write_text(path, self.dumps())

    @classmethod
    def load(cls, path, **kwargs) -> "Database":
        with open(path, encoding="utf-8") as f:
            return cls.loads(f.read(), **kwargs)

    def __repr__(self) -> str:
        return (
            f"Database({self.state.edb.count()} extensional facts,"
            f" {len(self.state.rules)} rules,"
            f" semantics={self.semantics.value})"
        )
