"""Exception hierarchy for the LOGRES reproduction.

Every error raised by the library derives from :class:`LogresError`, so
applications can catch one base class.  The sub-hierarchy mirrors the
compilation pipeline of the system: schema definition errors, parse errors,
static analysis (safety / typing / stratification) errors, runtime
evaluation errors, and consistency violations raised by module application.
"""

from __future__ import annotations


class LogresError(Exception):
    """Base class of every error raised by the library.

    Errors surfaced through the static analyzer additionally carry the
    collected :class:`repro.analysis.Diagnostic` values: ``diagnostic``
    is the finding this exception stands for (or ``None``), and
    ``diagnostics`` is every finding of the analysis run that raised it
    (the fail-fast API raises on the first error but keeps the rest).
    """

    diagnostic = None
    diagnostics: tuple = ()


class SchemaError(LogresError):
    """An ill-formed schema: bad type equation, illegal ``isa`` edge,
    association containing an association, a domain referencing a class,
    duplicate labels, unresolved type names, or a refinement violation."""


class TypeEquationError(SchemaError):
    """A single type equation is syntactically or structurally illegal."""


class IsaError(SchemaError):
    """An illegal generalization edge: cycles, refinement failure, or
    multiple inheritance between classes without a common ancestor."""


class ValueError_(LogresError):
    """A value does not belong to the set denoted by its declared type."""


class OidError(LogresError):
    """Illegal use of object identifiers: dangling reference, nil oid in an
    association, an oid assigned to two unrelated hierarchies, or an o-value
    conflicting with the oid's class."""


class ParseError(LogresError):
    """Raised by the LOGRES text parser.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        self.raw_message = message
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AnalysisError(LogresError):
    """Base class for static-analysis failures detected at compile time."""


class SafetyError(AnalysisError):
    """A rule violates the safety requirements of Section 3.1: a non-self
    head argument that does not occur in the body, a built-in variable that
    occurs in no ordinary literal, or an argument-less literal over a
    predicate with arguments."""


class TypingError(AnalysisError):
    """Static type checking failed: unification between incompatible types,
    an unknown predicate or label, or a built-in applied to incompatible
    argument types."""


class IllegalOidRuleError(AnalysisError):
    """``C1(X) <- C2(X)`` with C1 and C2 not in the same generalization
    hierarchy: two objects cannot share an oid across hierarchies
    (Section 3.1)."""


class StratificationError(AnalysisError):
    """The program is not stratified with respect to negation or data
    functions and stratified semantics was requested."""


class EvaluationError(LogresError):
    """Runtime failure while computing the fixpoint semantics."""


class NonTerminationError(EvaluationError):
    """The inflationary sequence exceeded its iteration or oid-invention
    budget (termination is undecidable; Appendix B).

    ``iterations`` is how far the run got; ``stats`` carries the partial
    :class:`repro.engine.fixpoint.EvalStats` of the interrupted run (or
    ``None`` for raisers that have no engine stats, e.g. the ALGRES
    evaluator).
    """

    def __init__(self, message: str, iterations: int = 0, stats=None):
        self.iterations = iterations
        self.stats = stats
        super().__init__(message)


class EvalBudgetExceeded(NonTerminationError):
    """A :class:`repro.engine.guards.ResourceGuard` budget tripped.

    Deterministic runtime interruption: ``budget`` names the budget that
    tripped (``"timeout"``, ``"max_facts"``, ``"max_inventions"``,
    ``"max_fact_size"``, ``"cancelled"``), ``limit`` / ``observed`` are
    the configured bound and the measured value, and ``snapshot`` is a
    consistent partial fact set captured at the breach (the state of the
    last completed iteration boundary), attached by the engine kernel
    that propagated the breach.
    """

    def __init__(
        self,
        message: str,
        budget: str = "",
        limit=None,
        observed=None,
        iterations: int = 0,
        stats=None,
        snapshot=None,
    ):
        super().__init__(message, iterations, stats=stats)
        self.budget = budget
        self.limit = limit
        self.observed = observed
        self.snapshot = snapshot

    def attach(self, stats=None, snapshot=None) -> "EvalBudgetExceeded":
        """Fill in run context at the kernel boundary (first writer wins,
        so the innermost kernel's consistent snapshot is kept)."""
        if stats is not None and self.stats is None:
            self.stats = stats
            self.iterations = stats.iterations
        if snapshot is not None and self.snapshot is None:
            self.snapshot = snapshot
        return self


class TransactionError(LogresError):
    """A savepoint rollback could not restore the pre-apply state
    exactly (fingerprint mismatch after undo) — the database state must
    be considered corrupt."""


class BuiltinError(EvaluationError):
    """A built-in predicate was applied to malformed arguments at runtime."""


class ConsistencyError(LogresError):
    """A database state violates an integrity constraint (active referential
    constraint, passive denial, or structural instance invariant)."""


class ModuleApplicationError(LogresError):
    """A module application is illegal: the initial state is inconsistent,
    the resulting instance is undefined, or a goal was supplied with a
    data-variant mode that forbids it (Section 4.1).

    ``diagnostics`` holds the mode-check findings (codes ``LG7xx``) when
    the failure came from :func:`repro.analysis.check_module_application`.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
        self.diagnostic = self.diagnostics[0] if self.diagnostics else None


class CompilationError(LogresError):
    """The LOGRES-to-ALGRES compiler cannot translate a construct (the
    compilable fragment excludes oid invention and head deletion)."""


class AlgebraError(LogresError):
    """An ill-formed extended-relational-algebra expression or an operator
    applied to schema-incompatible relations."""


class StorageError(LogresError):
    """Fact-store or persistence failure (corrupt payload, version skew)."""
