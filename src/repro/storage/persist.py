"""JSON persistence of schemas, fact sets, and programs.

Every LOGRES artifact serializes to a tagged JSON form:

* values — ``{"$oid": 7}``, ``{"$tuple": {...}}``, ``{"$set": [...]}``,
  ``{"$multiset": [[v, n], ...]}``, ``{"$seq": [...]}``,
  ``{"$real": 2.5}``; elementary ints / strings / bools are plain JSON;
* types — ``{"$elem": "integer"}``, ``{"$named": "person"}``,
  ``{"$tupletype": [...]}``, ``{"$settype": t}`` etc.;
* terms and rules — one object per AST node class.

:func:`dumps_state` / :func:`loads_state` bundle a database state
``(E, R, S)`` (Section 3.1's triple) into one payload; module code wraps
them for whole-database persistence.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any

from repro.errors import StorageError
from repro.testing.faults import FAULTS
from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    Constant,
    FunctionApp,
    FunctionHead,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Term,
    Var,
)
from repro.storage.factset import Fact, FactSet
from repro.types.descriptors import (
    ELEMENTARY_TYPES,
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import (
    FunctionDecl,
    IsaDeclaration,
    Kind,
    TypeEquation,
)
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid

#: v1 was checksum-less; v2 adds a sha256 checksum over the canonical
#: body so load detects torn/corrupted payloads (``docs/ROBUSTNESS.md``).
#: v1 payloads still load (legacy, unverified).
FORMAT_VERSION = 2
_LEGACY_VERSIONS = (1,)
_BODY_KEYS = ("schema", "edb", "program")


# ---------------------------------------------------------------------------
# values
# ---------------------------------------------------------------------------
def encode_value(value: Value) -> Any:
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return {"$real": value}
    if isinstance(value, Oid):
        return {"$oid": value.number}
    if isinstance(value, TupleValue):
        return {"$tuple": {k: encode_value(v) for k, v in value.items}}
    if isinstance(value, SetValue):
        return {"$set": sorted((encode_value(v) for v in value),
                               key=json.dumps)}
    if isinstance(value, MultisetValue):
        return {"$multiset": sorted(
            ([encode_value(v), n] for v, n in value.counts),
            key=json.dumps,
        )}
    if isinstance(value, SequenceValue):
        return {"$seq": [encode_value(v) for v in value]}
    raise StorageError(f"cannot serialize value {value!r}")


def decode_value(payload: Any) -> Value:
    if isinstance(payload, (bool, int, str)):
        return payload
    if isinstance(payload, float):  # pragma: no cover - floats are tagged
        return payload
    if isinstance(payload, dict):
        if "$real" in payload:
            return float(payload["$real"])
        if "$oid" in payload:
            return Oid(int(payload["$oid"]))
        if "$tuple" in payload:
            return TupleValue({
                k: decode_value(v) for k, v in payload["$tuple"].items()
            })
        if "$set" in payload:
            return SetValue(decode_value(v) for v in payload["$set"])
        if "$multiset" in payload:
            counts = {
                decode_value(v): int(n) for v, n in payload["$multiset"]
            }
            return MultisetValue.from_counts(counts)
        if "$seq" in payload:
            return SequenceValue(decode_value(v) for v in payload["$seq"])
    raise StorageError(f"cannot deserialize value payload {payload!r}")


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------
def encode_type(t: TypeDescriptor) -> Any:
    if isinstance(t, ElementaryType):
        return {"$elem": t.name}
    if isinstance(t, NamedType):
        return {"$named": t.name}
    if isinstance(t, TupleType):
        return {"$tupletype": [
            [f.label, encode_type(f.type)] for f in t.fields
        ]}
    if isinstance(t, SetType):
        return {"$settype": encode_type(t.element)}
    if isinstance(t, MultisetType):
        return {"$multisettype": encode_type(t.element)}
    if isinstance(t, SequenceType):
        return {"$seqtype": encode_type(t.element)}
    raise StorageError(f"cannot serialize type {t!r}")


def decode_type(payload: Any) -> TypeDescriptor:
    if not isinstance(payload, dict):
        raise StorageError(f"bad type payload {payload!r}")
    if "$elem" in payload:
        return ELEMENTARY_TYPES[payload["$elem"]]
    if "$named" in payload:
        return NamedType(payload["$named"])
    if "$tupletype" in payload:
        return TupleType(tuple(
            TupleField(label, decode_type(t))
            for label, t in payload["$tupletype"]
        ))
    if "$settype" in payload:
        return SetType(decode_type(payload["$settype"]))
    if "$multisettype" in payload:
        return MultisetType(decode_type(payload["$multisettype"]))
    if "$seqtype" in payload:
        return SequenceType(decode_type(payload["$seqtype"]))
    raise StorageError(f"bad type payload {payload!r}")


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------
def encode_schema(schema: Schema) -> Any:
    return {
        "equations": [
            {"name": eq.name, "kind": eq.kind.value,
             "rhs": encode_type(eq.rhs)}
            for eq in schema.equations.values()
        ],
        "isa": [
            {"sub": d.sub, "sup": d.sup, "label": d.label}
            for d in schema.isa_declarations
        ],
        "functions": [
            {
                "name": f.name,
                "args": [encode_type(t) for t in f.arg_types],
                "arg_labels": list(f.arg_labels),
                "result": encode_type(f.result),
            }
            for f in schema.functions.values()
        ],
    }


def decode_schema(payload: Any) -> Schema:
    equations = {}
    for eq in payload["equations"]:
        equations[eq["name"]] = TypeEquation(
            eq["name"], Kind(eq["kind"]), decode_type(eq["rhs"])
        )
    isa = tuple(
        IsaDeclaration(d["sub"], d["sup"], d.get("label"))
        for d in payload["isa"]
    )
    functions = {}
    for f in payload["functions"]:
        result = decode_type(f["result"])
        if not isinstance(result, SetType):
            raise StorageError("function result must be a set type")
        functions[f["name"]] = FunctionDecl(
            f["name"],
            tuple(decode_type(t) for t in f["args"]),
            result,
            tuple(f["arg_labels"]),
        )
    return Schema(equations, isa, functions)


# ---------------------------------------------------------------------------
# fact sets
# ---------------------------------------------------------------------------
def encode_factset(facts: FactSet) -> Any:
    out = []
    for fact in facts.facts():
        entry: dict[str, Any] = {
            "pred": fact.pred,
            "value": encode_value(fact.value),
        }
        if fact.oid is not None:
            entry["oid"] = fact.oid.number
        out.append(entry)
    out.sort(key=json.dumps)
    return out


def decode_factset(payload: Any) -> FactSet:
    facts = FactSet()
    for entry in payload:
        value = decode_value(entry["value"])
        if not isinstance(value, TupleValue):
            raise StorageError(f"fact value must be a tuple: {entry!r}")
        oid = Oid(int(entry["oid"])) if "oid" in entry else None
        facts.add(Fact(entry["pred"], value, oid))
    return facts


# ---------------------------------------------------------------------------
# terms, literals, rules
# ---------------------------------------------------------------------------
def encode_term(term: Term) -> Any:
    if isinstance(term, Var):
        return {"$var": term.name}
    if isinstance(term, Constant):
        return {"$const": encode_value(term.value)}
    if isinstance(term, FunctionApp):
        return {"$app": term.name,
                "args": [encode_term(a) for a in term.args]}
    if isinstance(term, ArithExpr):
        return {"$arith": term.op, "left": encode_term(term.left),
                "right": encode_term(term.right)}
    if isinstance(term, CollectionTerm):
        return {"$coll": term.kind,
                "elements": [encode_term(e) for e in term.elements]}
    if isinstance(term, Pattern):
        return {"$pattern": _encode_args(term.args)}
    raise StorageError(f"cannot serialize term {term!r}")


def decode_term(payload: Any) -> Term:
    if "$var" in payload:
        return Var(payload["$var"])
    if "$const" in payload:
        return Constant(decode_value(payload["$const"]))
    if "$app" in payload:
        return FunctionApp(
            payload["$app"], tuple(decode_term(a) for a in payload["args"])
        )
    if "$arith" in payload:
        return ArithExpr(payload["$arith"], decode_term(payload["left"]),
                         decode_term(payload["right"]))
    if "$coll" in payload:
        return CollectionTerm(
            payload["$coll"],
            tuple(decode_term(e) for e in payload["elements"]),
        )
    if "$pattern" in payload:
        return Pattern(_decode_args(payload["$pattern"]))
    raise StorageError(f"cannot deserialize term payload {payload!r}")


def _encode_args(args: Args) -> Any:
    return {
        "labeled": [[label, encode_term(t)] for label, t in args.labeled],
        "self": encode_term(args.self_term) if args.self_term else None,
        "tuple_var": args.tuple_var.name if args.tuple_var else None,
        "positional": [encode_term(t) for t in args.positional],
    }


def _decode_args(payload: Any) -> Args:
    return Args(
        labeled=tuple(
            (label, decode_term(t)) for label, t in payload["labeled"]
        ),
        self_term=decode_term(payload["self"]) if payload["self"] else None,
        tuple_var=Var(payload["tuple_var"]) if payload["tuple_var"] else None,
        positional=tuple(decode_term(t) for t in payload["positional"]),
    )


def _encode_body_literal(lit: Literal | BuiltinLiteral) -> Any:
    if isinstance(lit, Literal):
        return {"$lit": lit.pred, "args": _encode_args(lit.args),
                "negated": lit.negated}
    return {"$builtin": lit.name,
            "args": [encode_term(a) for a in lit.args],
            "negated": lit.negated}


def _decode_body_literal(payload: Any) -> Literal | BuiltinLiteral:
    if "$lit" in payload:
        return Literal(payload["$lit"], _decode_args(payload["args"]),
                       payload["negated"])
    return BuiltinLiteral(
        payload["$builtin"],
        tuple(decode_term(a) for a in payload["args"]),
        payload["negated"],
    )


def encode_rule(rule: Rule) -> Any:
    head: Any = None
    if isinstance(rule.head, Literal):
        head = _encode_body_literal(rule.head)
    elif isinstance(rule.head, FunctionHead):
        head = {
            "$fnhead": rule.head.function,
            "element": encode_term(rule.head.element),
            "args": [encode_term(a) for a in rule.head.args],
            "negated": rule.head.negated,
        }
    return {
        "head": head,
        "body": [_encode_body_literal(l) for l in rule.body],
        "name": rule.name,
    }


def decode_rule(payload: Any) -> Rule:
    head = None
    if payload["head"] is not None:
        if "$fnhead" in payload["head"]:
            h = payload["head"]
            head = FunctionHead(
                h["$fnhead"], decode_term(h["element"]),
                tuple(decode_term(a) for a in h["args"]), h["negated"],
            )
        else:
            head = _decode_body_literal(payload["head"])
    return Rule(
        head,
        tuple(_decode_body_literal(l) for l in payload["body"]),
        payload.get("name", ""),
    )


def encode_program(program: Program) -> Any:
    return {
        "rules": [encode_rule(r) for r in program.rules],
        "goal": (
            [_encode_body_literal(l) for l in program.goal.literals]
            if program.goal else None
        ),
    }


def decode_program(payload: Any) -> Program:
    goal = None
    if payload.get("goal") is not None:
        goal = Goal(tuple(
            _decode_body_literal(l) for l in payload["goal"]
        ))
    return Program(
        tuple(decode_rule(r) for r in payload["rules"]), goal
    )


# ---------------------------------------------------------------------------
# whole database states (E, R, S)
# ---------------------------------------------------------------------------
def state_checksum(body: dict) -> str:
    """sha256 over the canonical (sorted, unspaced) body encoding."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dumps_state(schema: Schema, edb: FactSet, program: Program) -> str:
    """Serialize a database state triple to a JSON string (format v2:
    version field + checksum over the canonical body)."""
    body = {
        "schema": encode_schema(schema),
        "edb": encode_factset(edb),
        "program": encode_program(program),
    }
    payload = {"version": FORMAT_VERSION,
               "checksum": state_checksum(body), **body}
    return json.dumps(payload, indent=1, sort_keys=True)


def loads_state(text: str) -> tuple[Schema, FactSet, Program]:
    """Inverse of :func:`dumps_state`.

    Raises :class:`~repro.errors.StorageError` — never a bare decoding
    traceback — on truncated JSON, missing sections, a checksum
    mismatch, or a format version this build does not know.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt state payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageError("corrupt state payload: not a JSON object")
    version = payload.get("version")
    if version != FORMAT_VERSION and version not in _LEGACY_VERSIONS:
        raise StorageError(
            f"unsupported state format version {version!r}"
            f" (this build reads v{FORMAT_VERSION} and legacy"
            f" v{', v'.join(map(str, _LEGACY_VERSIONS))})"
        )
    missing = [k for k in _BODY_KEYS if k not in payload]
    if missing:
        raise StorageError(
            "corrupt state payload: missing"
            f" {', '.join(missing)} section(s)"
        )
    if version >= 2:
        recorded = payload.get("checksum")
        computed = state_checksum({k: payload[k] for k in _BODY_KEYS})
        if recorded != computed:
            raise StorageError(
                "corrupt state payload: checksum mismatch"
                f" (recorded {str(recorded)[:12]!r}…,"
                f" computed {computed[:12]!r}…)"
            )
    return (
        decode_schema(payload["schema"]),
        decode_factset(payload["edb"]),
        decode_program(payload["program"]),
    )


def atomic_write_text(path, text: str) -> None:
    """Crash-safe replacement write: temp file in the target directory,
    flush + fsync, then atomic rename over ``path``.

    A crash (or injected fault) at any point leaves either the old file
    intact or the new file complete — never a torn payload; the orphan
    temp file is removed on the error path.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    if FAULTS.enabled:
        FAULTS.fire("storage.write")
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            if FAULTS.enabled:
                FAULTS.fire("storage.fsync")
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # best-effort directory fsync so the rename itself is durable
    try:
        dirfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dirfd)
    except OSError:
        pass
    finally:
        os.close(dirfd)


def dump_state(path, schema: Schema, edb: FactSet, program: Program) -> None:
    """Write a database state to ``path`` atomically."""
    atomic_write_text(path, dumps_state(schema, edb, program))


def load_state(path) -> tuple[Schema, FactSet, Program]:
    """Read a database state from ``path``.

    Every failure mode of the read — unreadable file, zero-length or
    truncated payload, corrupt body — surfaces as
    :class:`StorageError` naming the offending path, so callers (the
    CLI's exit-2/LG901 channel, the server's 422) diagnose uniformly.
    """
    if FAULTS.enabled:
        FAULTS.fire("storage.read")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        raise StorageError(
            f"cannot read database state {path}: {exc}"
        ) from exc
    if not text.strip():
        raise StorageError(
            f"empty database state {path}: zero-length file"
            " (crashed before any write, or truncated externally)"
        )
    try:
        return loads_state(text)
    except StorageError as exc:
        raise StorageError(f"{path}: {exc}") from exc
