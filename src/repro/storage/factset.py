"""Fact sets: the working representation of the Appendix B semantics.

A fact set ``F`` holds, for every association predicate, a set of tuple
values, and for every class predicate, a map from oid to attribute tuple
(the per-class restriction of the o-value assignment ``ν``).  Each ``Fⁱ``
of the inflationary sequence is a fact set; the operators ``⊕`` (right-
biased composition), difference and intersection implement the one-step
operator's ``VAR'`` formula.

Per-predicate hash indexes on (label, value) accelerate the engine's
literal matching; indexes are built lazily and then maintained
*incrementally*: ``add`` / ``discard`` / ``discard_oid`` update the
existing ``(label → value → facts)`` entries in place, and ``copy()``
carries the built indexes over, so a mutation costs O(Δ) index work
instead of forcing an O(|F|) rebuild on the next lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.values.complex import TupleValue, Value, max_oid_in
from repro.values.instance import Instance
from repro.values.oids import Oid

_SELF = "self"  # reserved pseudo-label used by indexes for class oids
_NO_VALUE = object()  # hashable key guaranteed to match no stored value


@dataclass(frozen=True, slots=True)
class Fact:
    """One ground fact: ``pred(value)`` or ``pred(self oid, value)``."""

    pred: str
    value: TupleValue
    oid: Oid | None = None

    @property
    def is_class_fact(self) -> bool:
        return self.oid is not None

    def __repr__(self) -> str:
        if self.oid is not None:
            inner = ", ".join(f"{k}: {v!r}" for k, v in self.value.items)
            sep = ", " if inner else ""
            return f"{self.pred}(self {self.oid!r}{sep}{inner})"
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.value.items)
        return f"{self.pred}({inner})"


class FactSet:
    """A mutable set of ground facts over class and association predicates."""

    __slots__ = ("_assoc", "_class", "_indexes", "_max_oid",
                 "_journal", "index_stats")

    def __init__(self) -> None:
        self._assoc: dict[str, set[TupleValue]] = {}
        self._class: dict[str, dict[Oid, TupleValue]] = {}
        self._indexes: dict[str, dict[str, dict[Value, list[Fact]]]] = {}
        self._max_oid = 0  # monotone upper bound, maintained on add
        # undo journal: None = off; a list of inverse ops while a
        # savepoint (repro.modules.txn) is active
        self._journal: list[tuple] | None = None
        # optional observability hook (duck-typed IndexStats with
        # ``hits`` / ``misses`` / ``builds``); None = no accounting
        self.index_stats = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "FactSet":
        fs = cls()
        for f in facts:
            fs.add(f)
        return fs

    def copy(self) -> "FactSet":
        out = FactSet()
        out._assoc = {p: set(ts) for p, ts in self._assoc.items()}
        out._class = {p: dict(m) for p, m in self._class.items()}
        out._indexes = {
            pred: {
                label: {key: list(bucket) for key, bucket in by_label.items()}
                for label, by_label in index.items()
            }
            for pred, index in self._indexes.items()
        }
        out._max_oid = self._max_oid
        out.index_stats = self.index_stats
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert ``fact``; returns True iff the set changed.

        For class facts, an existing entry for the same oid is
        *overwritten* (composition bias; Appendix B resolves o-value
        conflicts in favour of the newer fact).
        """
        pred = fact.pred
        index = self._indexes.get(pred)
        journal = self._journal
        if fact.oid is not None:
            table = self._class.setdefault(pred, {})
            old = table.get(fact.oid)
            if old == fact.value:
                return False
            table[fact.oid] = fact.value
            if journal is not None:
                if old is None:
                    journal.append(("del_class", pred, fact.oid))
                else:
                    journal.append(("set_class", pred, fact.oid, old))
            if fact.oid.number > self._max_oid:
                self._max_oid = fact.oid.number
            if index is not None:
                if old is not None:
                    _index_remove(index, Fact(pred, old, fact.oid))
                _index_add(index, fact)
        else:
            table = self._assoc.setdefault(pred, set())
            if fact.value in table:
                return False
            table.add(fact.value)
            if journal is not None:
                journal.append(("del_assoc", pred, fact.value))
            if index is not None:
                _index_add(index, fact)
        nested = max_oid_in(fact.value)
        if nested > self._max_oid:
            self._max_oid = nested
        return True

    def add_association(self, pred: str, value: TupleValue) -> bool:
        return self.add(Fact(pred.lower(), value))

    def add_object(self, pred: str, oid: Oid, value: TupleValue) -> bool:
        return self.add(Fact(pred.lower(), value, oid))

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; returns True iff the set changed.

        A class fact is removed when the oid is present and its stored
        value equals the fact's value.
        """
        pred = fact.pred
        if fact.oid is not None:
            table = self._class.get(pred)
            if table is None or table.get(fact.oid) != fact.value:
                return False
            del table[fact.oid]
            if self._journal is not None:
                self._journal.append(
                    ("set_class", pred, fact.oid, fact.value)
                )
        else:
            table = self._assoc.get(pred)
            if table is None or fact.value not in table:
                return False
            table.remove(fact.value)
            if self._journal is not None:
                self._journal.append(("add_assoc", pred, fact.value))
        index = self._indexes.get(pred)
        if index is not None:
            _index_remove(index, fact)
        return True

    def discard_oid(self, pred: str, oid: Oid) -> bool:
        """Remove the object ``oid`` from class ``pred`` regardless of value."""
        pred = pred.lower()
        table = self._class.get(pred)
        if table is None or oid not in table:
            return False
        stored = table.pop(oid)
        if self._journal is not None:
            self._journal.append(("set_class", pred, oid, stored))
        index = self._indexes.get(pred)
        if index is not None:
            _index_remove(index, Fact(pred, stored, oid))
        return True

    # ------------------------------------------------------------------
    # undo journal (savepoint support; :mod:`repro.modules.txn`)
    # ------------------------------------------------------------------
    def begin_journal(self) -> tuple[int, int]:
        """Start (or nest into) undo journaling; returns an opaque mark.

        While a journal is active every ``add`` / ``discard`` /
        ``discard_oid`` that changes the set records its inverse, so
        :meth:`rollback_to` can restore the state at the mark exactly —
        including the hash indexes, which are maintained incrementally
        by the replayed inverse operations."""
        if self._journal is None:
            self._journal = []
        return (len(self._journal), self._max_oid)

    def rollback_to(self, mark: tuple[int, int]) -> int:
        """Undo every journaled mutation after ``mark``; returns how
        many operations were reverted.  Journaling stays active for the
        enclosing savepoint (if the mark is nested)."""
        journal = self._journal
        if journal is None:
            raise StorageError("rollback_to without an active journal")
        position, max_oid = mark
        entries = journal[position:]
        del journal[position:]
        self._journal = None  # suspend journaling while replaying undo
        try:
            for op in reversed(entries):
                kind = op[0]
                if kind == "set_class":
                    self.add(Fact(op[1], op[3], op[2]))
                elif kind == "del_class":
                    self.discard_oid(op[1], op[2])
                elif kind == "add_assoc":
                    self.add(Fact(op[1], op[2]))
                else:  # del_assoc
                    self.discard(Fact(op[1], op[2]))
        finally:
            self._journal = journal
        self._max_oid = max_oid
        return len(entries)

    def end_journal(self) -> None:
        """Stop journaling and drop the recorded inverses (commit)."""
        self._journal = None

    @property
    def journaling(self) -> bool:
        return self._journal is not None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        if fact.oid is not None:
            return self._class.get(fact.pred, {}).get(fact.oid) == fact.value
        return fact.value in self._assoc.get(fact.pred, set())

    def has_oid(self, pred: str, oid: Oid) -> bool:
        return oid in self._class.get(pred.lower(), {})

    def value_of(self, pred: str, oid: Oid) -> TupleValue | None:
        return self._class.get(pred.lower(), {}).get(oid)

    def facts_of(self, pred: str) -> Iterator[Fact]:
        pred = pred.lower()
        table = self._class.get(pred)
        if table is not None:
            for oid, value in table.items():
                yield Fact(pred, value, oid)
        for value in self._assoc.get(pred, ()):
            yield Fact(pred, value)

    def facts(self) -> Iterator[Fact]:
        for pred in list(self._class) + list(self._assoc):
            yield from self.facts_of(pred)

    def predicates(self) -> list[str]:
        return sorted(set(self._class) | set(self._assoc))

    def count(self, pred: str | None = None) -> int:
        if pred is not None:
            pred = pred.lower()
            return len(self._class.get(pred, {})) + len(
                self._assoc.get(pred, ())
            )
        return sum(len(m) for m in self._class.values()) + sum(
            len(s) for s in self._assoc.values()
        )

    def is_class_pred(self, pred: str) -> bool:
        return pred.lower() in self._class

    def oids_of(self, pred: str) -> set[Oid]:
        return set(self._class.get(pred.lower(), {}))

    def lookup(self, pred: str, label: str, value: Value) -> list[Fact]:
        """Facts of ``pred`` whose ``label`` component equals ``value``.

        Served from a lazily built hash index; ``label`` may be the
        pseudo-label ``self`` to look up class facts by oid.
        """
        pred = pred.lower()
        stats = self.index_stats
        index = self._indexes.get(pred)
        if index is None:
            index = self._build_index(pred)
        by_label = index.get(label)
        if by_label is None:
            if stats is not None:
                stats.misses += 1
                stats.builds += 1
            by_label = {}
            for fact in self.facts_of(pred):
                key = fact.oid if label == _SELF else fact.value.get(label)
                if key is not None:
                    by_label.setdefault(key, []).append(fact)
            index[label] = by_label
        elif stats is not None:
            stats.hits += 1
        return by_label.get(value, [])

    def _build_index(self, pred: str):
        index: dict[str, dict[Value, list[Fact]]] = {}
        self._indexes[pred] = index
        return index

    def distinct_count(self, pred: str, label: str) -> int:
        """Distinct values stored at an indexed position — the planner's
        selectivity statistic.  Forces the same lazy per-label index
        evaluation uses, so the count is free once a join probed it."""
        pred = pred.lower()
        index = self._indexes.get(pred)
        by_label = index.get(label) if index is not None else None
        if by_label is None:
            # build (and cache) the index through the normal path; the
            # sentinel value never matches, so this is only the build
            self.lookup(pred, label, _NO_VALUE)
            by_label = self._indexes[pred][label]
        return len(by_label)

    # ------------------------------------------------------------------
    # Appendix B set algebra
    # ------------------------------------------------------------------
    def compose(self, other: "FactSet") -> "FactSet":
        """``self ⊕ other``: union, with ``other`` winning o-value conflicts.

        Ground facts of ``self`` that carry the same oid but a different
        o-value than some fact of ``other`` are dropped; ``⊕`` is
        non-commutative (Appendix B).
        """
        out = self.copy()
        for fact in other.facts():
            out.add(fact)
        return out

    def minus(self, other: "FactSet") -> "FactSet":
        """Facts of ``self`` not present in ``other`` (exact match)."""
        out = FactSet()
        for fact in self.facts():
            if fact not in other:
                out.add(fact)
        return out

    def intersection(self, other: "FactSet") -> "FactSet":
        out = FactSet()
        for fact in self.facts():
            if fact in other:
                out.add(fact)
        return out

    def union_inflationary(self, other: "FactSet") -> "FactSet":
        """Plain union keeping *existing* o-values on conflict (left bias)."""
        out = other.copy()
        for fact in self.facts():
            out.add(fact)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactSet):
            return NotImplemented
        return self._normalized() == other._normalized()

    # Mutable container: explicitly unhashable (``hash()`` raises
    # ``TypeError: unhashable type`` instead of reaching a live method,
    # and ``isinstance(fs, collections.abc.Hashable)`` is now False).
    __hash__ = None

    def _normalized(self):
        return (
            {p: s for p, s in self._assoc.items() if s},
            {p: m for p, m in self._class.items() if m},
        )

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_instance(self) -> Instance:
        """Materialize as an :class:`Instance` ``(π, ν, ρ)``.

        When an oid appears in several classes of a hierarchy, its o-value
        is the merge of all class-level tuples, with wider (more specific)
        tuples taking precedence label-wise.
        """
        pi: dict[str, set[Oid]] = {}
        nu: dict[Oid, TupleValue] = {}
        for pred, table in self._class.items():
            pi[pred] = set(table)
            for oid, value in table.items():
                prev = nu.get(oid)
                if prev is None:
                    nu[oid] = value
                elif len(value.items) >= len(prev.items):
                    nu[oid] = prev.merged(value)
                else:
                    nu[oid] = value.merged(prev)
        rho = {p: set(ts) for p, ts in self._assoc.items()}
        return Instance(pi=pi, nu=nu, rho=rho)

    def max_oid_number(self) -> int:
        """A monotone upper bound on oid numbers ever stored (kept on
        add; deletions do not lower it, which is exactly what fresh-oid
        reservation needs)."""
        return self._max_oid

    def __repr__(self) -> str:
        return f"FactSet({self.count()} facts, {len(self.predicates())} predicates)"


def _index_key(fact: Fact, label: str) -> Value | None:
    return fact.oid if label == _SELF else fact.value.get(label)


def _index_add(index: dict[str, dict[Value, list[Fact]]], fact: Fact) -> None:
    for label, by_label in index.items():
        key = _index_key(fact, label)
        if key is not None:
            by_label.setdefault(key, []).append(fact)


def _index_remove(
    index: dict[str, dict[Value, list[Fact]]], fact: Fact
) -> None:
    for label, by_label in index.items():
        key = _index_key(fact, label)
        if key is None:
            continue
        bucket = by_label.get(key)
        if bucket is None:
            continue
        try:
            bucket.remove(fact)
        except ValueError:
            continue
        if not bucket:
            del by_label[key]


def require_factset(obj) -> FactSet:
    """Defensive coercion helper used by public APIs."""
    if not isinstance(obj, FactSet):
        raise StorageError(f"expected a FactSet, got {type(obj).__name__}")
    return obj
