"""Main-memory storage: fact sets, indexes, persistence."""

from repro.storage.factset import Fact, FactSet
from repro.storage.persist import (
    dump_state,
    dumps_state,
    load_state,
    loads_state,
)

__all__ = [
    "Fact",
    "FactSet",
    "dump_state",
    "dumps_state",
    "load_state",
    "loads_state",
]
