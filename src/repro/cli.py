"""Command-line interface: ``python -m repro <command>``.

A small front end over the library, in the spirit of the "complete
programming environment" of Section 5:

* ``run FILE``    — evaluate a LOGRES source unit and print the computed
  instance (and goal answers if the unit has a goal);
* ``check FILE``  — parse, analyze and consistency-check without
  printing the instance; ``--static-only`` skips evaluation;
* ``lint FILES``  — collect-all static analysis: every error and warning
  of every file, as ``file:line:col: severity[CODE]: message`` lines or
  JSON (``--format json``);
* ``fmt FILE``    — reprint the unit in canonical form;
* ``explain FILE FACT`` — evaluate with tracing and print the
  derivation tree of one fact, given as ``pred(label=value, ...)``;
  ``--why-not`` instead explains an *absent* fact: deletion provenance
  plus the best near-miss valuation of every candidate rule;
* ``profile FILE`` — evaluate under full instrumentation and print a
  ranked per-rule cost table (``--format text|json``);
* ``plan FILE``   — print the cost-based planner's chosen literal order
  and per-step estimates for every rule without evaluating
  (``--format text|json``); every evaluating command takes
  ``--plan on|off`` to toggle the planner + compiled bodies;
* ``diff A B``    — compare two run reports: per-rule and per-phase
  deltas, exit 1 on regressions; see ``docs/OBSERVABILITY.md``;
* ``tail PATH``   — attach to the live telemetry of a running ``repro
  run --telemetry-listen PATH`` (or replay a recorded JSONL stream) and
  render a per-stratum / per-rule view; see ``docs/OBSERVABILITY.md``.

``run`` additionally accepts ``--trace-out events.jsonl`` (structured
engine event stream), ``--metrics-out metrics.json`` (metrics + phase
snapshot), ``--report-out report.json`` (the persistent
:class:`~repro.observability.report.RunReport` that ``repro diff``
compares), ``--chrome-out trace.json`` (phase tree in Chrome trace
format, loadable in Perfetto), ``--telemetry-listen PATH`` (live NDJSON
telemetry for ``repro tail``), ``--prom-out metrics.prom`` (Prometheus
text exposition) and ``--heartbeat SECONDS`` (periodic liveness events
at iteration boundaries).

Failures in parsing or analysis are printed as diagnostics
(``file:line:col: error[CODE]: message``), never as tracebacks, and exit
with status 2; interrupted evaluations — an execution-guard breach
(``--timeout`` / ``--max-facts`` / ``--max-oids``) or the iteration
budget — render the same way and exit with status 3.  The full exit-code
convention is documented in ``docs/ROBUSTNESS.md``.

Source units may carry facts as rules (``p(x 1).``); a persisted state
can be supplied with ``--state state.json`` (see ``Database.save``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Diagnostic, Severity, diagnostics_to_json
from repro.analysis.interference import DEFAULT_MAX_PAIRS
from repro.constraints.checker import ConsistencyChecker
from repro.engine import Engine, EvalConfig, ResourceGuard, Semantics
from repro.engine.goals import answer_goal
from repro.engine.guards import BUDGET_CODES
from repro.engine.trace import Tracer
from repro.errors import (
    EvalBudgetExceeded,
    LogresError,
    NonTerminationError,
    ParseError,
    StorageError,
)
from repro.language.parser import parse_source
from repro.language.pretty import render_source
from repro.span import Span
from repro.storage.factset import Fact, FactSet
from repro.storage.persist import loads_state
from repro.values.complex import TupleValue


def _load_unit(path: str, state_path: str | None):
    with open(path, encoding="utf-8") as f:
        unit = parse_source(f.read())
    if state_path:
        with open(state_path, encoding="utf-8") as f:
            schema, edb, program = loads_state(f.read())
        schema = unit.schema(schema)
        rules = program.rules + tuple(unit.rules)
    else:
        schema = unit.schema()
        edb = FactSet()
        rules = tuple(unit.rules)
    from repro.language.ast import Program

    return schema, Program(rules, unit.goal), edb


def _eval_config(args) -> EvalConfig:
    """The :class:`EvalConfig` (and optional guard) the flags request."""
    guard = None
    if (args.timeout is not None or args.max_facts is not None
            or args.max_oids is not None):
        guard = ResourceGuard(
            timeout=args.timeout,
            max_facts=args.max_facts,
            max_inventions=args.max_oids,
        )
    return EvalConfig(
        max_iterations=getattr(args, "max_iterations", 10_000),
        incremental=not getattr(args, "reference", False),
        plan=getattr(args, "plan", "on") != "off",
        guard=guard,
    )


def _print_instance(instance: FactSet) -> None:
    for pred in instance.predicates():
        if pred.startswith("__"):
            continue
        print(f"{pred} ({instance.count(pred)}):")
        for fact in sorted(instance.facts_of(pred), key=repr):
            print(f"  {fact!r}")


def _jsonl_sink(path: str, source_file: str | None, header: bool = True):
    """A JSONL event sink whose first line is the stream header.

    With ``header=False`` the caller owns the header — the bus path
    publishes one :class:`StreamHeader` through the bus instead, so the
    retention ring replays it to every late ``repro tail`` attach."""
    from repro.observability import JsonlSink, StreamHeader

    sink = JsonlSink(open(path, "w", encoding="utf-8"),
                     close_stream=True)
    if header:
        sink.emit(StreamHeader(source_file=source_file))
    return sink


def _run_instrumentation(args):
    """The instrumentation ``repro run`` needs for its output flags.

    Returns ``(obs, finish)``: ``obs`` is None when no output flag is
    given (the zero-overhead default), and ``finish()`` flushes the
    ``--trace-out`` / ``--metrics-out`` / ``--prom-out`` files and shuts
    down the telemetry server after the run (``--report-out`` /
    ``--chrome-out`` need the finished engine, so ``cmd_run`` writes
    those itself).

    When live telemetry is requested (``--telemetry-listen`` or
    ``--heartbeat``) the engine's sink becomes an
    :class:`~repro.observability.bus.EventBus`: the ``--trace-out``
    JSONL sink rides the bus as an attached (synchronous, no-drop)
    subscriber, and the telemetry server's clients are bounded queued
    subscriptions that can individually drop without affecting anyone.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    telemetry = getattr(args, "telemetry_listen", None)
    prom_out = getattr(args, "prom_out", None)
    heartbeat = getattr(args, "heartbeat", None)
    # reports fold the metrics registry; chrome traces need the timer,
    # which only an enabled instrumentation carries
    need_metrics = bool(
        metrics_out
        or getattr(args, "report_out", None)
        or getattr(args, "chrome_out", None)
        or prom_out
    )
    need_bus = bool(telemetry or heartbeat is not None)
    if not trace_out and not need_metrics and not need_bus:
        return None, lambda: None
    from repro.observability import (
        EventBus,
        Instrumentation,
        MetricsRegistry,
        StreamHeader,
        StreamingMetrics,
        render_prometheus,
    )

    trace_sink = (_jsonl_sink(trace_out, args.file, header=not need_bus)
                  if trace_out else None)
    bus = None
    server = None
    sink = trace_sink
    if need_bus:
        bus = EventBus()
        if trace_sink is not None:
            bus.attach_sink(trace_sink)
        sink = bus
        # through the bus, not into the sinks directly: the retention
        # ring replays the header to every late tail attach
        bus.emit(StreamHeader(source_file=args.file))
        if telemetry:
            from repro.observability.telemetry_server import (
                serve_telemetry,
            )

            server = serve_telemetry(bus, telemetry)
    if heartbeat is None and telemetry:
        heartbeat = 0.5  # a live attach wants liveness by default
    metrics = None
    if need_metrics:
        # --prom-out upgrades to the streaming registry: windowed rates
        # and real histogram buckets in the exposition
        metrics = StreamingMetrics() if prom_out else MetricsRegistry()
    obs = Instrumentation(
        metrics=metrics,
        sink=sink,
        source_file=args.file,
        heartbeat_interval=heartbeat,
    )

    def finish() -> None:
        if metrics_out:
            import json

            with open(metrics_out, "w", encoding="utf-8") as f:
                json.dump(obs.snapshot(), f, indent=2, sort_keys=True)
                f.write("\n")
        if prom_out:
            with open(prom_out, "w", encoding="utf-8") as f:
                f.write(render_prometheus(obs.metrics))
        # closing the bus ends the stream: attached sinks close, queued
        # subscribers drain and observe end-of-stream; the server then
        # joins its client writers so every tail gets the final events
        obs.close()
        if server is not None:
            server.close()

    return obs, finish


def cmd_run(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    obs, finish = _run_instrumentation(args)
    engine = Engine(schema, program, _eval_config(args),
                    instrumentation=obs)
    try:
        if obs is not None:
            with obs.phase("fixpoint"):
                instance = engine.run(edb, Semantics(args.semantics))
        else:
            instance = engine.run(edb, Semantics(args.semantics))
    finally:
        finish()
    if args.report_out:
        from repro.observability.report import build_run_report

        build_run_report(
            engine, obs, semantics=args.semantics,
            kernel="reference" if args.reference else "incremental",
            source_file=args.file,
        ).write(args.report_out)
    if args.chrome_out:
        from repro.observability.chrome import write_chrome_trace

        write_chrome_trace(obs.timer.to_dict(), args.chrome_out,
                           process_name=args.file)
    if program.goal is not None:
        answers = answer_goal(program.goal, instance, schema)
        print(f"{len(answers)} answer(s):")
        for answer in answers:
            rendered = ", ".join(
                f"{k} = {v!r}" for k, v in sorted(answer.items())
            )
            print(f"  {rendered}")
    else:
        _print_instance(instance)
    stats = engine.stats
    slowest = max(stats.time_per_iteration, default=0.0)
    print(
        f"-- {stats.iterations} iteration(s),"
        f" {instance.count()} fact(s),"
        f" {stats.inventions} invented oid(s),"
        f" {stats.time_total * 1000:.1f} ms total"
        f" ({slowest * 1000:.1f} ms slowest iteration,"
        f" {'incremental' if not args.reference else 'reference'} kernel)",
        file=sys.stderr,
    )
    return 0


def _print_violations(violations) -> None:
    """Uniform violation reporting: always ``Violation.render()``."""
    print(f"{len(violations)} violation(s):")
    for v in violations:
        print(f"  {v.render()}")


def cmd_profile(args) -> int:
    import json

    from repro.observability.profile import profile_program

    schema, program, edb = _load_unit(args.file, args.state)
    sink = (_jsonl_sink(args.trace_out, args.file)
            if args.trace_out else None)
    try:
        _, profile, obs = profile_program(
            schema, program, edb,
            semantics=Semantics(args.semantics),
            config=_eval_config(args),
            source_file=args.file,
            sink=sink,
        )
        obs.close()
    finally:
        # an aborted evaluation (budget breach, fault injection) must
        # still flush-close the trace so it ends on a complete line
        if sink is not None:
            sink.close()
    if args.chrome_out:
        from repro.observability.chrome import write_chrome_trace

        write_chrome_trace(obs.timer.to_dict(), args.chrome_out,
                           process_name=args.file)
    if args.format == "json":
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(profile.render_text())
        phases = obs.timer.render()
        if phases:
            print()
            print("phases:")
            print(phases)
    return 0


def cmd_plan(args) -> int:
    """Print the planner's chosen literal orders without evaluating."""
    import json

    schema, program, edb = _load_unit(args.file, args.state)
    engine = Engine(schema, program, _eval_config(args))
    plans = engine.explain_plan(edb, Semantics(args.semantics))
    if args.format == "json":
        print(json.dumps([p.to_dict() for p in plans], indent=2,
                         sort_keys=True))
    else:
        print("\n\n".join(p.render_text() for p in plans))
    return 0


def cmd_check(args) -> int:
    if args.static_only:
        from repro.analysis import lint_source

        with open(args.file, encoding="utf-8") as f:
            report = lint_source(f.read(), file=args.file)
        for diag in report.errors():
            print(diag.render(), file=sys.stderr)
        if report.has_errors:
            return 1
        print("ok: schema valid, program safe (evaluation skipped)")
        return 0
    schema, program, edb = _load_unit(args.file, args.state)
    # analysis runs in the constructor
    engine = Engine(schema, program, _eval_config(args))
    instance = engine.run(edb, Semantics(args.semantics))
    denials = tuple(r for r in program.rules if r.is_denial)
    violations = ConsistencyChecker(schema, denials).check(instance)
    if violations:
        _print_violations(violations)
        return 1
    print("ok: schema valid, program safe, instance consistent")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import lint_source

    diagnostics = []
    for path in args.files:
        with open(path, encoding="utf-8") as f:
            report = lint_source(f.read(), file=path)
        diagnostics.extend(report.diagnostics)
    if args.format == "json":
        print(diagnostics_to_json(diagnostics))
    else:
        for diag in diagnostics:
            print(diag.render())
        errors = sum(
            1 for d in diagnostics if d.severity is Severity.ERROR
        )
        warnings = sum(
            1 for d in diagnostics if d.severity is Severity.WARNING
        )
        print(
            f"{len(args.files)} file(s): {errors} error(s),"
            f" {warnings} warning(s)",
            file=sys.stderr,
        )
    failing = any(
        d.severity is Severity.ERROR
        or (args.error_on_warning and d.severity is Severity.WARNING)
        for d in diagnostics
    )
    return 1 if failing else 0


def cmd_analyze(args) -> int:
    """Static effect & interference analysis (``repro analyze``).

    Exit codes follow the repo convention (docs/ROBUSTNESS.md): 0 no
    hazards, 1 order hazards found (LG1001–LG1003), 2 static errors
    prevented analysis, 3 the pair budget was exceeded (LG1004 —
    certificates degraded to singletons).
    """
    from repro.analysis import analyze_source

    with open(args.file, encoding="utf-8") as f:
        analysis = analyze_source(
            f.read(), file=args.file, max_pairs=args.max_pairs
        )
    if args.format == "json":
        print(analysis.to_json())
    else:
        print(analysis.render_text())
    if analysis.report.has_errors:
        return 2
    if analysis.budget_exceeded:
        return 3
    return 1 if analysis.has_hazards else 0


def cmd_fmt(args) -> int:
    with open(args.file, encoding="utf-8") as f:
        unit = parse_source(f.read())
    print(render_source(unit.schema(), unit.program()))
    return 0


def cmd_explain(args) -> int:
    # the fact argument has its own error channel: a malformed fact must
    # render as a diagnostic against the pseudo-file ``<fact>``, not get
    # misattributed to the source file by main()'s handler
    try:
        fact = _parse_fact(args.fact)
    except LogresError as exc:
        diagnostics = _diagnostics_of(exc)
        if diagnostics:
            for diag in diagnostics:
                print(diag.with_file("<fact>").render(), file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    schema, program, edb = _load_unit(args.file, args.state)
    tracer = Tracer()
    engine = Engine(schema, program, _eval_config(args))
    instance = engine.run(edb, Semantics(args.semantics), tracer=tracer)
    if args.why_not:
        import json

        from repro.observability.whynot import HOLDS, explain_absence

        report = explain_absence(
            engine, instance, fact, tracer=tracer,
            semantics=args.semantics, source_file=args.file,
        )
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render_text())
        return 0 if report.status == HOLDS else 1
    if fact not in instance:
        print(
            f"{fact!r} does not hold in the instance"
            " (use --why-not for an absence explanation)"
        )
        return 1
    print(tracer.explain(fact, instance, engine.schema).render())
    return 0


def _parse_fact(text: str) -> Fact:
    """``pred(label=value, ...)`` parsed with the real lexer.

    Values are full ground terms: numbers (including negatives),
    escaped strings, ``true`` / ``false`` / ``nil``, ``{...}`` sets,
    ``[...]`` multisets, ``<...>`` sequences and nested
    ``(label=value, ...)`` tuples; ``:`` is accepted in place of ``=``
    (the facts' own repr form).  A ``self=N`` field makes a class fact
    with oid ``&N``.
    """
    from repro.language.lexer import tokenize
    from repro.values.complex import (
        MultisetValue,
        SequenceValue,
        SetValue,
    )
    from repro.values.oids import NIL, Oid

    tokens = tokenize(text)
    pos = 0

    def fail(tok, expected: str):
        found = repr(tok.text) if tok.kind != "eof" else "end of input"
        raise ParseError(
            f"cannot parse fact: expected {expected}, found {found}",
            tok.line, tok.column,
        )

    def take():
        nonlocal pos
        tok = tokens[pos]
        if tok.kind != "eof":
            pos += 1
        return tok

    def expect_symbol(sym: str):
        tok = take()
        if tok.kind != "symbol" or tok.text != sym:
            fail(tok, f"'{sym}'")
        return tok

    def parse_elements(closing: str) -> list:
        elements: list = []
        if tokens[pos].text == closing:
            take()
            return elements
        while True:
            elements.append(parse_value())
            tok = take()
            if tok.kind == "symbol" and tok.text == closing:
                return elements
            if not (tok.kind == "symbol" and tok.text == ","):
                fail(tok, f"',' or '{closing}'")

    def parse_fields() -> dict:
        fields: dict = {}
        if tokens[pos].text == ")":
            take()
            return fields
        while True:
            tok = take()
            if tok.kind not in ("name", "variable", "keyword"):
                fail(tok, "a field label")
            label = tok.text.lower()
            sep = take()
            if not (sep.kind == "symbol" and sep.text in ("=", ":")):
                fail(sep, "'=' or ':'")
            fields[label] = parse_value()
            tok = take()
            if tok.kind == "symbol" and tok.text == ")":
                return fields
            if not (tok.kind == "symbol" and tok.text == ","):
                fail(tok, "',' or ')'")

    def parse_value():
        tok = take()
        if tok.kind in ("number", "string"):
            return tok.value
        if tok.kind == "symbol" and tok.text == "-":
            num = take()
            if num.kind != "number":
                fail(num, "a number after '-'")
            return -num.value
        if tok.kind == "keyword":
            if tok.text == "true":
                return True
            if tok.text == "false":
                return False
            if tok.text == "nil":
                return NIL
            fail(tok, "a value")
        if tok.kind in ("name", "variable"):
            return str(tok.value)  # bare word: a string constant
        if tok.kind == "symbol":
            if tok.text == "{":
                return SetValue(parse_elements("}"))
            if tok.text == "[":
                return MultisetValue(parse_elements("]"))
            if tok.text == "<":
                return SequenceValue(parse_elements(">"))
            if tok.text == "(":
                return TupleValue(parse_fields())
        fail(tok, "a value")

    name = take()
    if name.kind not in ("name", "variable", "keyword"):
        fail(name, "a predicate name")
    expect_symbol("(")
    fields = parse_fields()
    trailing = tokens[pos]
    if trailing.kind != "eof":
        fail(trailing, "end of input")

    oid = None
    if "self" in fields:
        raw = fields.pop("self")
        if isinstance(raw, Oid):
            oid = raw
        elif isinstance(raw, int) and not isinstance(raw, bool):
            oid = Oid(raw)
        else:
            raise ParseError(
                f"cannot parse fact: self must be an oid number,"
                f" got {raw!r}", name.line, name.column,
            )
    return Fact(name.text.lower(), TupleValue(fields), oid=oid)


def cmd_tail(args) -> int:
    """Attach to a live (or recorded) telemetry stream and render it."""
    from repro.observability.tail import tail_stream

    return tail_stream(
        args.path,
        format=args.format,
        kinds=args.kinds,
        follow=args.follow,
        connect_timeout=args.connect_timeout,
    )


def cmd_diff(args) -> int:
    import json

    from repro.observability.diff import diff_reports
    from repro.observability.report import load_report

    try:
        baseline = load_report(args.baseline)
        candidate = load_report(args.candidate)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_reports(
        baseline, candidate,
        threshold=args.threshold,
        min_time_ms=args.min_time_ms,
        strict_counts=args.strict_counts,
        baseline_name=args.baseline,
        candidate_name=args.candidate,
    )
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render_text())
    return 1 if diff.regressions() else 0


def cmd_bench(args) -> int:
    """Run the benchmark matrix and append BENCH_* rows."""
    from repro.workloads.bench import KERNELS, run_matrix
    from repro.workloads.families import FAMILIES

    families = args.families or list(FAMILIES)
    kernels = args.kernels or (
        list(KERNELS) if args.matrix else ["compiled"])
    scales = args.scales or (
        ["100", "300", "1e3"] if args.matrix else ["100"])
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr))
    try:
        rows, touched = run_matrix(
            families=families,
            scales=scales,
            kernels=kernels,
            semantics=args.semantics,
            seed=args.seed,
            reps=args.reps,
            root=args.root,
            verify=not args.no_verify,
            progress=progress,
        )
    except (ValueError, AssertionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"bench: {len(rows)} cell(s) across {len(families)} family(ies)"
        f" x {len(scales)} scale(s) x {len(kernels)} kernel(s) -> "
        + ", ".join(p.name for p in touched)
    )
    return 0


def cmd_bench_report(args) -> int:
    """Render the perf-trend view over the BENCH_*.json history."""
    import json

    from repro.observability.trend import (
        TrendStore,
        find_regressions,
        render_trend_text,
        trend_prometheus,
        trend_report,
    )

    store = TrendStore.load(args.root)
    report = trend_report(
        store,
        threshold=args.threshold,
        min_time_ms=args.min_time_ms,
        window=args.window,
        min_points=args.min_points,
    )
    if args.prometheus:
        for warning in store.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        print(trend_prometheus(store, window=args.window), end="")
    elif args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_trend_text(report), end="")
    regressions = find_regressions(
        store, threshold=args.threshold, min_time_ms=args.min_time_ms,
        window=args.window, min_points=args.min_points,
    )
    return 1 if regressions else 0


def cmd_serve(args) -> int:
    """Run the fault-tolerant multi-tenant HTTP server (docs/SERVE.md)."""
    from repro.server import ReproServer, ServerConfig, TenantLimits

    tenant_limits = {}
    for spec in args.tenant_limit or ():
        # NAME:timeout:max_facts:max_inventions — empty field = default
        fields = (spec.split(":") + ["", "", ""])[:4]
        name = fields[0]
        if not name:
            print(f"error: bad --tenant-limit {spec!r}", file=sys.stderr)
            return 2
        tenant_limits[name] = TenantLimits(
            timeout=float(fields[1]) if fields[1] else None,
            max_facts=int(fields[2]) if fields[2] else None,
            max_inventions=int(fields[3]) if fields[3] else None,
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        default_timeout=args.timeout,
        default_max_facts=args.max_facts,
        default_max_inventions=args.max_oids,
        tenant_limits=tenant_limits,
        max_concurrent=args.max_concurrent,
        queue_depth=args.queue_depth,
        queue_timeout=args.queue_timeout,
        retry_after=args.retry_after,
        max_body_bytes=args.max_body_bytes,
        snapshot_interval=args.snapshot_interval,
        drain_deadline=args.drain_deadline,
    )
    server = ReproServer(config)
    host, port = server.start()
    server.install_signal_handlers()
    if args.ready_file:
        # smoke tests wait on this to learn the bound port (port 0)
        with open(args.ready_file, "w", encoding="utf-8") as f:
            f.write(f"{host} {port}\n")
    if not args.quiet:
        print(f"repro serve: listening on http://{host}:{port}"
              f" (data dir {config.data_dir})", file=sys.stderr)
    server.serve_forever()
    if not args.quiet:
        print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOGRES (SIGMOD 1990) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="LOGRES source file")
        p.add_argument("--state", help="persisted database state (JSON)")
        p.add_argument(
            "--semantics",
            choices=[s.value for s in Semantics],
            default=Semantics.INFLATIONARY.value,
        )
        # execution guards (docs/ROBUSTNESS.md); a breach exits 3
        p.add_argument(
            "--timeout", type=float, metavar="SECONDS",
            help="wall-clock budget for evaluation",
        )
        p.add_argument(
            "--max-facts", type=int, metavar="N",
            help="budget on live derived facts",
        )
        p.add_argument(
            "--max-oids", type=int, metavar="N",
            help="budget on invented oids",
        )
        p.add_argument(
            "--plan", choices=["on", "off"], default="on",
            help="cost-based rule planning + compiled rule bodies"
                 " (default: on; 'off' restores the dynamic scheduler)",
        )

    p_run = sub.add_parser("run", help="evaluate and print the instance")
    common(p_run)
    p_run.add_argument("--max-iterations", type=int, default=10_000)
    p_run.add_argument(
        "--reference",
        action="store_true",
        help="use the copying reference kernel instead of the"
             " incremental one (for timing comparisons)",
    )
    p_run.add_argument(
        "--trace-out", metavar="FILE",
        help="write the structured engine event stream as JSONL",
    )
    p_run.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the metrics + phase snapshot as JSON",
    )
    p_run.add_argument(
        "--report-out", metavar="FILE",
        help="write a persistent run report (for 'repro diff')",
    )
    p_run.add_argument(
        "--chrome-out", metavar="FILE",
        help="write the phase tree as a Chrome trace (Perfetto)",
    )
    p_run.add_argument(
        "--telemetry-listen", metavar="PATH",
        help="serve the live event stream as NDJSON on a Unix socket at"
             " PATH for 'repro tail' (a *.jsonl PATH, or a platform"
             " without AF_UNIX, writes a followable JSONL file instead)",
    )
    p_run.add_argument(
        "--prom-out", metavar="FILE",
        help="write run metrics in Prometheus text exposition format"
             " (windowed rates and histogram buckets included)",
    )
    p_run.add_argument(
        "--heartbeat", type=float, metavar="SECONDS",
        help="emit heartbeat events at iteration boundaries at this"
             " cadence (default: 0.5 when --telemetry-listen is set)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_tail = sub.add_parser(
        "tail",
        help="attach to a telemetry stream (socket or JSONL file) and"
             " render a live per-stratum / per-rule view",
    )
    p_tail.add_argument(
        "path",
        help="the --telemetry-listen socket of a live run, or a JSONL"
             " event file (recorded, or growing with --follow)",
    )
    p_tail.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text renders the live view; json re-emits the raw events"
             " (default: text)",
    )
    p_tail.add_argument(
        "--follow", action="store_true",
        help="for file paths: poll for growth until run-end"
             " (sockets always stream live)",
    )
    p_tail.add_argument(
        "--kind", action="append", dest="kinds", metavar="KIND",
        help="only show events of this kind (repeatable), e.g."
             " --kind heartbeat --kind stratum-end",
    )
    p_tail.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long to retry connecting to a socket that is not up"
             " yet (default: 10)",
    )
    p_tail.set_defaults(fn=cmd_tail)

    p_profile = sub.add_parser(
        "profile",
        help="evaluate under instrumentation and print per-rule costs",
    )
    common(p_profile)
    p_profile.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_profile.add_argument(
        "--trace-out", metavar="FILE",
        help="also write the event stream as JSONL",
    )
    p_profile.add_argument(
        "--chrome-out", metavar="FILE",
        help="write the phase tree as a Chrome trace (Perfetto)",
    )
    p_profile.set_defaults(fn=cmd_profile)

    p_plan = sub.add_parser(
        "plan",
        help="show the cost-based plan (literal orders + estimates)"
             " without evaluating",
    )
    common(p_plan)
    p_plan.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_plan.set_defaults(fn=cmd_plan)

    p_check = sub.add_parser("check", help="analyze and verify consistency")
    common(p_check)
    p_check.add_argument(
        "--static-only",
        action="store_true",
        help="stop after static analysis; do not evaluate the program"
             " or check instance consistency",
    )
    p_check.set_defaults(fn=cmd_check)

    p_analyze = sub.add_parser(
        "analyze",
        help="static effect & interference analysis: per-rule effect"
             " sets, the intra-stratum interference graph, and"
             " independence certificates (order hazards exit 1)",
    )
    p_analyze.add_argument("file", help="LOGRES source file")
    p_analyze.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_analyze.add_argument(
        "--max-pairs", type=int, default=DEFAULT_MAX_PAIRS,
        help="rule-pair budget for the interference graph; past it"
             " certificates degrade to singletons and the command"
             f" exits 3 (default: {DEFAULT_MAX_PAIRS})",
    )
    p_analyze.set_defaults(fn=cmd_analyze)

    p_lint = sub.add_parser(
        "lint", help="report every error and warning of the given files"
    )
    p_lint.add_argument("files", nargs="+", help="LOGRES source files")
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_lint.add_argument(
        "--error-on-warning",
        action="store_true",
        help="exit non-zero on warnings, not only on errors",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_fmt = sub.add_parser("fmt", help="print the canonical source form")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(fn=cmd_fmt)

    p_explain = sub.add_parser(
        "explain", help="show the derivation tree of a fact"
    )
    common(p_explain)
    p_explain.add_argument(
        "fact", help='fact, e.g. \'anc(a="x", d="y")\' or'
                     " 'person(self=3, age=40)'"
    )
    p_explain.add_argument(
        "--why-not", action="store_true",
        help="explain why the fact is ABSENT: deletion provenance and"
             " the best near-miss valuation of every candidate rule",
    )
    p_explain.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style for --why-not (default: text)",
    )
    p_explain.set_defaults(fn=cmd_explain)

    p_diff = sub.add_parser(
        "diff", help="compare two run reports (regressions exit 1)"
    )
    p_diff.add_argument("baseline", help="baseline run report (JSON)")
    p_diff.add_argument("candidate", help="candidate run report (JSON)")
    p_diff.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative slowdown tolerated before a time delta is a"
             " regression (default: 0.25 = +25%%)",
    )
    p_diff.add_argument(
        "--min-time-ms", type=float, default=1.0,
        help="absolute jitter floor: time deltas below this never"
             " regress (default: 1.0)",
    )
    p_diff.add_argument(
        "--strict-counts", action="store_true",
        help="any count change (fires, facts, iterations) is a"
             " regression — for CI runs of an unchanged program",
    )
    p_diff.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_diff.set_defaults(fn=cmd_diff)

    p_bench = sub.add_parser(
        "bench",
        help="run the workload x scale x kernel benchmark matrix and"
             " append BENCH_<family>.json rows (see 'bench report')",
    )
    p_bench.add_argument(
        "--matrix", action="store_true",
        help="sweep the full matrix: every kernel over three scale"
             " grades (default without it: the compiled kernel at one"
             " smoke scale)",
    )
    p_bench.add_argument(
        "--families", nargs="+", metavar="FAMILY",
        help="workload families to run (default: all registered)",
    )
    p_bench.add_argument(
        "--scales", nargs="+", metavar="SCALE",
        help="scale grades (1e3..1e6) or raw fact counts",
    )
    p_bench.add_argument(
        "--kernels", nargs="+", metavar="KERNEL",
        help="kernel configurations"
             " (reference/incremental/planned/compiled)",
    )
    p_bench.add_argument(
        "--semantics", nargs="+", metavar="SEM",
        default=["inflationary"],
        choices=[s.value for s in Semantics],
        help="rule semantics to sweep (default: inflationary)",
    )
    p_bench.add_argument("--seed", type=int, default=0,
                         help="generator seed (default: 0)")
    p_bench.add_argument(
        "--reps", type=int, default=3,
        help="timed repetitions per cell; min is recorded (default: 3)",
    )
    p_bench.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_*.json history (default: .)",
    )
    p_bench.add_argument(
        "--no-verify", action="store_true",
        help="skip the cross-kernel agreement check",
    )
    p_bench.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress on stderr")
    p_bench.set_defaults(fn=cmd_bench)

    bench_sub = p_bench.add_subparsers(dest="bench_command")
    p_brep = bench_sub.add_parser(
        "report",
        help="render perf trends over the BENCH_*.json history"
             " (trend regressions exit 1)",
    )
    p_brep.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_*.json history (default: .)",
    )
    p_brep.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_brep.add_argument(
        "--prometheus", action="store_true",
        help="emit the Prometheus text exposition instead",
    )
    p_brep.add_argument(
        "--threshold", type=float, default=0.5,
        help="relative slowdown of the latest point vs the rolling"
             " median tolerated before a series regresses"
             " (default: 0.5 = +50%%)",
    )
    p_brep.add_argument(
        "--min-time-ms", type=float, default=5.0,
        help="absolute jitter floor: series whose latest point is"
             " within this of the median never regress (default: 5.0)",
    )
    p_brep.add_argument(
        "--window", type=int, default=5,
        help="prior points feeding the rolling median (default: 5)",
    )
    p_brep.add_argument(
        "--min-points", type=int, default=3,
        help="series shorter than this never flag (default: 3)",
    )
    p_brep.set_defaults(fn=cmd_bench_report)

    p_serve = sub.add_parser(
        "serve",
        help="serve named persistent databases over HTTP with admission"
             " control, request budgets and WAL crash recovery"
             " (docs/SERVE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port (0 picks a free one; default: 8765)")
    p_serve.add_argument("--data-dir", default=".",
                         help="directory of <name>.state.json databases"
                              " (default: .)")
    p_serve.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="default per-request wall-clock budget (default: 10)",
    )
    p_serve.add_argument(
        "--max-facts", type=int, default=500_000, metavar="N",
        help="default per-request derived-fact budget (default: 500000)",
    )
    p_serve.add_argument(
        "--max-oids", type=int, default=50_000, metavar="N",
        help="default per-request oid-invention budget (default: 50000)",
    )
    p_serve.add_argument(
        "--tenant-limit", action="append", metavar="NAME:T:F:O",
        help="per-tenant budget caps as NAME:timeout:max_facts:max_oids"
             " (empty field = server default; repeatable; matched"
             " against the X-Repro-Tenant header)",
    )
    p_serve.add_argument("--max-concurrent", type=int, default=8,
                         help="requests executing at once (default: 8)")
    p_serve.add_argument("--queue-depth", type=int, default=16,
                         help="admission queue bound; beyond it requests"
                              " are shed with 429 (default: 16)")
    p_serve.add_argument("--queue-timeout", type=float, default=2.0,
                         metavar="SECONDS",
                         help="max wait for an execution slot before"
                              " shedding (default: 2)")
    p_serve.add_argument("--retry-after", type=float, default=1.0,
                         metavar="SECONDS",
                         help="Retry-After hint on 429/503 (default: 1)")
    p_serve.add_argument("--max-body-bytes", type=int, default=1_000_000,
                         help="request body size limit (default: 1000000)")
    p_serve.add_argument(
        "--snapshot-interval", type=int, default=16, metavar="N",
        help="committed writes between snapshot rewrites; the WAL tail"
             " past the last snapshot replays on startup (default: 16)",
    )
    p_serve.add_argument(
        "--drain-deadline", type=float, default=10.0, metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests (default: 10)",
    )
    p_serve.add_argument("--ready-file", metavar="FILE",
                         help="write 'host port' here once listening")
    p_serve.add_argument("--quiet", action="store_true")
    p_serve.set_defaults(fn=cmd_serve)
    return parser


def _diagnostics_of(exc: LogresError) -> tuple[Diagnostic, ...]:
    """The diagnostics an exception carries, synthesizing one for a bare
    :class:`ParseError` (and for storage corruption) so every failure
    renders uniformly."""
    if exc.diagnostics:
        return tuple(exc.diagnostics)
    if isinstance(exc, ParseError):
        return (Diagnostic(
            "LG101", Severity.ERROR, exc.raw_message,
            Span(exc.line, exc.column) if exc.line else None,
        ),)
    if isinstance(exc, StorageError):
        return (Diagnostic("LG901", Severity.ERROR, str(exc)),)
    return ()


def _budget_diagnostic(exc: NonTerminationError) -> Diagnostic:
    """A structured diagnostic for an interrupted evaluation: the tripped
    budget's stable code plus how far the run got."""
    budget = ""
    if isinstance(exc, EvalBudgetExceeded):
        budget = exc.budget
    code = BUDGET_CODES.get(budget, BUDGET_CODES["max_iterations"])
    message = str(exc)
    stats = exc.stats
    if stats is not None:
        message += (
            f" [stopped after {stats.iterations} iteration(s),"
            f" {stats.facts_derived} fact(s) derived,"
            f" {stats.inventions} invented oid(s)]"
        )
    return Diagnostic(code, Severity.ERROR, message)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except NonTerminationError as exc:
        # guard breaches and iteration-budget exhaustion: exit 3, with
        # a structured diagnostic instead of a traceback
        diag = _budget_diagnostic(exc)
        file = getattr(args, "file", None)
        if file:
            diag = diag.with_file(file)
        print(diag.render(), file=sys.stderr)
        return 3
    except LogresError as exc:
        diagnostics = _diagnostics_of(exc)
        if diagnostics:
            file = getattr(args, "file", None)
            for diag in diagnostics:
                if file and diag.file is None:
                    diag = diag.with_file(file)
                print(diag.render(), file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
