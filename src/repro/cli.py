"""Command-line interface: ``python -m repro <command>``.

A small front end over the library, in the spirit of the "complete
programming environment" of Section 5:

* ``run FILE``    — evaluate a LOGRES source unit and print the computed
  instance (and goal answers if the unit has a goal);
* ``check FILE``  — parse, analyze and consistency-check without
  printing the instance; ``--static-only`` skips evaluation;
* ``lint FILES``  — collect-all static analysis: every error and warning
  of every file, as ``file:line:col: severity[CODE]: message`` lines or
  JSON (``--format json``);
* ``fmt FILE``    — reprint the unit in canonical form;
* ``explain FILE FACT`` — evaluate with tracing and print the
  derivation tree of one association fact, given as
  ``pred(label=value, ...)``;
* ``profile FILE`` — evaluate under full instrumentation and print a
  ranked per-rule cost table (``--format text|json``); see
  ``docs/OBSERVABILITY.md``.

``run`` additionally accepts ``--trace-out events.jsonl`` (structured
engine event stream) and ``--metrics-out metrics.json`` (metrics +
phase snapshot).

Failures in parsing or analysis are printed as diagnostics
(``file:line:col: error[CODE]: message``), never as tracebacks, and exit
with status 2.

Source units may carry facts as rules (``p(x 1).``); a persisted state
can be supplied with ``--state state.json`` (see ``Database.save``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Diagnostic, Severity, diagnostics_to_json
from repro.constraints.checker import ConsistencyChecker
from repro.engine import Engine, EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.engine.trace import Tracer
from repro.errors import LogresError, ParseError
from repro.language.parser import parse_source
from repro.language.pretty import render_source
from repro.span import Span
from repro.storage.factset import Fact, FactSet
from repro.storage.persist import loads_state
from repro.values.complex import TupleValue


def _load_unit(path: str, state_path: str | None):
    with open(path, encoding="utf-8") as f:
        unit = parse_source(f.read())
    if state_path:
        with open(state_path, encoding="utf-8") as f:
            schema, edb, program = loads_state(f.read())
        schema = unit.schema(schema)
        rules = program.rules + tuple(unit.rules)
    else:
        schema = unit.schema()
        edb = FactSet()
        rules = tuple(unit.rules)
    from repro.language.ast import Program

    return schema, Program(rules, unit.goal), edb


def _print_instance(instance: FactSet) -> None:
    for pred in instance.predicates():
        if pred.startswith("__"):
            continue
        print(f"{pred} ({instance.count(pred)}):")
        for fact in sorted(instance.facts_of(pred), key=repr):
            print(f"  {fact!r}")


def _run_instrumentation(args):
    """The instrumentation ``repro run`` needs for its output flags.

    Returns ``(obs, finish)``: ``obs`` is None when neither flag is
    given (the zero-overhead default), and ``finish()`` flushes the
    requested output files after the run.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return None, lambda: None
    from repro.observability import (
        Instrumentation,
        JsonlSink,
        MetricsRegistry,
    )

    sink = None
    if trace_out:
        sink = JsonlSink(open(trace_out, "w", encoding="utf-8"),
                         close_stream=True)
    obs = Instrumentation(
        metrics=MetricsRegistry() if metrics_out else None,
        sink=sink,
        source_file=args.file,
    )

    def finish() -> None:
        if metrics_out:
            import json

            with open(metrics_out, "w", encoding="utf-8") as f:
                json.dump(obs.snapshot(), f, indent=2, sort_keys=True)
                f.write("\n")
        obs.close()

    return obs, finish


def cmd_run(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    obs, finish = _run_instrumentation(args)
    engine = Engine(schema, program,
                    EvalConfig(max_iterations=args.max_iterations,
                               incremental=not args.reference),
                    instrumentation=obs)
    try:
        instance = engine.run(edb, Semantics(args.semantics))
    finally:
        finish()
    if program.goal is not None:
        answers = answer_goal(program.goal, instance, schema)
        print(f"{len(answers)} answer(s):")
        for answer in answers:
            rendered = ", ".join(
                f"{k} = {v!r}" for k, v in sorted(answer.items())
            )
            print(f"  {rendered}")
    else:
        _print_instance(instance)
    stats = engine.stats
    slowest = max(stats.time_per_iteration, default=0.0)
    print(
        f"-- {stats.iterations} iteration(s),"
        f" {instance.count()} fact(s),"
        f" {stats.inventions} invented oid(s),"
        f" {stats.time_total * 1000:.1f} ms total"
        f" ({slowest * 1000:.1f} ms slowest iteration,"
        f" {'incremental' if not args.reference else 'reference'} kernel)",
        file=sys.stderr,
    )
    return 0


def _print_violations(violations) -> None:
    """Uniform violation reporting: always ``Violation.render()``."""
    print(f"{len(violations)} violation(s):")
    for v in violations:
        print(f"  {v.render()}")


def cmd_profile(args) -> int:
    import json

    from repro.observability.profile import profile_program

    schema, program, edb = _load_unit(args.file, args.state)
    sink = None
    if args.trace_out:
        from repro.observability import JsonlSink

        sink = JsonlSink(open(args.trace_out, "w", encoding="utf-8"),
                         close_stream=True)
    _, profile, obs = profile_program(
        schema, program, edb,
        semantics=Semantics(args.semantics),
        source_file=args.file,
        sink=sink,
    )
    obs.close()
    if args.format == "json":
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(profile.render_text())
        phases = obs.timer.render()
        if phases:
            print()
            print("phases:")
            print(phases)
    return 0


def cmd_check(args) -> int:
    if args.static_only:
        from repro.analysis import lint_source

        with open(args.file, encoding="utf-8") as f:
            report = lint_source(f.read(), file=args.file)
        for diag in report.errors():
            print(diag.render(), file=sys.stderr)
        if report.has_errors:
            return 1
        print("ok: schema valid, program safe (evaluation skipped)")
        return 0
    schema, program, edb = _load_unit(args.file, args.state)
    engine = Engine(schema, program)  # analysis runs in the constructor
    instance = engine.run(edb, Semantics(args.semantics))
    denials = tuple(r for r in program.rules if r.is_denial)
    violations = ConsistencyChecker(schema, denials).check(instance)
    if violations:
        _print_violations(violations)
        return 1
    print("ok: schema valid, program safe, instance consistent")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import lint_source

    diagnostics = []
    for path in args.files:
        with open(path, encoding="utf-8") as f:
            report = lint_source(f.read(), file=path)
        diagnostics.extend(report.diagnostics)
    if args.format == "json":
        print(diagnostics_to_json(diagnostics))
    else:
        for diag in diagnostics:
            print(diag.render())
        errors = sum(
            1 for d in diagnostics if d.severity is Severity.ERROR
        )
        warnings = sum(
            1 for d in diagnostics if d.severity is Severity.WARNING
        )
        print(
            f"{len(args.files)} file(s): {errors} error(s),"
            f" {warnings} warning(s)",
            file=sys.stderr,
        )
    failing = any(
        d.severity is Severity.ERROR
        or (args.error_on_warning and d.severity is Severity.WARNING)
        for d in diagnostics
    )
    return 1 if failing else 0


def cmd_fmt(args) -> int:
    with open(args.file, encoding="utf-8") as f:
        unit = parse_source(f.read())
    print(render_source(unit.schema(), unit.program()))
    return 0


def cmd_explain(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    tracer = Tracer()
    engine = Engine(schema, program)
    instance = engine.run(edb, Semantics(args.semantics), tracer=tracer)
    fact = _parse_fact(args.fact)
    if fact not in instance:
        print(f"{fact!r} does not hold in the instance")
        return 1
    print(tracer.explain(fact, instance, engine.schema).render())
    return 0


def _parse_fact(text: str) -> Fact:
    """``pred(label=value, ...)`` with int / quoted-string values."""
    text = text.strip()
    if "(" not in text or not text.endswith(")"):
        raise LogresError(
            f"cannot parse fact {text!r}: expected pred(label=value, ...)"
        )
    pred, _, inner = text.partition("(")
    fields = {}
    body = inner[:-1].strip()
    if body:
        for part in body.split(","):
            label, _, raw = part.partition("=")
            raw = raw.strip()
            if raw.startswith(('"', "'")):
                value: object = raw.strip("\"'")
            else:
                try:
                    value = int(raw)
                except ValueError:
                    value = raw
            fields[label.strip().lower()] = value
    return Fact(pred.strip().lower(), TupleValue(fields))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOGRES (SIGMOD 1990) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="LOGRES source file")
        p.add_argument("--state", help="persisted database state (JSON)")
        p.add_argument(
            "--semantics",
            choices=[s.value for s in Semantics],
            default=Semantics.INFLATIONARY.value,
        )

    p_run = sub.add_parser("run", help="evaluate and print the instance")
    common(p_run)
    p_run.add_argument("--max-iterations", type=int, default=10_000)
    p_run.add_argument(
        "--reference",
        action="store_true",
        help="use the copying reference kernel instead of the"
             " incremental one (for timing comparisons)",
    )
    p_run.add_argument(
        "--trace-out", metavar="FILE",
        help="write the structured engine event stream as JSONL",
    )
    p_run.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the metrics + phase snapshot as JSON",
    )
    p_run.set_defaults(fn=cmd_run)

    p_profile = sub.add_parser(
        "profile",
        help="evaluate under instrumentation and print per-rule costs",
    )
    common(p_profile)
    p_profile.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_profile.add_argument(
        "--trace-out", metavar="FILE",
        help="also write the event stream as JSONL",
    )
    p_profile.set_defaults(fn=cmd_profile)

    p_check = sub.add_parser("check", help="analyze and verify consistency")
    common(p_check)
    p_check.add_argument(
        "--static-only",
        action="store_true",
        help="stop after static analysis; do not evaluate the program"
             " or check instance consistency",
    )
    p_check.set_defaults(fn=cmd_check)

    p_lint = sub.add_parser(
        "lint", help="report every error and warning of the given files"
    )
    p_lint.add_argument("files", nargs="+", help="LOGRES source files")
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output style (default: text)",
    )
    p_lint.add_argument(
        "--error-on-warning",
        action="store_true",
        help="exit non-zero on warnings, not only on errors",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_fmt = sub.add_parser("fmt", help="print the canonical source form")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(fn=cmd_fmt)

    p_explain = sub.add_parser(
        "explain", help="show the derivation tree of a fact"
    )
    common(p_explain)
    p_explain.add_argument(
        "fact", help='association fact, e.g. \'anc(a="x", d="y")\''
    )
    p_explain.set_defaults(fn=cmd_explain)
    return parser


def _diagnostics_of(exc: LogresError) -> tuple[Diagnostic, ...]:
    """The diagnostics an exception carries, synthesizing one for a bare
    :class:`ParseError` so every failure renders uniformly."""
    if exc.diagnostics:
        return tuple(exc.diagnostics)
    if isinstance(exc, ParseError):
        return (Diagnostic(
            "LG101", Severity.ERROR, exc.raw_message,
            Span(exc.line, exc.column) if exc.line else None,
        ),)
    return ()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except LogresError as exc:
        diagnostics = _diagnostics_of(exc)
        if diagnostics:
            file = getattr(args, "file", None)
            for diag in diagnostics:
                if file and diag.file is None:
                    diag = diag.with_file(file)
                print(diag.render(), file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
